//! # planar
//!
//! Umbrella crate for the **Planar index** workspace — a from-scratch Rust
//! reproduction of *"Towards Indexing Functions: Answering Scalar Product
//! Queries"* (Khan, Yanki, Dimcheva, Kossmann — SIGMOD 2014).
//!
//! The individual crates:
//!
//! * [`planar_geom`] — vectors, hyperplanes, octants, the §4.5 translation;
//! * [`planar_core`] — the Planar index itself (single + multi index,
//!   Algorithm 1/2, selection heuristics, key stores);
//! * [`planar_relation`] — columnar relation + expression engine +
//!   function-based indexing (Example 1);
//! * [`planar_datagen`] — the paper's datasets and query workloads;
//! * [`planar_moving`] — moving-object intersection (Example 2, §7.5.1);
//! * [`planar_learning`] — pool-based active learning (§7.5.2).
//!
//! For most uses, `use planar::prelude::*;` brings in the common types.
//!
//! Runnable walkthroughs live in `examples/`:
//!
//! * `quickstart` — index a small dataset and run both query kinds;
//! * `durability` — write-ahead-logged mutations, crash recovery,
//!   deadline-budgeted batches;
//! * `parallel_batch` — batched queries sharded over worker threads;
//! * `power_consumption` — the Critical_Consume SQL function end to end;
//! * `moving_objects` — intersections of linear/circular/accelerating
//!   objects;
//! * `active_learning` — uncertainty sampling with exact retrieval;
//! * `halfspace_search` — half-spaces, constraint bands, adaptive retuning;
//! * `time_series` — forecast alerts over 100K series.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use planar_core;
pub use planar_datagen;
pub use planar_geom;
pub use planar_learning;
pub use planar_moving;
pub use planar_relation;

/// The types most programs need.
pub mod prelude {
    pub use planar_core::{
        elect, ChannelTransport, Cmp, ConcurrencyConfig, ConcurrentDurablePlanarIndexSet,
        ConcurrentDurableShardedIndexSet, ConcurrentPlanarIndexSet, ConcurrentShardedIndexSet,
        DirTransport, Domain, DurablePlanarIndexSet, DurableShardedIndexSet, DynamicPlanarIndexSet,
        ExecutionConfig, FailoverConfig, FeatureMap, FeatureTable, FnFeatureMap, FsyncPolicy,
        IdentityMap, IndexConfig, InequalityQuery, Mutation, MutationAck, ParameterDomain,
        PartitionScheme, PlanarIndexSet, Primary, QuantAutotuneConfig, QuantPolicy, QuantTier,
        QueryScratch, ReadConsistency, Replica, ScratchPool, SelectionStrategy, SeqScan, ServedBy,
        ShardConfig, ShardedIndexSet, TopKQuery, VecStore, WalOptions,
    };
    pub use planar_geom::{Hyperplane, Normalizer, Octant, Vector};
}
