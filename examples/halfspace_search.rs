//! Half-space range searching, linear-constraint (conjunction) queries and
//! adaptive retuning — the extension surface on top of the paper's core
//! (Remark 3, §2 "linear constraint queries", §8 future work).
//!
//! ```text
//! cargo run --release --example halfspace_search
//! ```

use planar::planar_core::halfspace::{HalfSpace, HalfSpaceIndex};
use planar::planar_core::{AdaptiveConfig, AdaptivePlanarIndexSet, ConjunctionQuery, VecStore};
use planar::planar_datagen::drift::DriftingWorkload;
use planar::planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar::prelude::*;
use planar_geom::Vector;

fn main() {
    // ----------------------------------------------------------------
    // 1. Half-space range searching (φ = identity, paper Remark 3).
    // ----------------------------------------------------------------
    let points: Vec<Vec<f64>> = SyntheticConfig::paper(SyntheticKind::Independent, 50_000, 3)
        .generate()
        .iter()
        .map(|(_, row)| row.to_vec())
        .collect();
    let index: HalfSpaceIndex = HalfSpaceIndex::build(
        points,
        ParameterDomain::uniform_continuous(3, 0.5, 4.0).expect("domain"),
        IndexConfig::with_budget(30),
    )
    .expect("build");

    let plane = Hyperplane::new(Vector::new(vec![1.0, 2.0, 1.5]).expect("v"), 200.0).expect("h");
    let below = index.report(&plane, HalfSpace::Below).expect("report");
    println!(
        "half-space query: {} of {} points below ⟨(1,2,1.5), x⟩ = 200 ({:.1}% pruned)",
        below.matches.len(),
        index.len(),
        below.stats.pruning_percentage()
    );
    let nearest = index.nearest(&plane, HalfSpace::Above, 3).expect("nearest");
    println!("three nearest points above the plane:");
    for (id, dist) in &nearest.neighbors {
        println!("  #{id:<7} at distance {dist:.3}  {:?}", index.point(*id));
    }

    // ----------------------------------------------------------------
    // 2. Linear constraint query: a band 150 ≤ ⟨a, x⟩ ≤ 250 as the
    //    conjunction of two half-spaces (paper §2).
    // ----------------------------------------------------------------
    let set = index.index_set();
    let band = ConjunctionQuery::new(vec![
        InequalityQuery::geq(vec![1.0, 2.0, 1.5], 150.0).expect("q"),
        InequalityQuery::leq(vec![1.0, 2.0, 1.5], 250.0).expect("q"),
    ])
    .expect("band");
    let out = set.query_conjunction(&band).expect("conjunction");
    println!(
        "\nband query (two constraints): {} matches, {:.1}% pruned wholesale",
        out.matches.len(),
        out.stats.pruning_percentage()
    );

    // ----------------------------------------------------------------
    // 3. Adaptive retuning: the workload drifts; the adaptive set follows.
    // ----------------------------------------------------------------
    let table = SyntheticConfig::paper(SyntheticKind::Independent, 50_000, 6).generate();
    let mut drift = DriftingWorkload::new(
        &table,
        vec![1.0; 6],
        vec![100.0, 1.0, 100.0, 1.0, 100.0, 1.0],
        240,
        0.02,
        5,
    );
    let mut adaptive: AdaptivePlanarIndexSet<VecStore> = AdaptivePlanarIndexSet::build(
        table,
        ParameterDomain::uniform_continuous(6, 1.0, 100.0).expect("domain"),
        AdaptiveConfig {
            pruning_threshold: 0.95,
            cooldown: 40,
            ..AdaptiveConfig::with_budget(16)
        },
    )
    .expect("build");

    println!("\nadaptive retuning under drift (pruning % per 40-query window):");
    for window in 1..=6 {
        let mut pruning = 0.0;
        for _ in 0..40 {
            let q = drift.next_query();
            pruning += adaptive
                .query(&q)
                .expect("query")
                .stats
                .pruning_percentage();
        }
        println!(
            "  window {window}: {:5.1}% pruned   (retunes so far: {})",
            pruning / 40.0,
            adaptive.rebuilds()
        );
    }
    println!("the set re-samples its normals from the learned domain as the workload moves");
}
