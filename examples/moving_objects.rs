//! The paper's Example 2 / §7.5.1: find the pairs of moving objects that
//! will be within a given distance at a future time — for linear, circular
//! and accelerating motion.
//!
//! ```text
//! cargo run --release --example moving_objects
//! ```

use planar::planar_moving::intersection::{
    AcceleratingIntersectionIndex, CircularIntersectionIndex, LinearIntersectionIndex,
};
use planar::planar_moving::rtree::mbr_intersection;
use planar::planar_moving::{baseline, workload};
use planar_core::VecStore;
use std::time::Instant;

/// The MOVIES-style indexed time instants: queries near these are fast.
const INSTANTS: [f64; 6] = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let n = 1_000; // objects per set → 1M pairs per scenario

    // ----------------------------------------------------------------
    // Linear vs linear (the workload classic spatio-temporal indexes
    // handle): squared pair distance = ⟨(1, t, t²), φ(pair)⟩.
    // ----------------------------------------------------------------
    println!("== linear x linear ({n} x {n} objects) ==");
    let a = workload::linear_objects(n, 1000.0, 1);
    let b = workload::linear_objects(n, 1000.0, 2);
    let (idx, build_ms) = timed(|| {
        LinearIntersectionIndex::<VecStore>::build(a.clone(), b.clone(), &INSTANTS).unwrap()
    });
    println!(
        "index over {} pairs built in {:.1}s",
        idx.pairs(),
        build_ms / 1e3
    );
    for t in [12.0, 12.5] {
        let ((pairs, stats), planar_ms) = timed(|| idx.query(t, 10.0).unwrap());
        let (base, base_ms) = timed(|| baseline::linear_pairs_within(&a, &b, t, 10.0));
        let (mbr, mbr_ms) = timed(|| mbr_intersection(&a, &b, t, 10.0));
        assert_eq!(pairs.len(), base.len());
        assert_eq!(pairs.len(), mbr.len());
        println!(
            "t={t:4}: {} intersecting pairs | planar {planar_ms:7.2} ms ({:.1}% pruned) | \
             all-pairs {base_ms:7.2} ms | MBR tree {mbr_ms:7.2} ms",
            pairs.len(),
            stats.pruning_percentage()
        );
    }

    // ----------------------------------------------------------------
    // Circular vs linear — Example 2. No MBR/TPR-style index applies
    // (future positions are not affine in t); the Planar index does.
    // ----------------------------------------------------------------
    println!("\n== circular x linear ({n} x {n} objects) ==");
    let circles = workload::circular_objects(n, 3);
    let lines = workload::linear_objects(n, 100.0, 4);
    let (idx, build_ms) = timed(|| {
        CircularIntersectionIndex::<VecStore>::build(&circles, &lines, &INSTANTS).unwrap()
    });
    println!("per-object indexes built in {:.1}s", build_ms / 1e3);
    for t in [12.0, 12.5] {
        let ((pairs, stats), planar_ms) = timed(|| idx.query(t, 10.0).unwrap());
        let (base, base_ms) = timed(|| baseline::circular_pairs_within(&circles, &lines, t, 10.0));
        assert_eq!(pairs.len(), base.len());
        println!(
            "t={t:4}: {} intersecting pairs | planar {planar_ms:7.2} ms ({:.1}% pruned) | \
             all-pairs {base_ms:7.2} ms",
            pairs.len(),
            stats.pruning_percentage()
        );
    }

    // ----------------------------------------------------------------
    // Accelerating (3D) vs linear — the non-uniform workload: squared
    // pair distance = ⟨(1, t, t², t³, t⁴), φ(pair)⟩.
    // ----------------------------------------------------------------
    println!("\n== accelerating x linear, 3D ({n} x {n} objects) ==");
    let accel = workload::accelerating_objects(n, 1000.0, 5);
    let lines3 = workload::linear_objects_3d(n, 1000.0, 6);
    let (idx, build_ms) = timed(|| {
        AcceleratingIntersectionIndex::<VecStore>::build(&accel, &lines3, &INSTANTS).unwrap()
    });
    println!("index built in {:.1}s", build_ms / 1e3);
    for t in [12.0, 12.5] {
        let ((pairs, stats), planar_ms) = timed(|| idx.query(t, 10.0).unwrap());
        let (base, base_ms) =
            timed(|| baseline::accelerating_pairs_within(&accel, &lines3, t, 10.0));
        assert_eq!(pairs.len(), base.len());
        println!(
            "t={t:4}: {} intersecting pairs | planar {planar_ms:7.2} ms ({:.1}% pruned) | \
             all-pairs {base_ms:7.2} ms",
            pairs.len(),
            stats.pruning_percentage()
        );
    }

    println!("\nall three scenarios verified exactly against the all-pairs baseline");
}
