//! Time-series prediction as a scalar product query (paper intro,
//! application \[5\]): *which of these 100K series will breach a threshold,
//! under a forecasting model chosen only at query time?*
//!
//! The forecast is a weighted moving average `⟨w, window⟩` with
//! exponential-smoothing weights `w(λ)`. The window values are known when
//! the index is built; the analyst picks the decay λ and the alert
//! threshold interactively — exactly the known-function/unknown-parameters
//! split the Planar index exists for.
//!
//! ```text
//! cargo run --release --example time_series
//! ```

use planar::planar_datagen::timeseries::{
    exponential_weights, generate_series, weight_envelope, window_table,
};
use planar::prelude::*;
use std::time::Instant;

const WINDOW: usize = 8;

fn main() {
    // ----------------------------------------------------------------
    // 1. 100K series; index each one's most recent 8 observations.
    // ----------------------------------------------------------------
    let series = generate_series(100_000, 64, 11);
    let table = window_table(&series, WINDOW);
    println!(
        "indexed the last {WINDOW} observations of {} series",
        table.len()
    );

    // The analyst will use exponential smoothing with λ somewhere in
    // [0.3, 0.9] — that family's per-axis envelope is the parameter domain.
    let lambda_grid: Vec<f64> = (3..=9).map(|i| i as f64 / 10.0).collect();
    let envelope = weight_envelope(&lambda_grid, WINDOW);
    let domain = ParameterDomain::new(
        envelope
            .iter()
            .map(|&(lo, hi)| Domain::Continuous { lo, hi })
            .collect(),
    )
    .expect("positive envelope");
    let scan_table = table.clone();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(40)).expect("build");
    let scan = SeqScan::new(&scan_table);

    // ----------------------------------------------------------------
    // 2. Query time: "with λ = 0.5 smoothing, which series forecast
    //    above 80?" — different λ and threshold every time.
    // ----------------------------------------------------------------
    println!("\n  λ    threshold  alerts  planar_ms  baseline_ms  pruned_%");
    for (lambda, threshold) in [(0.3, 80.0), (0.5, 80.0), (0.7, 90.0), (0.9, 60.0)] {
        let w = exponential_weights(lambda, WINDOW);
        let q = InequalityQuery::geq(w, threshold).expect("query");

        let start = Instant::now();
        let fast = set.query(&q).expect("query");
        let planar_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let slow = scan.evaluate(&q).expect("scan");
        let baseline_ms = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(fast.sorted_ids(), slow);
        assert!(fast.stats.used_index());
        println!(
            "{lambda:>4}  {threshold:>9}  {:>6}  {planar_ms:>9.3}  {baseline_ms:>11.3}  {:>7.1}",
            fast.matches.len(),
            fast.stats.pruning_percentage()
        );
    }

    // ----------------------------------------------------------------
    // 3. Watchlist: the k series closest to the alert boundary.
    // ----------------------------------------------------------------
    let w = exponential_weights(0.5, WINDOW);
    let q = InequalityQuery::leq(w.clone(), 80.0).expect("query");
    let top = set.top_k(&TopKQuery::new(q, 5).expect("k")).expect("top_k");
    println!("\nwatchlist: five below-threshold series nearest the 80.0 alert line (λ=0.5):");
    for (id, dist) in &top.neighbors {
        let forecast: f64 = w
            .iter()
            .zip(scan_table.row(*id))
            .map(|(wi, xi)| wi * xi)
            .sum();
        println!("  series {id:<7} forecast {forecast:7.3} (boundary distance {dist:.3})");
    }
    println!(
        "  found by touching {:.2}% of the pool",
        top.stats.checked_percentage()
    );

    // ----------------------------------------------------------------
    // 4. New observations arrive: the affected windows are re-keyed
    //    without rebuilding (paper §4.4).
    // ----------------------------------------------------------------
    let mut set = set;
    let mut spiked = scan_table.row(0).to_vec();
    spiked.rotate_right(1);
    spiked[0] = 150.0; // a fresh spike observation
    set.update_point(0, &spiked).expect("update");
    let q = InequalityQuery::geq(exponential_weights(0.9, WINDOW), 120.0).expect("query");
    assert!(set.query(&q).expect("query").sorted_ids().contains(&0));
    println!(
        "\nafter a spike observation, series 0 trips the λ=0.9 / 120.0 alert — no rebuild needed"
    );
}
