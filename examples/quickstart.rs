//! Quickstart: index a dataset whose query parameters are unknown until
//! query time, then answer inequality and top-k queries exactly.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use planar::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // ----------------------------------------------------------------
    // 1. Data: 100K points in R^4 with a known feature map φ.
    //    Here φ(x) = (x1, x2, x3, x1·x2) — the product term is what makes
    //    the predicate non-linear in the raw attributes and hence
    //    un-indexable by a plain B-tree per column.
    // ----------------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(7);
    let raw: Vec<Vec<f64>> = (0..100_000)
        .map(|_| (0..3).map(|_| rng.random_range(1.0..100.0)).collect())
        .collect();
    let phi = FnFeatureMap::new(3, 4, |x, out| {
        out[0] = x[0];
        out[1] = x[1];
        out[2] = x[2];
        out[3] = x[0] * x[1];
    });
    let table = phi
        .map_all(raw.iter().map(|p| p.as_slice()))
        .expect("finite features");
    println!(
        "indexed {} points, φ dimension {}",
        table.len(),
        table.dim()
    );

    // ----------------------------------------------------------------
    // 2. Declare what is known ahead of time: the DOMAINS of the query
    //    coefficients (not their values). Build a budget of Planar
    //    indices with normals sampled from those domains (paper §5.2).
    // ----------------------------------------------------------------
    let domain = ParameterDomain::uniform_continuous(4, 0.5, 4.0).expect("valid domain");
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(50)).expect("build");
    println!(
        "built {} Planar indices over the sampled domain",
        set.num_indices()
    );

    // ----------------------------------------------------------------
    // 3. Query time: the parameters arrive now.
    //    ⟨(2, 1, 0.5, 3), φ(x)⟩ ≤ 9000
    // ----------------------------------------------------------------
    let q = InequalityQuery::leq(vec![2.0, 1.0, 0.5, 3.0], 9000.0).expect("valid query");
    let out = set.query(&q).expect("query");
    println!(
        "\ninequality query: {} matches out of {} points",
        out.matches.len(),
        set.len()
    );
    println!(
        "  pruned without computing a scalar product: {:.1}% (smaller {} / intermediate {} / larger {})",
        out.stats.pruning_percentage(),
        out.stats.smaller,
        out.stats.intermediate,
        out.stats.larger,
    );

    // The answers are exact — verify against a scan.
    let scan = set.query_scan(&q).expect("scan");
    assert_eq!(out.sorted_ids(), scan.sorted_ids());
    println!("  verified: identical to the sequential scan");

    // ----------------------------------------------------------------
    // 4. Top-k: the 5 satisfying points nearest the query hyperplane
    //    (paper Problem 2 — used for active learning).
    // ----------------------------------------------------------------
    let tk = TopKQuery::new(q, 5).expect("k > 0");
    let top = set.top_k(&tk).expect("top_k");
    println!("\ntop-5 nearest the hyperplane (id, distance):");
    for (id, dist) in &top.neighbors {
        println!("  #{id:<8} {dist:.4}");
    }
    println!(
        "  touched only {:.2}% of the points ({} of {})",
        top.stats.checked_percentage(),
        top.stats.checked(),
        set.len()
    );

    // ----------------------------------------------------------------
    // 5. The index is dynamic: update a point and re-query.
    // ----------------------------------------------------------------
    let mut set = set;
    let moved = phi.map(&[1.0, 1.0, 1.0]);
    set.update_point(0, &moved).expect("update");
    let q2 = InequalityQuery::leq(vec![2.0, 1.0, 0.5, 3.0], 10.0).expect("valid");
    let out2 = set.query(&q2).expect("query");
    assert!(out2.sorted_ids().contains(&0));
    println!("\nafter moving point 0 near the origin it matches a tight query — index stays exact");
}
