//! Pool-based active learning with exact Planar-index retrieval (paper
//! §7.5.2): each round labels the unlabeled points nearest the current
//! decision hyperplane, found by the top-k nearest-neighbor query.
//!
//! Also contrasts the exact retrieval with an approximate hyperplane-hash
//! baseline (in the spirit of Jain et al.), reproducing the paper's
//! exact-vs-approximate argument.
//!
//! ```text
//! cargo run --release --example active_learning
//! ```

use planar::planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar::planar_learning::hashing::{recall, HyperplaneHash};
use planar::planar_learning::ActiveLearner;
use planar::prelude::*;
use std::time::Instant;

fn main() {
    // ----------------------------------------------------------------
    // 1. An unlabeled pool and a hidden ground-truth concept.
    // ----------------------------------------------------------------
    let pool = SyntheticConfig::paper(SyntheticKind::Independent, 50_000, 4).generate();
    let truth = |x: &[f64]| 2.0 * x[0] + x[1] + 3.0 * x[2] + 0.5 * x[3] >= 320.0;
    println!("pool: {} unlabeled points in R^{}", pool.len(), pool.dim());

    // ----------------------------------------------------------------
    // 2. Uncertainty sampling: 5 labels per side per round, retrieved
    //    exactly through the Planar index.
    // ----------------------------------------------------------------
    let domain = ParameterDomain::uniform_continuous(4, 0.2, 5.0).expect("domain");
    let mut learner = ActiveLearner::new(pool.clone(), domain, 20, 150.0, truth).expect("learner");
    println!("\nround  labels  accuracy  pool_touched");
    let reports = learner.run(30, 5).expect("run");
    for r in reports.iter().filter(|r| r.round % 5 == 0 || r.round == 1) {
        println!(
            "{:>5}  {:>6}  {:>7.1}%  {:>11.1}%",
            r.round,
            r.labels_used,
            100.0 * r.accuracy,
            r.checked_percentage
        );
    }
    let final_acc = reports.last().expect("rounds > 0").accuracy;
    println!(
        "\nreached {:.1}% accuracy with {} labels ({}% of the pool)",
        100.0 * final_acc,
        learner.labels_used(),
        100 * learner.labels_used() / pool.len()
    );

    // ----------------------------------------------------------------
    // 3. Exact vs approximate retrieval of the boundary points.
    // ----------------------------------------------------------------
    let w = learner.classifier().weights().to_vec();
    let b = learner.classifier().bias();
    let q = InequalityQuery::leq(w.clone(), b).expect("query");
    let k = 50;

    let start = Instant::now();
    let exact = SeqScan::new(&pool)
        .top_k(&TopKQuery::new(q.clone(), k).expect("k"))
        .expect("exact");
    let scan_ms = start.elapsed().as_secs_f64() * 1e3;

    println!("\nexact top-{k} via scan: {scan_ms:.2} ms; hashing baseline recall:");
    for tables in [4usize, 16, 64] {
        let hash = HyperplaneHash::build(&pool, tables, 9);
        let start = Instant::now();
        let approx = hash.top_k(&pool, &w, b, k, |row| q.satisfies(row));
        let hash_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "  {tables:>3} tables: recall {:>5.1}% in {hash_ms:.2} ms (approximate!)",
            100.0 * recall(&exact, &approx)
        );
    }
    println!("the Planar index achieves 100% recall for any k — it is exact by construction");
}
