//! Durability walkthrough: a write-ahead-logged index set that survives a
//! crash, replays its tail on reopen, and answers deadline-budgeted
//! batches honestly. Mirrors the README recovery cookbook.
//!
//! ```text
//! cargo run --release --example durability
//! ```

use std::time::Duration;

use planar::planar_core::PlanarError;
use planar::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), PlanarError> {
    // ----------------------------------------------------------------
    // 1. Build an in-memory set, then give it a durable home: snapshot
    //    generation 1 + manifest + an empty per-set WAL.
    // ----------------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(11);
    let rows: Vec<Vec<f64>> = (0..20_000)
        .map(|_| (0..4).map(|_| rng.random_range(1.0..100.0)).collect())
        .collect();
    let table = FeatureTable::from_rows(4, rows)?;
    let domain = ParameterDomain::uniform_continuous(4, 0.5, 2.0)?;
    let set: PlanarIndexSet = PlanarIndexSet::build(table, domain, IndexConfig::with_budget(8))?;

    let dir = std::env::temp_dir().join(format!("planar-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir); // fresh home or create() refuses

    // fsync every 8th record: at most 7 acknowledged mutations can be
    // lost to a *power* failure; a process crash loses nothing.
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(8));
    let mut durable = DurablePlanarIndexSet::create(&dir, set, opts)?;

    // ----------------------------------------------------------------
    // 2. Mutations are logged before they are applied.
    // ----------------------------------------------------------------
    let mut last = 0;
    for _ in 0..1_000 {
        let row: Vec<f64> = (0..4).map(|_| rng.random_range(1.0..100.0)).collect();
        last = durable.insert_point(&row)?;
    }
    durable.delete_point(last)?;
    let health = durable.wal_health();
    println!(
        "logged 1001 mutations: {} segment(s), last lsn {}, {} unsynced",
        health.segments, health.last_lsn, health.unsynced_records
    );

    // ----------------------------------------------------------------
    // 3. Crash. No checkpoint, no graceful shutdown.
    // ----------------------------------------------------------------
    drop(durable);

    // ----------------------------------------------------------------
    // 4. Reopen: the snapshot loads, the WAL tail replays, and the
    //    report says exactly what happened.
    // ----------------------------------------------------------------
    let (mut durable, report) = PlanarIndexSet::<VecStore>::open_durable(&dir, opts)?;
    println!(
        "recovered: replayed {} records (watermark {}), dropped {}, torn bytes {}",
        report.wal_replayed, report.wal_watermark, report.wal_dropped, report.wal_torn_bytes
    );
    assert_eq!(report.wal_replayed, 1001);
    assert_eq!(durable.len(), 20_000 + 1_000 - 1);

    // Checkpoint: snapshot the current state, then truncate the log.
    durable.save()?;
    assert_eq!(durable.wal_health().unsynced_records, 0);
    println!("checkpointed; the log now starts at the snapshot");

    // ----------------------------------------------------------------
    // 5. Deadline-budgeted batches: late answers come back as honest
    //    partials, never as silently wrong results.
    // ----------------------------------------------------------------
    let queries: Vec<InequalityQuery> = (0..64)
        .map(|_| {
            let coeffs: Vec<f64> = (0..4).map(|_| rng.random_range(0.5..2.0)).collect();
            InequalityQuery::leq(coeffs, rng.random_range(100.0..400.0))
        })
        .collect::<Result<_, _>>()?;

    let generous = ExecutionConfig::with_threads(2).with_deadline(Duration::from_secs(30));
    let outcomes = durable.query_batch(&queries, &generous)?;
    assert!(outcomes.iter().all(|o| !o.served_by.is_partial()));
    println!("generous budget: all {} queries answered", outcomes.len());

    let expired = ExecutionConfig::with_threads(2).with_deadline(Duration::ZERO);
    let outcomes = durable.query_batch(&queries, &expired)?;
    let partial = outcomes.iter().filter(|o| o.served_by.is_partial()).count();
    println!(
        "zero budget: {partial} of {} came back partial",
        outcomes.len()
    );
    assert_eq!(partial, outcomes.len());

    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
