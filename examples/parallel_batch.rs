//! Batched, multi-threaded querying through the public API.
//!
//! ```sh
//! cargo run --release --example parallel_batch
//! ```

use planar::prelude::*;

fn main() -> planar::planar_core::Result<()> {
    // 10k points in the positive octant, 4 features.
    let rows: Vec<Vec<f64>> = (0..10_000)
        .map(|i| {
            let x = i as f64;
            vec![x % 97.0, (x * 0.37) % 53.0, (x * 1.91) % 29.0, x % 11.0]
        })
        .collect();
    let table = FeatureTable::from_rows(4, rows)?;
    let domain = ParameterDomain::new(vec![Domain::Continuous { lo: 0.1, hi: 5.0 }; 4])?;

    let exec = ExecutionConfig::with_threads(4);
    let set: PlanarIndexSet =
        PlanarIndexSet::build_with(table, domain, IndexConfig::with_budget(16), &exec)?;

    let queries: Vec<InequalityQuery> = (1..=8)
        .map(|i| InequalityQuery::leq(vec![1.0, 0.5, 2.0, 0.25], 40.0 * i as f64))
        .collect::<planar::planar_core::Result<_>>()?;

    // One call, sharded across workers; results identical to a serial loop.
    let outcomes = set.query_batch(&queries, &exec)?;
    for (q, o) in queries.iter().zip(&outcomes) {
        println!(
            "b = {:6.1}  →  {:5} matches  ({:?}, verified {})",
            q.b(),
            o.matches.len(),
            o.stats.path,
            o.stats.verified
        );
    }

    // Reusing one scratch across single queries avoids per-query allocation.
    let mut scratch = QueryScratch::with_capacity(10_000);
    let single = set.query_with(&queries[3], &exec, &mut scratch)?;
    assert_eq!(single.matches, outcomes[3].matches);
    println!("single query_with matches batch result exactly");
    Ok(())
}
