//! The paper's Example 1 end to end: a parametric SQL function over an
//! electricity-consumption relation, answered through a function-based
//! Planar index.
//!
//! ```sql
//! CREATE FUNCTION Critical_Consume(threshold DOUBLE) RETURN ID
//! FROM Consumption
//! WHERE active - threshold * voltage * current <= 0
//! ```
//!
//! ```text
//! cargo run --release --example power_consumption
//! ```

use planar::planar_datagen::ConsumptionGenerator;
use planar::planar_relation::{Coef, Expr, FunctionSpec, Relation, Schema};
use planar::prelude::*;
use std::time::Instant;

fn main() {
    // ----------------------------------------------------------------
    // 1. Load the (simulated) household measurements into a columnar
    //    relation: Consumption(active, reactive, voltage, current).
    // ----------------------------------------------------------------
    let n = 200_000;
    let schema = Schema::new(["active", "reactive", "voltage", "current"]).expect("schema");
    let mut relation = Relation::with_capacity(schema.clone(), n);
    for h in ConsumptionGenerator::new(n).households() {
        relation
            .insert(&[h.active, h.reactive, h.voltage, h.current])
            .expect("insert");
    }
    println!(
        "Consumption relation: {} rows x {} columns",
        relation.len(),
        4
    );

    // ----------------------------------------------------------------
    // 2. Declare the function's indexable skeleton:
    //    φ(x) = (active, voltage·current), coefficients (1, −threshold),
    //    threshold ∈ (0.1, 1.0).
    // ----------------------------------------------------------------
    let spec = FunctionSpec::new()
        .axis(
            Expr::parse("active", &schema).expect("expr"),
            Coef::constant(1.0),
        )
        .axis(
            Expr::parse("voltage * current", &schema).expect("expr"),
            Coef::param(0, -1.0, Domain::Continuous { lo: 0.1, hi: 1.0 }),
        )
        .cmp(Cmp::Leq)
        .offset(0.0);
    let build_start = Instant::now();
    let index = spec.build(&relation, 100).expect("function index");
    println!(
        "function index built in {:.2}s ({} Planar indices)",
        build_start.elapsed().as_secs_f64(),
        index.index_set().num_indices()
    );

    // ----------------------------------------------------------------
    // 3. Call the function with run-time thresholds and compare against
    //    the sequential-scan baseline.
    // ----------------------------------------------------------------
    println!(
        "\n{:>9}  {:>9}  {:>10}  {:>11}  {:>8}",
        "threshold", "matches", "planar_ms", "baseline_ms", "speedup"
    );
    for threshold in [0.2, 0.35, 0.5, 0.65, 0.8, 0.95] {
        let start = Instant::now();
        let fast = index.call(&[threshold]).expect("call");
        let planar_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let slow = index.call_scan(&[threshold]).expect("scan");
        let baseline_ms = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(fast.sorted_ids(), slow.sorted_ids(), "exactness");
        println!(
            "{threshold:>9.2}  {:>9}  {planar_ms:>10.3}  {baseline_ms:>11.3}  {:>7.1}x",
            fast.matches.len(),
            baseline_ms / planar_ms.max(1e-9),
        );
    }

    // ----------------------------------------------------------------
    // 4. Nearest-to-threshold households (top-k): who is just at the
    //    critical power factor?
    // ----------------------------------------------------------------
    let top = index.call_top_k(&[0.5], 3).expect("top_k");
    println!("\nhouseholds closest to the 0.5 power-factor boundary:");
    for (id, dist) in &top.neighbors {
        let row = relation.row(*id).expect("row");
        let pf = row[0] / (row[2] * row[3]);
        println!("  row {id:<7} power factor {pf:.4} (hyperplane distance {dist:.2})");
    }

    // ----------------------------------------------------------------
    // 5. The relation is live: a household's consumption changes.
    // ----------------------------------------------------------------
    let mut index = index;
    let mut row = relation.row(0).expect("row");
    row[0] *= 0.1; // active power drops 10x → power factor drops 10x
    relation.update_row(0, &row).expect("update");
    index.refresh_row(&relation, 0).expect("refresh");
    let out = index.call(&[0.15]).expect("call");
    assert!(out.sorted_ids().contains(&0));
    println!("\nafter household 0's consumption drop it appears in Critical_Consume(0.15)");
}
