//! Qualitative claims from the paper, checked as executable assertions:
//! Corollary 1 (parallel index → empty intermediate interval), the RQ^d
//! coverage effect behind Fig. 7's four-orders speedup at RQ=2, the
//! anti-correlated blowup of §7.2.2, Fig. 11's unimodal verification load,
//! and Table 3's sublinear checked-points behavior.

use planar::planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar::planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar::prelude::*;

/// Corollary 1: an index parallel to the query makes both the stretch and
/// the intermediate interval (nearly) vanish.
#[test]
fn corollary1_parallel_index_zero_intermediate() {
    let table = SyntheticConfig::paper(SyntheticKind::Independent, 5_000, 6).generate();
    let domain = eq18_domain(6, 4);
    // One explicit normal, equal to the query we will ask.
    let normal = vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0];
    let set = PlanarIndexSet::<planar_core::VecStore>::with_normals(
        table,
        domain,
        vec![normal.clone()],
        SelectionStrategy::MinStretch,
    )
    .expect("build");
    let maxima = set.table().max_per_dim();
    let b = 0.25 * normal.iter().zip(&maxima).map(|(a, m)| a * m).sum::<f64>();
    let q = InequalityQuery::leq(normal, b).expect("query");
    let out = set.query(&q).expect("query");
    // Only epsilon-boundary keys may be verified.
    assert!(
        out.stats.intermediate <= 2,
        "II should be ~0 for a parallel index, got {}",
        out.stats.intermediate
    );
}

/// With RQ=2 and d=6 there are only 64 possible query normals; a budget of
/// 100 indices covers them all after dedup, so *every* query finds a
/// parallel index and pruning is (near-)total. This is the mechanism behind
/// the paper's four-orders-of-magnitude speedups in Fig. 7b.
#[test]
fn rq2_dim6_full_coverage_gives_total_pruning() {
    let table = SyntheticConfig::paper(SyntheticKind::Independent, 20_000, 6).generate();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, eq18_domain(6, 2), IndexConfig::with_budget(100))
            .expect("build");
    assert!(
        set.num_indices() <= 64,
        "dedup must cap indices at the 2^6 distinct normals (got {})",
        set.num_indices()
    );
    let mut generator = Eq18Generator::new(set.table(), 2, 99);
    for q in generator.queries(25) {
        let out = set.query(&q).expect("query");
        assert!(
            out.stats.pruning_percentage() > 99.9,
            "RQ=2 queries should find a parallel index (pruning {:.2}%)",
            out.stats.pruning_percentage()
        );
    }
}

/// §7.2.2: anti-correlated data generates larger intermediate intervals
/// than independent data (in higher dimensions, for non-covered queries).
#[test]
fn anticorrelated_data_has_larger_intermediate_intervals() {
    let mut mean_ii = Vec::new();
    for kind in [SyntheticKind::Independent, SyntheticKind::AntiCorrelated] {
        let table = SyntheticConfig::paper(kind, 20_000, 6).generate();
        let set: PlanarIndexSet =
            PlanarIndexSet::build(table, eq18_domain(6, 8), IndexConfig::with_budget(10))
                .expect("build");
        let mut generator = Eq18Generator::new(set.table(), 8, 4);
        let total: usize = generator
            .queries(25)
            .iter()
            .map(|q| set.query(q).expect("query").stats.intermediate)
            .sum();
        mean_ii.push(total as f64 / 25.0);
    }
    assert!(
        mean_ii[1] > mean_ii[0],
        "anti-correlated II ({}) should exceed independent II ({})",
        mean_ii[1],
        mean_ii[0]
    );
}

/// Fig. 11: the verification load (intermediate interval) is unimodal in
/// the inequality parameter — extreme thresholds are mostly pruned
/// wholesale, mid thresholds require the most verification.
#[test]
fn verification_load_is_unimodal_in_inequality_parameter() {
    let table = SyntheticConfig::paper(SyntheticKind::Independent, 20_000, 6).generate();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, eq18_domain(6, 4), IndexConfig::with_budget(100))
            .expect("build");
    let mut by_s = Vec::new();
    for s in [0.05, 0.5, 1.2] {
        let mut generator = Eq18Generator::new(set.table(), 4, 31).with_inequality_parameter(s);
        let total: usize = generator
            .queries(20)
            .iter()
            .map(|q| set.query(q).expect("query").stats.intermediate)
            .sum();
        by_s.push(total);
    }
    assert!(
        by_s[1] > by_s[0],
        "mid threshold should verify more: {by_s:?}"
    );
    assert!(
        by_s[1] > by_s[2],
        "extreme threshold should verify less: {by_s:?}"
    );
}

/// Fig. 11 selectivity: the fraction of matching points grows monotonically
/// with the inequality parameter and reaches 100% at s = 1.
#[test]
fn selectivity_grows_with_inequality_parameter() {
    let table = SyntheticConfig::paper(SyntheticKind::Correlated, 10_000, 6).generate();
    let n = table.len();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, eq18_domain(6, 4), IndexConfig::with_budget(20))
            .expect("build");
    let mut previous = 0usize;
    for s in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let mut generator = Eq18Generator::new(set.table(), 1, 8).with_inequality_parameter(s);
        let q = generator.next_query();
        let matched = set.query(&q).expect("query").matches.len();
        assert!(matched >= previous, "selectivity must not drop at s={s}");
        previous = matched;
    }
    assert_eq!(previous, n, "s=1 must match everything");
}

/// Table 3 behavior: the fraction of points the top-k query touches grows
/// only mildly with k (the paper checks 10.97% → 12.62% while k grows
/// 200-fold).
#[test]
fn topk_checked_points_grow_sublinearly_with_k() {
    let table = SyntheticConfig::paper(SyntheticKind::Independent, 20_000, 6).generate();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, eq18_domain(6, 4), IndexConfig::with_budget(100))
            .expect("build");
    let mut generator = Eq18Generator::new(set.table(), 4, 2);
    let q = generator.next_query();
    let mut checked = Vec::new();
    for k in [1usize, 20, 400] {
        let tk = TopKQuery::new(q.clone(), k).expect("k");
        checked.push(set.top_k(&tk).expect("top_k").stats.checked());
    }
    // 400x more results must cost far less than 400x more checks.
    assert!(checked[2] < checked[0] * 50 + 400, "{checked:?}");
    assert!(
        checked[0] <= checked[1] && checked[1] <= checked[2],
        "{checked:?}"
    );
}
