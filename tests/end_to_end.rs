//! Cross-crate integration: datasets from `planar-datagen` flow through the
//! `planar-core` index and always agree with the sequential scan.

use planar::planar_datagen::consumption::{
    consumption_domain, critical_consume_query, ConsumptionGenerator,
};
use planar::planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar::planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar::planar_datagen::{cmoment, ctexture};
use planar::prelude::*;

fn assert_index_equals_scan(table: FeatureTable, domain: ParameterDomain, rq: usize, seed: u64) {
    let scan_table = table.clone();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(20).seed(seed))
            .expect("build");
    let scan = SeqScan::new(&scan_table);
    let mut generator = Eq18Generator::new(set.table(), rq, seed);
    for q in generator.queries(10) {
        let out = set.query(&q).expect("query");
        assert!(out.stats.used_index(), "indexed path expected");
        assert_eq!(out.sorted_ids(), scan.evaluate(&q).expect("scan"));
        // Top-k agrees too.
        let tk = TopKQuery::new(q, 7).expect("k");
        assert_eq!(
            set.top_k(&tk).expect("top_k").neighbors,
            scan.top_k(&tk).expect("scan top_k")
        );
    }
}

#[test]
fn synthetic_datasets_all_kinds_and_dims() {
    for kind in SyntheticKind::ALL {
        for dim in [2usize, 6, 10] {
            let table = SyntheticConfig::paper(kind, 3_000, dim).generate();
            for rq in [2usize, 8] {
                assert_index_equals_scan(table.clone(), eq18_domain(dim, rq), rq, 17);
            }
        }
    }
}

#[test]
fn image_datasets_exercise_octant_translation() {
    // CMoment has negative feature values: the §4.5 translation must kick
    // in and stay exact.
    let cm = cmoment(4_000, 3);
    assert!(cm.iter().any(|(_, row)| row.iter().any(|&v| v < 0.0)));
    assert_index_equals_scan(cm, eq18_domain(9, 4), 4, 5);

    let ct = ctexture(4_000, 3);
    assert_index_equals_scan(ct, eq18_domain(16, 4), 4, 5);
}

#[test]
fn consumption_sql_function_full_pipeline() {
    let table = ConsumptionGenerator::new(5_000).feature_table();
    let scan_table = table.clone();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, consumption_domain(), IndexConfig::with_budget(30))
            .expect("build");
    let scan = SeqScan::new(&scan_table);
    for threshold in [0.1, 0.33, 0.501, 0.75, 0.999] {
        let q = critical_consume_query(threshold);
        let out = set.query(&q).expect("query");
        assert!(out.stats.used_index(), "threshold {threshold}");
        assert_eq!(out.sorted_ids(), scan.evaluate(&q).expect("scan"));
    }
}

#[test]
fn feature_map_pipeline_via_facade() {
    // Raw points → φ → index, all through the umbrella crate's prelude.
    let raw: Vec<Vec<f64>> = (0..500)
        .map(|i| vec![(i % 17) as f64 + 1.0, (i % 23) as f64 + 1.0])
        .collect();
    let phi = FnFeatureMap::new(2, 3, |x, out| {
        out[0] = x[0];
        out[1] = x[1];
        out[2] = x[0] * x[1];
    });
    let table = phi.map_all(raw.iter().map(|p| p.as_slice())).expect("map");
    let domain = ParameterDomain::uniform_continuous(3, 0.5, 2.0).expect("domain");
    let scan_table = table.clone();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(8)).expect("build");
    let q = InequalityQuery::leq(vec![1.0, 1.0, 0.7], 150.0).expect("query");
    assert_eq!(
        set.query(&q).expect("query").sorted_ids(),
        SeqScan::new(&scan_table).evaluate(&q).expect("scan")
    );
}

#[test]
fn dynamic_workload_over_synthetic_data() {
    // Build over half the dataset, stream in the rest, mutate, stay exact.
    let table = SyntheticConfig::paper(SyntheticKind::Correlated, 2_000, 4).generate();
    let rows: Vec<Vec<f64>> = table.iter().map(|(_, r)| r.to_vec()).collect();
    let initial = FeatureTable::from_rows(4, rows[..1_000].to_vec()).expect("table");
    let mut set: DynamicPlanarIndexSet =
        PlanarIndexSet::build(initial, eq18_domain(4, 4), IndexConfig::with_budget(10))
            .expect("build");
    for row in &rows[1_000..] {
        set.insert_point(row).expect("insert");
    }
    for id in (0..2_000u32).step_by(37) {
        set.delete_point(id).expect("delete");
    }
    for id in (1..2_000u32).step_by(41) {
        if id % 37 != 0 {
            set.update_point(id, &[50.0, 50.0, 50.0, 50.0])
                .expect("update");
        }
    }
    let mut generator = Eq18Generator::new(set.table(), 4, 23);
    for q in generator.queries(10) {
        let indexed = set.query(&q).expect("query").sorted_ids();
        let scanned = set.query_scan(&q).expect("scan").sorted_ids();
        assert_eq!(indexed, scanned);
    }
}
