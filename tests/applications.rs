//! Integration tests for the two application stacks the paper evaluates:
//! moving-object intersection (§7.5.1) and active learning (§7.5.2), plus
//! the SQL-function pipeline of Example 1 through `planar-relation`.

use planar::planar_learning::{ActiveLearner, TopKRetriever};
use planar::planar_moving::intersection::{
    AcceleratingIntersectionIndex, CircularIntersectionIndex, LinearIntersectionIndex,
};
use planar::planar_moving::rtree::mbr_intersection;
use planar::planar_moving::{baseline, workload};
use planar::planar_relation::{Coef, Expr, FunctionSpec, Relation, Schema};
use planar::prelude::*;
use planar_core::VecStore;

const INSTANTS: [f64; 6] = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];

fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    v
}

#[test]
fn all_three_motion_models_agree_with_baseline_and_each_other() {
    let lin_a = workload::linear_objects(60, 500.0, 1);
    let lin_b = workload::linear_objects(55, 500.0, 2);
    let linear: LinearIntersectionIndex<VecStore> =
        LinearIntersectionIndex::build(lin_a.clone(), lin_b.clone(), &INSTANTS).expect("build");

    let circles = workload::circular_objects(25, 3);
    let lines = workload::linear_objects(40, 100.0, 4);
    let circular: CircularIntersectionIndex<VecStore> =
        CircularIntersectionIndex::build(&circles, &lines, &INSTANTS).expect("build");

    let accel = workload::accelerating_objects(30, 600.0, 5);
    let lines3 = workload::linear_objects_3d(35, 600.0, 6);
    let accelerating: AcceleratingIntersectionIndex<VecStore> =
        AcceleratingIntersectionIndex::build(&accel, &lines3, &INSTANTS).expect("build");

    for t in [10.0, 11.25, 12.5, 13.75, 15.0] {
        let (got, _) = linear.query(t, 12.0).expect("linear query");
        assert_eq!(
            sorted(got.clone()),
            sorted(baseline::linear_pairs_within(&lin_a, &lin_b, t, 12.0)),
            "linear t={t}"
        );
        // MBR specialist agrees as well.
        assert_eq!(
            sorted(got),
            sorted(mbr_intersection(&lin_a, &lin_b, t, 12.0)),
            "mbr t={t}"
        );

        let (got, _) = circular.query(t, 12.0).expect("circular query");
        assert_eq!(
            sorted(got),
            sorted(baseline::circular_pairs_within(&circles, &lines, t, 12.0)),
            "circular t={t}"
        );

        let (got, _) = accelerating.query(t, 12.0).expect("accelerating query");
        assert_eq!(
            sorted(got),
            sorted(baseline::accelerating_pairs_within(
                &accel, &lines3, t, 12.0
            )),
            "accelerating t={t}"
        );
    }
}

#[test]
fn indexed_instant_prunes_near_everything() {
    let a = workload::linear_objects(80, 800.0, 7);
    let b = workload::linear_objects(80, 800.0, 8);
    let idx: LinearIntersectionIndex<VecStore> =
        LinearIntersectionIndex::build(a, b, &INSTANTS).expect("build");
    let (_, stats) = idx.query(13.0, 10.0).expect("query");
    assert!(
        stats.pruning_percentage() > 99.0,
        "parallel index must prune (got {:.1}%)",
        stats.pruning_percentage()
    );
}

#[test]
fn active_learning_stack_improves_over_initial() {
    let pool = {
        let mut rng_rows = Vec::new();
        for i in 0..1_500usize {
            rng_rows.push(vec![
                1.0 + (i * 7 % 97) as f64,
                1.0 + (i * 13 % 89) as f64,
                1.0 + (i * 29 % 83) as f64,
            ]);
        }
        FeatureTable::from_rows(3, rng_rows).expect("pool")
    };
    let domain = ParameterDomain::uniform_continuous(3, 0.2, 5.0).expect("domain");
    let mut learner = ActiveLearner::new(pool, domain, 10, 100.0, |x| {
        x[0] + 2.0 * x[1] + x[2] >= 190.0
    })
    .expect("learner");
    let initial = learner.pool_accuracy();
    let reports = learner.run(25, 4).expect("run");
    let last = reports.last().expect("rounds");
    assert!(
        last.accuracy >= initial && last.accuracy > 0.9,
        "initial {initial}, final {}",
        last.accuracy
    );
}

#[test]
fn retriever_equals_scan_on_both_sides() {
    let pool = FeatureTable::from_rows(
        2,
        (0..300)
            .map(|i| vec![1.0 + (i % 19) as f64, 1.0 + (i % 31) as f64])
            .collect::<Vec<_>>(),
    )
    .expect("pool");
    let retriever = TopKRetriever::build(
        pool,
        ParameterDomain::uniform_continuous(2, 0.5, 2.0).expect("domain"),
        6,
    )
    .expect("retriever");
    for side in [
        planar::planar_learning::Side::Positive,
        planar::planar_learning::Side::Negative,
    ] {
        let (fast, _) = retriever.closest(&[1.0, 1.5], 30.0, side, 9).expect("fast");
        let slow = retriever
            .closest_scan(&[1.0, 1.5], 30.0, side, 9)
            .expect("slow");
        assert_eq!(fast, slow, "{side:?}");
    }
}

#[test]
fn sql_function_pipeline_with_parsed_expressions() {
    let schema = Schema::new(["a", "b", "c"]).expect("schema");
    let mut rel = Relation::new(schema.clone());
    for i in 0..500 {
        rel.insert(&[
            (i % 13) as f64 + 1.0,
            (i % 7) as f64 + 1.0,
            (i % 29) as f64 + 1.0,
        ])
        .expect("insert");
    }
    // f(p) := a·b + c² ≥ p·10
    let index = FunctionSpec::new()
        .axis(
            Expr::parse("a * b", &schema).expect("expr"),
            Coef::constant(1.0),
        )
        .axis(
            Expr::parse("c ^ 2", &schema).expect("expr"),
            Coef::constant(1.0),
        )
        .cmp(Cmp::Geq)
        .offset_param(0, 10.0)
        .build(&rel, 8)
        .expect("index");
    for p in [1.0, 5.0, 20.0, 50.0] {
        let fast = index.call(&[p]).expect("call");
        let slow = index.call_scan(&[p]).expect("scan");
        assert_eq!(fast.sorted_ids(), slow.sorted_ids(), "p={p}");
        // Verify semantics directly on a few rows.
        for id in fast.sorted_ids().into_iter().take(3) {
            let row = rel.row(id).expect("row");
            assert!(row[0] * row[1] + row[2] * row[2] >= p * 10.0);
        }
    }
}
