//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the rand 0.9 API the workspace actually uses:
//! [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — a
//! high-quality, fast, deterministic PRNG. Streams differ from upstream
//! rand's ChaCha-based `StdRng`, which is fine: nothing in the workspace
//! depends on the exact stream, only on determinism given a seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the standard distribution of `T` (uniform on `[0, 1)`
    /// for floats, uniform over all values for integers and `bool`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `u64` bits → uniform `f64` in `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable from the standard distribution.
pub trait StandardSample {
    /// Draw one standard sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64. Deterministic given a seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this shim's small generator is the same as its standard one.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3..7);
            assert!((3..7).contains(&v));
            let f = rng.random_range(-2.5..=2.5_f64);
            assert!((-2.5..=2.5).contains(&f));
            let u = rng.random_range(0..=0usize);
            assert_eq!(u, 0);
        }
        // Inclusive upper bound is reachable.
        let mut hit_hi = false;
        for _ in 0..1000 {
            if rng.random_range(0..=1) == 1 {
                hit_hi = true;
            }
        }
        assert!(hit_hi);
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
