//! Test configuration and the per-test RNG.

pub use rand::{Rng, RngCore, SeedableRng};

/// Number of sampled cases per property test.
///
/// Upstream proptest carries many more knobs; the workspace only ever sets
/// `cases`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// How many random cases each property test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The RNG driving a single property test.
///
/// Seeded from an FNV-1a hash of the test name, so each test gets an
/// independent but run-to-run stable stream. Set `PROPTEST_SEED=<u64>` to
/// perturb every stream at once.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// The RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = seed.parse::<u64>() {
                h ^= v;
            }
        }
        Self(rand::rngs::StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
