//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range/tuple/
//! collection strategies, [`Just`], [`any`], weighted unions, and the
//! `proptest!` / `prop_compose!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs via the ordinary
//!   panic message (values appear in `prop_assert!` format args), but is not
//!   minimized.
//! - **Derived seeding.** Each test's RNG seed is derived from the test name
//!   (stable across runs); set `PROPTEST_SEED=<u64>` to perturb all streams
//!   at once when hunting for new counterexamples.
//! - `ProptestConfig` carries only `cases`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use rand::Rng as _;
use test_runner::TestRng;

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike upstream proptest this is a plain sampler — no value trees, no
/// shrinking — which keeps the trait object-safe enough to box.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draw one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample_value(rng)))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy built from a plain sampling closure. Used by the
/// `prop_compose!` expansion; also handy directly.
#[derive(Debug, Clone)]
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A weighted choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.random_range(0..total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.sample_value(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);

/// The standard ("arbitrary") strategy for `T` — uniform over the type's
/// value space. See [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        rng.random()
    }
}

/// The `any::<T>()` entry point: the standard strategy for `T`.
pub fn any<T: rand::StandardSample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works after a prelude
/// glob import, as in upstream proptest.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

/// Assert inside a property test (alias for `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test (alias for `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test (alias for `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// A (possibly weighted) choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((($weight) as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Define a function returning a composite strategy. Supports the one- and
/// two-binding-group forms of the upstream macro.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($fnargs:tt)*)
        ($($pat1:pat in $strat1:expr),+ $(,)?)
        ($($pat2:pat in $strat2:expr),+ $(,)?)
      -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($fnargs)*) -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $pat1 = $crate::Strategy::sample_value(&($strat1), rng);)+
                $(let $pat2 = $crate::Strategy::sample_value(&($strat2), rng);)+
                $body
            })
        }
    };
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($fnargs:tt)*)
        ($($pat1:pat in $strat1:expr),+ $(,)?)
      -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($fnargs)*) -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $pat1 = $crate::Strategy::sample_value(&($strat1), rng);)+
                $body
            })
        }
    };
}

/// Run each contained `fn(bindings in strategies) { body }` as a `#[test]`
/// over `Config::cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(::core::stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    fn small() -> impl Strategy<Value = f64> {
        prop_oneof![
            4 => -10.0..10.0_f64,
            1 => Just(0.0),
        ]
    }

    prop_compose! {
        fn sized_rows()(n in 1..=4usize)(
            n in Just(n),
            rows in prop::collection::vec(prop::collection::vec(small(), n), 1..5),
        ) -> (usize, Vec<Vec<f64>>) {
            (n, rows)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn rows_have_declared_width((n, rows) in sized_rows()) {
            prop_assert!(!rows.is_empty());
            for r in &rows {
                prop_assert_eq!(r.len(), n);
            }
        }

        #[test]
        fn flat_map_threads_the_bound_value(
            (d, v) in (2..=6usize).prop_flat_map(|d| (
                Just(d),
                prop::collection::vec(0.0..1.0_f64, d),
            )),
        ) {
            prop_assert_eq!(v.len(), d);
        }

        #[test]
        fn any_and_tuples_work(
            flags in prop::collection::vec((0..3u8, any::<bool>(), any::<u16>()), 1..8),
        ) {
            for (op, _b, _u) in &flags {
                prop_assert!(*op < 3);
            }
        }
    }

    #[test]
    fn streams_are_deterministic_per_test_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let s = 0.0..1.0_f64;
        for _ in 0..32 {
            assert_eq!(
                s.sample_value(&mut a).to_bits(),
                s.sample_value(&mut b).to_bits()
            );
        }
        let mut c = TestRng::for_test("beta");
        assert_ne!(
            s.sample_value(&mut a).to_bits(),
            s.sample_value(&mut c).to_bits()
        );
    }
}
