//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small subset of the bytes 1.x API the workspace uses for index
//! persistence: [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`]
//! accessor traits (little-endian integer and float put/get, slices, and a
//! consuming cursor).
//!
//! Unlike upstream `bytes` there is no zero-copy reference counting:
//! [`Bytes`] owns a plain `Vec<u8>` plus a read cursor. That is entirely
//! adequate for serialize-to-file / deserialize-from-file workloads.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer with a consuming read cursor.
///
/// `Deref`/`AsRef` expose the *remaining* (unread) bytes, matching upstream
/// `bytes` semantics where `get_*` calls advance the view.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `data` into a new owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Number of remaining bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes remaining)", self.len())
    }
}

/// A growable byte buffer for serialization.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes, returning them as a slice view is not supported;
    /// implementations advance an internal cursor.
    fn advance(&mut self, n: usize);

    /// Are there any bytes left to read?
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Copy `dst.len()` bytes into `dst`, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "cannot advance past end of buffer");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(-1.5);
        buf.put_slice(b"tail");
        let mut bytes = buf.freeze();

        assert_eq!(bytes.remaining(), 1 + 4 + 8 + 8 + 4);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(bytes.get_f64_le(), -1.5);
        let mut tail = [0u8; 4];
        bytes.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn deref_tracks_cursor() {
        let mut bytes = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&bytes[..], &[1, 2, 3, 4]);
        assert_eq!(bytes.get_u8(), 1);
        assert_eq!(&bytes[..], &[2, 3, 4]);
        assert_eq!(bytes.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::copy_from_slice(&[1]);
        bytes.get_u32_le();
    }
}
