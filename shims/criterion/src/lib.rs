//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the criterion 0.x API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock sampler: per benchmark it warms up,
//! calibrates an iteration batch to a minimum sample duration, collects
//! `sample_size` samples, and prints mean / min / max (plus element
//! throughput when declared). No statistics engine, no HTML reports.
//!
//! Like upstream criterion, when the binary is executed **without** the
//! `--bench` flag (e.g. by `cargo test`, which runs `harness = false` bench
//! targets directly) every benchmark body runs exactly once as a smoke
//! test and no timing is collected.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; `cargo test` does not.
        let quick = !std::env::args().any(|a| a == "--bench");
        Self { quick }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
            quick,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        let quick = group.quick;
        group.run_one(name.to_string(), quick, f);
        group.finish();
        self
    }
}

/// Declared per-iteration work, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A named group of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    quick: bool,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark (ignored in quick mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let quick = self.quick;
        self.run_one(full, quick, f);
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let quick = self.quick;
        self.run_one(full, quick, |b| f(b, input));
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}

    fn run_one(&mut self, label: String, quick: bool, mut f: impl FnMut(&mut Bencher)) {
        if quick {
            let mut b = Bencher {
                mode: Mode::Once,
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{label}: ok (smoke run)");
            return;
        }

        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least ~20ms (or a single iteration already does).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                mode: Mode::Measure,
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                mode: Mode::Measure,
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0_f64, f64::max);
        let mut line = format!(
            "{label}: mean {} [min {}, max {}] ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            samples.len(),
            iters,
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            line.push_str(&format!(", {:.0} elem/s", n as f64 / mean));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            line.push_str(&format!(", {:.0} B/s", n as f64 / mean));
        }
        println!("{line}");
    }
}

enum Mode {
    Once,
    Measure,
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code to
/// time.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` (or run it once in smoke mode).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            Mode::Once => {
                black_box(f());
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
            }
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_body_once() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_times_samples() {
        let mut c = Criterion { quick: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("p"), &7u64, |b, &x| {
            b.iter(|| {
                total = total.wrapping_add(x);
                black_box(total)
            });
        });
        group.finish();
        assert!(total > 0);
    }
}
