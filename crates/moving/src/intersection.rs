//! Pair-intersection indexes: the φ-mappings of Example 2 / §7.5.1 and the
//! MOVIES-style time-sliced Planar index sets built on them.
//!
//! Each index answers: *given a future time `t` and distance `S`, which
//! cross-set pairs are within `S` at `t`?* The squared pair distance is a
//! scalar product `⟨params(t), φ(pair)⟩`, so one `PlanarIndexSet` over all
//! pairs — with one index normal per anticipated time instant — answers the
//! query exactly. When `t` hits an indexed instant the chosen index is
//! *parallel* to the query and pruning is total (paper Corollary 1).

use crate::kinematics::{dot3, sub3, AcceleratingMotion, CircularMotion, LinearMotion};
use crate::{MovingError, Pair, Result};
use planar_core::{
    Domain, FeatureTable, InequalityQuery, KeyStore, ParameterDomain, PlanarIndexSet, QueryStats,
    SelectionStrategy, VecStore,
};

/// Smallest positive value used to keep trigonometric parameter domains and
/// index normals away from zero (a coefficient of exactly zero falls back
/// to a scan — sound, just slower; see `planar_core::stats::ScanReason`).
const TRIG_EPS: f64 = 1e-6;

// ---------------------------------------------------------------------------
// φ-mappings and parameter vectors
// ---------------------------------------------------------------------------

/// Linear–linear pair features: `φ = (|Δp|², 2Δp·Δu, |Δu|²)` (§7.5.1).
pub fn linear_pair_phi(a: &LinearMotion, b: &LinearMotion) -> [f64; 3] {
    let dp = sub3(&a.p, &b.p);
    let du = sub3(&a.u, &b.u);
    [dot3(&dp, &dp), 2.0 * dot3(&dp, &du), dot3(&du, &du)]
}

/// Linear–linear parameter vector `(1, t, t²)`.
pub fn linear_params(t: f64) -> [f64; 3] {
    [1.0, t, t * t]
}

/// Accelerating–linear pair features (§7.5.1, corrected for the paper's
/// obvious typos): with `Δp = p₁−p₂`, `Δu = u₁−u₂` and `a` the acceleration
/// of the first object,
///
/// ```text
/// |Δ(t)|² = |Δp|² + 2Δp·Δu·t + (|Δu|² + Δp·a)·t² + (Δu·a)·t³ + ¼|a|²·t⁴
/// ```
pub fn accelerating_pair_phi(acc: &AcceleratingMotion, lin: &LinearMotion) -> [f64; 5] {
    let dp = sub3(&acc.p, &lin.p);
    let du = sub3(&acc.u, &lin.u);
    [
        dot3(&dp, &dp),
        2.0 * dot3(&dp, &du),
        dot3(&du, &du) + dot3(&dp, &acc.a),
        dot3(&du, &acc.a),
        0.25 * dot3(&acc.a, &acc.a),
    ]
}

/// Accelerating–linear parameter vector `(1, t, t², t³, t⁴)`.
pub fn accelerating_params(t: f64) -> [f64; 5] {
    let t2 = t * t;
    [1.0, t, t2, t2 * t, t2 * t2]
}

/// Circular–linear pair features — the paper's Example 2 monomials
/// `X₁ … X₇` for a circle `(r·sin ωt, r·cos ωt)` against a line
/// `(pₓ+uₓt, p_y+u_yt)`:
pub fn circular_pair_phi(c: &CircularMotion, l: &LinearMotion) -> [f64; 7] {
    let (r, px, py, ux, uy) = (c.r, l.p[0], l.p[1], l.u[0], l.u[1]);
    [
        r * r + px * px + py * py + 2.0 * r * px + 2.0 * r * py, // X1
        2.0 * (ux * (r + px) + uy * (r + py)),                   // X2
        -2.0 * r * px,                                           // X3
        -2.0 * r * py,                                           // X4
        -2.0 * r * ux,                                           // X5
        -2.0 * r * uy,                                           // X6
        ux * ux + uy * uy,                                       // X7
    ]
}

/// Circular–linear parameter vector (Example 2): depends on the circular
/// object's angular velocity `ω` as well as `t`:
/// `(1, t, 1+sin ωt, 1+cos ωt, t(1+sin ωt), t(1+cos ωt), t²)`.
pub fn circular_params(t: f64, omega: f64) -> [f64; 7] {
    let (s, c) = (omega * t).sin_cos();
    [
        1.0,
        t,
        1.0 + s,
        1.0 + c,
        t * (1.0 + s),
        t * (1.0 + c),
        t * t,
    ]
}

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

fn validate_instants(instants: &[f64]) -> Result<(f64, f64)> {
    if instants.is_empty() || instants.iter().any(|&t| t <= 0.0 || !t.is_finite()) {
        return Err(MovingError::BadTimeInstants);
    }
    let lo = instants.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = instants.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok((lo, hi))
}

fn recompute_horizon(instants: &[f64]) -> (f64, f64) {
    let lo = instants.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = instants.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

fn check_advance(instants: &[f64], new_instant: f64) -> Result<()> {
    let max = instants.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !new_instant.is_finite() || new_instant <= max {
        return Err(MovingError::BadTimeInstants);
    }
    Ok(())
}

fn check_pair_count(a: usize, b: usize) -> Result<()> {
    if a == 0 || b == 0 {
        return Err(MovingError::EmptySet);
    }
    if (a as u128) * (b as u128) > u32::MAX as u128 {
        return Err(MovingError::TooManyPairs);
    }
    Ok(())
}

fn check_horizon(t: f64, horizon: (f64, f64)) -> Result<()> {
    // A small slack past the horizon is fine — the index stays exact, only
    // slower — but a far-future query should rebuild the time slices
    // (MOVIES-style), so we enforce one horizon-width of slack.
    let width = (horizon.1 - horizon.0).max(1.0);
    if t < horizon.0 - width || t > horizon.1 + width {
        return Err(MovingError::TimeOutsideHorizon { t, horizon });
    }
    Ok(())
}

/// Intersection-query statistics aggregated over the underlying Planar
/// queries (one per query for linear/accelerating, one per circular object
/// for circular).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntersectionStats {
    /// Total pairs considered.
    pub pairs: usize,
    /// Pairs pruned without a scalar product.
    pub pruned: usize,
    /// Pairs verified exactly.
    pub verified: usize,
    /// Matching pairs.
    pub matched: usize,
}

impl IntersectionStats {
    fn absorb(&mut self, s: &QueryStats) {
        self.pairs += s.n;
        self.pruned += s.smaller + s.larger;
        self.verified += s.verified;
        self.matched += s.matched;
    }

    /// Pruning percentage over all pairs.
    pub fn pruning_percentage(&self) -> f64 {
        if self.pairs == 0 {
            return 100.0;
        }
        100.0 * self.pruned as f64 / self.pairs as f64
    }
}

// ---------------------------------------------------------------------------
// Linear–linear
// ---------------------------------------------------------------------------

/// Time-sliced Planar index over all pairs of two constant-velocity object
/// sets.
#[derive(Debug, Clone)]
pub struct LinearIntersectionIndex<S: KeyStore = VecStore> {
    set: PlanarIndexSet<S>,
    b_len: u32,
    a_motions: Vec<LinearMotion>,
    b_motions: Vec<LinearMotion>,
    instants: Vec<f64>,
    horizon: (f64, f64),
}

impl<S: KeyStore> LinearIntersectionIndex<S> {
    /// Build over all `|A|·|B|` pairs, with one index normal per time
    /// instant (paper: t = 10 … 15 min).
    ///
    /// # Errors
    ///
    /// [`MovingError::EmptySet`], [`MovingError::BadTimeInstants`],
    /// [`MovingError::TooManyPairs`], or index-construction errors.
    pub fn build(
        set_a: Vec<LinearMotion>,
        set_b: Vec<LinearMotion>,
        instants: &[f64],
    ) -> Result<Self> {
        check_pair_count(set_a.len(), set_b.len())?;
        let horizon = validate_instants(instants)?;
        let mut table = FeatureTable::with_capacity(3, set_a.len() * set_b.len())?;
        for a in &set_a {
            for b in &set_b {
                table.push_row(&linear_pair_phi(a, b))?;
            }
        }
        let (lo, hi) = horizon;
        let domain = ParameterDomain::new(vec![
            Domain::Discrete(vec![1.0]),
            Domain::Continuous { lo, hi },
            Domain::Continuous {
                lo: lo * lo,
                hi: hi * hi,
            },
        ])?;
        let normals: Vec<Vec<f64>> = instants
            .iter()
            .map(|&t| linear_params(t).to_vec())
            .collect();
        let set =
            PlanarIndexSet::with_normals(table, domain, normals, SelectionStrategy::MinStretch)?;
        Ok(Self {
            set,
            b_len: set_b.len() as u32,
            a_motions: set_a,
            b_motions: set_b,
            instants: instants.to_vec(),
            horizon,
        })
    }

    /// All pairs within distance `s` of each other at future time `t`.
    ///
    /// # Errors
    ///
    /// [`MovingError::TimeOutsideHorizon`] when `t` is far outside the
    /// indexed instants.
    pub fn query(&self, t: f64, s: f64) -> Result<(Vec<Pair>, IntersectionStats)> {
        check_horizon(t, self.horizon)?;
        let q = InequalityQuery::leq(linear_params(t).to_vec(), s * s)?;
        let out = self.set.query(&q)?;
        let mut stats = IntersectionStats::default();
        stats.absorb(&out.stats);
        let pairs = out
            .matches
            .iter()
            .map(|&id| (id / self.b_len, id % self.b_len))
            .collect();
        Ok((pairs, stats))
    }

    /// Update the motion of object `i` of set A (re-keys its `|B|` pairs —
    /// the paper's per-object index update).
    ///
    /// # Errors
    ///
    /// Index errors for unknown ids.
    pub fn update_object_a(&mut self, i: u32, motion: LinearMotion) -> Result<()> {
        self.a_motions[i as usize] = motion;
        for j in 0..self.b_len {
            let phi = linear_pair_phi(&motion, &self.b_motions[j as usize]);
            self.set.update_point(i * self.b_len + j, &phi)?;
        }
        Ok(())
    }

    /// The underlying index set (for memory accounting etc.).
    pub fn index_set(&self) -> &PlanarIndexSet<S> {
        &self.set
    }

    /// Number of pairs indexed.
    pub fn pairs(&self) -> usize {
        self.a_motions.len() * self.b_motions.len()
    }

    /// The currently indexed time instants (oldest first).
    pub fn instants(&self) -> &[f64] {
        &self.instants
    }

    /// MOVIES-style horizon advancement (paper §7.5.1, citing \[9\]): drop
    /// the oldest time-instant index and build one for `new_instant`, in
    /// `O(n log n)` — "for a short period of time, we use an index to
    /// answer the incoming queries; after that, we throw that index away
    /// and use a new index".
    ///
    /// # Errors
    ///
    /// [`MovingError::BadTimeInstants`] unless `new_instant` lies strictly
    /// beyond every indexed instant.
    pub fn advance(&mut self, new_instant: f64) -> Result<()> {
        check_advance(&self.instants, new_instant)?;
        if self.instants.len() > 1 {
            self.set.remove_index(0)?;
            self.instants.remove(0);
        }
        self.set.add_index(linear_params(new_instant).to_vec())?;
        self.instants.push(new_instant);
        self.horizon = recompute_horizon(&self.instants);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Accelerating–linear
// ---------------------------------------------------------------------------

/// Time-sliced Planar index over pairs of an accelerating set and a linear
/// set (the paper's non-uniform workload, Fig. 14c).
#[derive(Debug, Clone)]
pub struct AcceleratingIntersectionIndex<S: KeyStore = VecStore> {
    set: PlanarIndexSet<S>,
    b_len: u32,
    instants: Vec<f64>,
    horizon: (f64, f64),
}

impl<S: KeyStore> AcceleratingIntersectionIndex<S> {
    /// Build over all pairs.
    ///
    /// # Errors
    ///
    /// As [`LinearIntersectionIndex::build`].
    pub fn build(
        set_a: &[AcceleratingMotion],
        set_b: &[LinearMotion],
        instants: &[f64],
    ) -> Result<Self> {
        check_pair_count(set_a.len(), set_b.len())?;
        let horizon = validate_instants(instants)?;
        let mut table = FeatureTable::with_capacity(5, set_a.len() * set_b.len())?;
        for a in set_a {
            for b in set_b {
                table.push_row(&accelerating_pair_phi(a, b))?;
            }
        }
        let (lo, hi) = horizon;
        let powers = |p: u32| Domain::Continuous {
            lo: lo.powi(p as i32),
            hi: hi.powi(p as i32),
        };
        let domain = ParameterDomain::new(vec![
            Domain::Discrete(vec![1.0]),
            powers(1),
            powers(2),
            powers(3),
            powers(4),
        ])?;
        let normals: Vec<Vec<f64>> = instants
            .iter()
            .map(|&t| accelerating_params(t).to_vec())
            .collect();
        let set =
            PlanarIndexSet::with_normals(table, domain, normals, SelectionStrategy::MinStretch)?;
        Ok(Self {
            set,
            b_len: set_b.len() as u32,
            instants: instants.to_vec(),
            horizon,
        })
    }

    /// All pairs within `s` at time `t`.
    ///
    /// # Errors
    ///
    /// [`MovingError::TimeOutsideHorizon`].
    pub fn query(&self, t: f64, s: f64) -> Result<(Vec<Pair>, IntersectionStats)> {
        check_horizon(t, self.horizon)?;
        let q = InequalityQuery::leq(accelerating_params(t).to_vec(), s * s)?;
        let out = self.set.query(&q)?;
        let mut stats = IntersectionStats::default();
        stats.absorb(&out.stats);
        let pairs = out
            .matches
            .iter()
            .map(|&id| (id / self.b_len, id % self.b_len))
            .collect();
        Ok((pairs, stats))
    }

    /// The underlying index set.
    pub fn index_set(&self) -> &PlanarIndexSet<S> {
        &self.set
    }

    /// The currently indexed time instants (oldest first).
    pub fn instants(&self) -> &[f64] {
        &self.instants
    }

    /// MOVIES-style horizon advancement; see
    /// [`LinearIntersectionIndex::advance`].
    ///
    /// # Errors
    ///
    /// [`MovingError::BadTimeInstants`] unless `new_instant` lies strictly
    /// beyond every indexed instant.
    pub fn advance(&mut self, new_instant: f64) -> Result<()> {
        check_advance(&self.instants, new_instant)?;
        if self.instants.len() > 1 {
            self.set.remove_index(0)?;
            self.instants.remove(0);
        }
        self.set
            .add_index(accelerating_params(new_instant).to_vec())?;
        self.instants.push(new_instant);
        self.horizon = recompute_horizon(&self.instants);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Circular–linear
// ---------------------------------------------------------------------------

/// Time-sliced Planar indexes over circular–linear pairs (Example 2,
/// Fig. 14b).
///
/// The parameter vector involves `sin ωt` / `cos ωt` with `ω` the angular
/// velocity of the circular object, so pairs are grouped per circular
/// object: each group shares one parameter vector per query and gets its
/// own small `PlanarIndexSet` (whose normals are that object's exact
/// parameter vectors at the indexed instants).
#[derive(Debug, Clone)]
pub struct CircularIntersectionIndex<S: KeyStore = VecStore> {
    groups: Vec<PlanarIndexSet<S>>,
    omegas: Vec<f64>,
    instants: Vec<f64>,
    horizon: (f64, f64),
}

impl<S: KeyStore> CircularIntersectionIndex<S> {
    /// Build one group per circular object over its pairs with every linear
    /// object.
    ///
    /// # Errors
    ///
    /// As [`LinearIntersectionIndex::build`].
    pub fn build(
        circles: &[CircularMotion],
        lines: &[LinearMotion],
        instants: &[f64],
    ) -> Result<Self> {
        check_pair_count(circles.len(), lines.len())?;
        let horizon = validate_instants(instants)?;
        let (lo, hi) = horizon;
        let domain = ParameterDomain::new(vec![
            Domain::Discrete(vec![1.0]),
            Domain::Continuous { lo, hi },
            Domain::Continuous {
                lo: TRIG_EPS,
                hi: 2.0,
            },
            Domain::Continuous {
                lo: TRIG_EPS,
                hi: 2.0,
            },
            Domain::Continuous {
                lo: TRIG_EPS,
                hi: 2.0 * hi,
            },
            Domain::Continuous {
                lo: TRIG_EPS,
                hi: 2.0 * hi,
            },
            Domain::Continuous {
                lo: lo * lo,
                hi: hi * hi,
            },
        ])?;
        let mut groups = Vec::with_capacity(circles.len());
        for c in circles {
            let mut table = FeatureTable::with_capacity(7, lines.len())?;
            for l in lines {
                table.push_row(&circular_pair_phi(c, l))?;
            }
            let normals: Vec<Vec<f64>> = instants
                .iter()
                .map(|&t| {
                    circular_params(t, c.omega)
                        .iter()
                        .map(|&v| v.max(TRIG_EPS)) // keep normals strictly positive
                        .collect()
                })
                .collect();
            groups.push(PlanarIndexSet::with_normals(
                table,
                domain.clone(),
                normals,
                SelectionStrategy::MinStretch,
            )?);
        }
        Ok(Self {
            groups,
            omegas: circles.iter().map(|c| c.omega).collect(),
            instants: instants.to_vec(),
            horizon,
        })
    }

    /// All pairs within `s` at time `t`: one Planar query per circular
    /// object (its group of pairs shares the parameter vector).
    ///
    /// # Errors
    ///
    /// [`MovingError::TimeOutsideHorizon`].
    pub fn query(&self, t: f64, s: f64) -> Result<(Vec<Pair>, IntersectionStats)> {
        check_horizon(t, self.horizon)?;
        let mut pairs = Vec::new();
        let mut stats = IntersectionStats::default();
        for (i, (group, &omega)) in self.groups.iter().zip(&self.omegas).enumerate() {
            let q = InequalityQuery::leq(circular_params(t, omega).to_vec(), s * s)?;
            let out = group.query(&q)?;
            stats.absorb(&out.stats);
            pairs.extend(out.matches.iter().map(|&j| (i as u32, j)));
        }
        Ok((pairs, stats))
    }

    /// Total heap bytes across all groups.
    pub fn memory_usage(&self) -> usize {
        self.groups.iter().map(|g| g.memory_usage()).sum()
    }

    /// The currently indexed time instants (oldest first).
    pub fn instants(&self) -> &[f64] {
        &self.instants
    }

    /// MOVIES-style horizon advancement; see
    /// [`LinearIntersectionIndex::advance`]. Each per-object group gets a
    /// fresh normal from its own angular velocity.
    ///
    /// # Errors
    ///
    /// [`MovingError::BadTimeInstants`] unless `new_instant` lies strictly
    /// beyond every indexed instant.
    pub fn advance(&mut self, new_instant: f64) -> Result<()> {
        check_advance(&self.instants, new_instant)?;
        let drop_oldest = self.instants.len() > 1;
        for (group, &omega) in self.groups.iter_mut().zip(&self.omegas) {
            if drop_oldest {
                group.remove_index(0)?;
            }
            let normal: Vec<f64> = circular_params(new_instant, omega)
                .iter()
                .map(|&v| v.max(TRIG_EPS))
                .collect();
            group.add_index(normal)?;
        }
        if drop_oldest {
            self.instants.remove(0);
        }
        self.instants.push(new_instant);
        self.horizon = recompute_horizon(&self.instants);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::kinematics::dist_sq;
    use crate::workload;
    use planar_geom::approx_eq_eps;

    const INSTANTS: [f64; 6] = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];

    #[test]
    fn linear_phi_reduction_equals_kinematics() {
        let a = LinearMotion::planar(3.0, -2.0, 0.4, 0.9);
        let b = LinearMotion::planar(-1.0, 5.0, -0.3, 0.2);
        for t in [0.0, 1.5, 10.0, 14.7] {
            let direct = dist_sq(&a.position(t), &b.position(t));
            let phi = linear_pair_phi(&a, &b);
            let via: f64 = linear_params(t).iter().zip(&phi).map(|(p, x)| p * x).sum();
            assert!(approx_eq_eps(direct, via, 1e-9), "t={t}: {direct} vs {via}");
        }
    }

    #[test]
    fn accelerating_phi_reduction_equals_kinematics() {
        let a = AcceleratingMotion {
            p: [10.0, -5.0, 3.0],
            u: [0.5, 0.8, -0.2],
            a: [0.03, -0.05, 0.01],
        };
        let b = LinearMotion {
            p: [-20.0, 8.0, 1.0],
            u: [-0.4, 0.1, 0.6],
        };
        for t in [0.0, 2.0, 10.0, 15.0] {
            let direct = dist_sq(&a.position(t), &b.position(t));
            let phi = accelerating_pair_phi(&a, &b);
            let via: f64 = accelerating_params(t)
                .iter()
                .zip(&phi)
                .map(|(p, x)| p * x)
                .sum();
            assert!(approx_eq_eps(direct, via, 1e-9), "t={t}: {direct} vs {via}");
        }
    }

    #[test]
    fn circular_phi_reduction_equals_kinematics() {
        let c = CircularMotion {
            r: 12.0,
            omega: 0.05,
        };
        let l = LinearMotion::planar(4.0, -7.0, 0.6, -0.9);
        for t in [0.0, 1.0, 10.0, 13.2, 15.0] {
            let direct = dist_sq(&c.position(t), &l.position(t));
            let phi = circular_pair_phi(&c, &l);
            let via: f64 = circular_params(t, c.omega)
                .iter()
                .zip(&phi)
                .map(|(p, x)| p * x)
                .sum();
            assert!(approx_eq_eps(direct, via, 1e-9), "t={t}: {direct} vs {via}");
        }
    }

    fn sorted(mut v: Vec<Pair>) -> Vec<Pair> {
        v.sort_unstable();
        v
    }

    #[test]
    fn linear_index_matches_baseline() {
        let a = workload::linear_objects(40, 200.0, 7);
        let b = workload::linear_objects(35, 200.0, 8);
        let idx: LinearIntersectionIndex =
            LinearIntersectionIndex::build(a.clone(), b.clone(), &INSTANTS).unwrap();
        for t in [10.0, 11.5, 13.0, 15.0] {
            let (got, stats) = idx.query(t, 10.0).unwrap();
            let want = baseline::linear_pairs_within(&a, &b, t, 10.0);
            assert_eq!(sorted(got), sorted(want), "t={t}");
            assert_eq!(stats.pairs, 40 * 35);
        }
    }

    #[test]
    fn linear_index_prunes_fully_at_indexed_instant() {
        let a = workload::linear_objects(50, 500.0, 1);
        let b = workload::linear_objects(50, 500.0, 2);
        let idx: LinearIntersectionIndex = LinearIntersectionIndex::build(a, b, &INSTANTS).unwrap();
        let (_, stats) = idx.query(12.0, 10.0).unwrap();
        // Query at an indexed instant → some index is parallel → only
        // boundary keys (measure zero) are verified.
        assert!(
            stats.pruning_percentage() > 99.0,
            "pruning {}",
            stats.pruning_percentage()
        );
    }

    #[test]
    fn accelerating_index_matches_baseline() {
        let a = workload::accelerating_objects(20, 500.0, 3);
        let b = workload::linear_objects_3d(25, 500.0, 4);
        let idx: AcceleratingIntersectionIndex =
            AcceleratingIntersectionIndex::build(&a, &b, &INSTANTS).unwrap();
        for t in [10.0, 12.3, 15.0] {
            let (got, _) = idx.query(t, 10.0).unwrap();
            let want = baseline::accelerating_pairs_within(&a, &b, t, 10.0);
            assert_eq!(sorted(got), sorted(want), "t={t}");
        }
    }

    #[test]
    fn circular_index_matches_baseline() {
        let c = workload::circular_objects(15, 7);
        let l = workload::linear_objects(30, 100.0, 9);
        let idx: CircularIntersectionIndex =
            CircularIntersectionIndex::build(&c, &l, &INSTANTS).unwrap();
        for t in [10.0, 11.7, 14.0] {
            let (got, _) = idx.query(t, 10.0).unwrap();
            let want = baseline::circular_pairs_within(&c, &l, t, 10.0);
            assert_eq!(sorted(got), sorted(want), "t={t}");
        }
    }

    #[test]
    fn update_object_rekeys_pairs() {
        let a = workload::linear_objects(10, 100.0, 1);
        let b = workload::linear_objects(10, 100.0, 2);
        let mut idx: LinearIntersectionIndex<planar_core::BPlusTree> =
            LinearIntersectionIndex::build(a.clone(), b.clone(), &INSTANTS).unwrap();
        // Object 3 changes course.
        let new_motion = LinearMotion::planar(0.0, 0.0, 0.9, 0.9);
        idx.update_object_a(3, new_motion).unwrap();
        let mut a2 = a;
        a2[3] = new_motion;
        let (got, _) = idx.query(12.0, 15.0).unwrap();
        let want = baseline::linear_pairs_within(&a2, &b, 12.0, 15.0);
        assert_eq!(sorted(got), sorted(want));
    }

    #[test]
    fn horizon_is_enforced() {
        let a = workload::linear_objects(5, 100.0, 1);
        let b = workload::linear_objects(5, 100.0, 2);
        let idx: LinearIntersectionIndex = LinearIntersectionIndex::build(a, b, &INSTANTS).unwrap();
        assert!(idx.query(12.0, 5.0).is_ok());
        assert!(idx.query(16.0, 5.0).is_ok()); // small slack allowed
        assert!(matches!(
            idx.query(100.0, 5.0),
            Err(MovingError::TimeOutsideHorizon { .. })
        ));
    }

    #[test]
    fn build_validates_inputs() {
        let a = workload::linear_objects(5, 100.0, 1);
        assert!(matches!(
            LinearIntersectionIndex::<VecStore>::build(a.clone(), vec![], &INSTANTS),
            Err(MovingError::EmptySet)
        ));
        assert!(matches!(
            LinearIntersectionIndex::<VecStore>::build(a.clone(), a.clone(), &[]),
            Err(MovingError::BadTimeInstants)
        ));
        assert!(matches!(
            LinearIntersectionIndex::<VecStore>::build(a.clone(), a, &[-1.0]),
            Err(MovingError::BadTimeInstants)
        ));
    }
}

#[cfg(test)]
mod rolling_tests {
    use super::*;
    use crate::baseline;
    use crate::workload;

    fn sorted(mut v: Vec<Pair>) -> Vec<Pair> {
        v.sort_unstable();
        v
    }

    #[test]
    fn linear_advance_moves_the_horizon() {
        let a = workload::linear_objects(30, 200.0, 11);
        let b = workload::linear_objects(30, 200.0, 12);
        let mut idx: LinearIntersectionIndex =
            LinearIntersectionIndex::build(a.clone(), b.clone(), &[10.0, 11.0, 12.0]).unwrap();
        assert!(
            idx.query(20.0, 10.0).is_err(),
            "t=20 outside initial horizon"
        );

        for t in [13.0, 14.0, 15.0, 16.0, 17.0, 18.0] {
            idx.advance(t).unwrap();
        }
        assert_eq!(idx.instants(), &[16.0, 17.0, 18.0]);

        // Far-future query now answerable and exact — with full pruning at
        // an indexed instant.
        let (got, stats) = idx.query(17.0, 10.0).unwrap();
        assert_eq!(
            sorted(got),
            sorted(baseline::linear_pairs_within(&a, &b, 17.0, 10.0))
        );
        assert!(stats.pruning_percentage() > 99.0);
        // The old horizon has been dropped.
        assert!(idx.query(10.0, 10.0).is_err());
    }

    #[test]
    fn advance_rejects_non_monotone_times() {
        let a = workload::linear_objects(5, 100.0, 1);
        let b = workload::linear_objects(5, 100.0, 2);
        let mut idx: LinearIntersectionIndex =
            LinearIntersectionIndex::build(a, b, &[10.0, 11.0]).unwrap();
        assert!(matches!(
            idx.advance(11.0),
            Err(MovingError::BadTimeInstants)
        ));
        assert!(matches!(
            idx.advance(f64::NAN),
            Err(MovingError::BadTimeInstants)
        ));
        assert!(idx.advance(12.0).is_ok());
    }

    #[test]
    fn circular_advance_stays_exact() {
        let circles = workload::circular_objects(10, 13);
        let lines = workload::linear_objects(20, 100.0, 14);
        let mut idx: CircularIntersectionIndex =
            CircularIntersectionIndex::build(&circles, &lines, &[10.0, 11.0]).unwrap();
        idx.advance(12.0).unwrap();
        idx.advance(13.0).unwrap();
        let (got, _) = idx.query(13.0, 10.0).unwrap();
        assert_eq!(
            sorted(got),
            sorted(baseline::circular_pairs_within(
                &circles, &lines, 13.0, 10.0
            ))
        );
    }

    #[test]
    fn accelerating_advance_stays_exact() {
        let accel = workload::accelerating_objects(10, 300.0, 15);
        let lines = workload::linear_objects_3d(15, 300.0, 16);
        let mut idx: AcceleratingIntersectionIndex =
            AcceleratingIntersectionIndex::build(&accel, &lines, &[10.0, 11.0]).unwrap();
        idx.advance(12.5).unwrap();
        assert_eq!(idx.instants(), &[11.0, 12.5]);
        let (got, _) = idx.query(12.5, 10.0).unwrap();
        assert_eq!(
            sorted(got),
            sorted(baseline::accelerating_pairs_within(
                &accel, &lines, 12.5, 10.0
            ))
        );
    }
}
