//! An STR-bulk-loaded R-tree over 2D points, plus the MBR-based
//! intersection join of Fig. 14a.
//!
//! This is the *linear-motion specialist* the paper compares against
//! (standing in for the highly optimized intersection-join code of Zhang et
//! al. \[33\], which the authors obtained privately). For constant-velocity
//! objects and a single future instant `t`, positions at `t` are computed
//! exactly, set B is packed into an R-tree with Sort-Tile-Recursive
//! loading, and each A object probes a square window of half-width `S`
//! followed by an exact distance check. This is the textbook fast path —
//! and it is *only* applicable to motions whose future positions are affine
//! in `t`; the Planar index's generality over circular/accelerating motion
//! is exactly what Fig. 14b/c demonstrates.

use crate::kinematics::LinearMotion;
use crate::Pair;

/// Node capacity (entries per leaf, children per inner node).
const NODE_CAP: usize = 16;

/// An axis-aligned 2D rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: [f64; 2],
    /// Upper-right corner.
    pub hi: [f64; 2],
}

impl Rect {
    /// The empty rectangle (inverted bounds; absorbs on expand).
    pub fn empty() -> Self {
        Self {
            lo: [f64::INFINITY; 2],
            hi: [f64::NEG_INFINITY; 2],
        }
    }

    /// A point rectangle.
    pub fn point(p: [f64; 2]) -> Self {
        Self { lo: p, hi: p }
    }

    /// A square window of half-width `r` around `center`.
    pub fn window(center: [f64; 2], r: f64) -> Self {
        Self {
            lo: [center[0] - r, center[1] - r],
            hi: [center[0] + r, center[1] + r],
        }
    }

    /// Expand to cover `other`.
    pub fn expand(&mut self, other: &Rect) {
        for d in 0..2 {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Do two rectangles overlap (closed bounds)?
    pub fn intersects(&self, other: &Rect) -> bool {
        (0..2).all(|d| self.lo[d] <= other.hi[d] && self.hi[d] >= other.lo[d])
    }

    /// Does the rectangle contain a point?
    pub fn contains_point(&self, p: [f64; 2]) -> bool {
        (0..2).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        rect: Rect,
        entries: Vec<([f64; 2], u32)>,
    },
    Inner {
        rect: Rect,
        children: Vec<Node>,
    },
}

impl Node {
    fn rect(&self) -> &Rect {
        match self {
            Node::Leaf { rect, .. } | Node::Inner { rect, .. } => rect,
        }
    }
}

/// A static R-tree over 2D points, bulk-loaded with Sort-Tile-Recursive
/// packing.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
}

impl RTree {
    /// Bulk-load from `(position, id)` points.
    pub fn build(mut points: Vec<([f64; 2], u32)>) -> Self {
        let len = points.len();
        if points.is_empty() {
            return Self { root: None, len };
        }
        // STR leaf packing: sort by x, tile into vertical slabs, sort each
        // slab by y, chunk into leaves.
        let leaf_count = len.div_ceil(NODE_CAP);
        let slabs = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slab = len.div_ceil(slabs);
        points.sort_by(|a, b| a.0[0].total_cmp(&b.0[0]));
        let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
        for slab in points.chunks_mut(per_slab) {
            slab.sort_by(|a, b| a.0[1].total_cmp(&b.0[1]));
            for chunk in slab.chunks(NODE_CAP) {
                let mut rect = Rect::empty();
                for (p, _) in chunk {
                    rect.expand(&Rect::point(*p));
                }
                leaves.push(Node::Leaf {
                    rect,
                    entries: chunk.to_vec(),
                });
            }
        }
        // Pack upper levels the same way on rect centers.
        let mut level = leaves;
        while level.len() > 1 {
            let node_count = level.len().div_ceil(NODE_CAP);
            let slabs = (node_count as f64).sqrt().ceil() as usize;
            let per_slab = level.len().div_ceil(slabs);
            level.sort_by(|a, b| {
                let ca = a.rect().lo[0] + a.rect().hi[0];
                let cb = b.rect().lo[0] + b.rect().hi[0];
                ca.total_cmp(&cb)
            });
            let mut next: Vec<Node> = Vec::with_capacity(node_count);
            let mut level_iter = level.into_iter().peekable();
            while level_iter.peek().is_some() {
                let mut slab: Vec<Node> = level_iter.by_ref().take(per_slab).collect();
                slab.sort_by(|a, b| {
                    let ca = a.rect().lo[1] + a.rect().hi[1];
                    let cb = b.rect().lo[1] + b.rect().hi[1];
                    ca.total_cmp(&cb)
                });
                let mut slab_iter = slab.into_iter().peekable();
                while slab_iter.peek().is_some() {
                    let children: Vec<Node> = slab_iter.by_ref().take(NODE_CAP).collect();
                    let mut rect = Rect::empty();
                    for c in &children {
                        rect.expand(c.rect());
                    }
                    next.push(Node::Inner { rect, children });
                }
            }
            level = next;
        }
        Self {
            root: level.pop(),
            len,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Visit every point inside `window`.
    pub fn search(&self, window: &Rect, visit: &mut impl FnMut([f64; 2], u32)) {
        if let Some(root) = &self.root {
            Self::search_node(root, window, visit);
        }
    }

    /// Collect the ids of all points inside `window`.
    pub fn query_window(&self, window: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.search(window, &mut |_, id| out.push(id));
        out
    }

    fn search_node(node: &Node, window: &Rect, visit: &mut impl FnMut([f64; 2], u32)) {
        match node {
            Node::Leaf { rect, entries } => {
                if rect.intersects(window) {
                    for (p, id) in entries {
                        if window.contains_point(*p) {
                            visit(*p, *id);
                        }
                    }
                }
            }
            Node::Inner { rect, children } => {
                if rect.intersects(window) {
                    for c in children {
                        Self::search_node(c, window, visit);
                    }
                }
            }
        }
    }
}

/// The MBR-tree intersection method of Fig. 14a: exact positions at `t`,
/// R-tree over set B, window probe + exact distance check per A object.
pub fn mbr_intersection(
    set_a: &[LinearMotion],
    set_b: &[LinearMotion],
    t: f64,
    s: f64,
) -> Vec<Pair> {
    let positions_b: Vec<([f64; 2], u32)> = set_b
        .iter()
        .enumerate()
        .map(|(j, m)| {
            let p = m.position(t);
            ([p[0], p[1]], j as u32)
        })
        .collect();
    let tree = RTree::build(positions_b);
    let s2 = s * s;
    let mut out = Vec::new();
    for (i, m) in set_a.iter().enumerate() {
        let p = m.position(t);
        let center = [p[0], p[1]];
        tree.search(&Rect::window(center, s), &mut |q, j| {
            let (dx, dy) = (center[0] - q[0], center[1] - q[1]);
            if dx * dx + dy * dy <= s2 {
                out.push((i as u32, j));
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baseline, workload};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rect_operations() {
        let mut r = Rect::empty();
        r.expand(&Rect::point([1.0, 2.0]));
        r.expand(&Rect::point([-1.0, 5.0]));
        assert_eq!(r.lo, [-1.0, 2.0]);
        assert_eq!(r.hi, [1.0, 5.0]);
        assert!(r.intersects(&Rect::window([0.0, 3.0], 0.5)));
        assert!(!r.intersects(&Rect::window([10.0, 10.0], 0.5)));
        assert!(r.contains_point([0.0, 3.0]));
        assert!(!r.contains_point([0.0, 1.0]));
    }

    #[test]
    fn empty_tree() {
        let t = RTree::build(vec![]);
        assert!(t.is_empty());
        assert!(t.query_window(&Rect::window([0.0, 0.0], 1e9)).is_empty());
    }

    #[test]
    fn window_queries_match_linear_scan() {
        let mut rng = StdRng::seed_from_u64(11);
        let points: Vec<([f64; 2], u32)> = (0..3000)
            .map(|i| {
                (
                    [
                        rng.random_range(-100.0..100.0),
                        rng.random_range(-100.0..100.0),
                    ],
                    i,
                )
            })
            .collect();
        let tree = RTree::build(points.clone());
        assert_eq!(tree.len(), 3000);
        for _ in 0..25 {
            let center = [
                rng.random_range(-100.0..100.0),
                rng.random_range(-100.0..100.0),
            ];
            let w = Rect::window(center, rng.random_range(1.0..40.0));
            let mut got = tree.query_window(&w);
            got.sort_unstable();
            let mut want: Vec<u32> = points
                .iter()
                .filter(|(p, _)| w.contains_point(*p))
                .map(|(_, id)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn mbr_intersection_matches_baseline() {
        let a = workload::linear_objects(60, 300.0, 21);
        let b = workload::linear_objects(50, 300.0, 22);
        for t in [10.0, 12.5, 15.0] {
            let mut got = mbr_intersection(&a, &b, t, 12.0);
            got.sort_unstable();
            let mut want = baseline::linear_pairs_within(&a, &b, t, 12.0);
            want.sort_unstable();
            assert_eq!(got, want, "t={t}");
        }
    }

    #[test]
    fn boundary_points_are_included() {
        // Distance exactly s.
        let a = vec![LinearMotion::planar(0.0, 0.0, 0.0, 0.0)];
        let b = vec![LinearMotion::planar(5.0, 0.0, 0.0, 0.0)];
        // Use tiny-but-nonzero velocities? Not needed: static objects work.
        let got = mbr_intersection(&a, &b, 10.0, 5.0);
        assert_eq!(got, vec![(0, 0)]);
    }
}
