//! # planar-moving
//!
//! The moving-objects-intersection application of the Planar index (paper
//! Example 2 and §7.5.1).
//!
//! Given two sets of moving objects and a *future* time instant `t` plus a
//! distance `S` — both known only at query time — find all cross-set pairs
//! that will be within `S` of each other at time `t`. For the motion models
//! the paper evaluates, the squared pair distance is a polynomial whose
//! monomials factor into a **data part** (object kinematics, known when the
//! index is built) and a **parameter part** (powers and trigonometric
//! functions of `t`), i.e. exactly a scalar product query:
//!
//! * [`kinematics::LinearMotion`] vs linear — `⟨(1, t, t²), φ(pair)⟩ ≤ S²`
//!   with `φ = (|Δp|², 2Δp·Δu, |Δu|²)`;
//! * linear vs [`kinematics::AcceleratingMotion`] —
//!   `⟨(1, t, t², t³, t⁴), φ(pair)⟩ ≤ S²` (5 monomials);
//! * [`kinematics::CircularMotion`] vs linear — the paper's Example 2: a
//!   7-monomial form whose parameters also involve `sin ωt`/`cos ωt`, so
//!   the parameter vector is per-circular-object (each object has its own
//!   angular velocity ω).
//!
//! Indexes follow the paper's MOVIES-style recipe: one Planar index per
//! anticipated future time instant (t = 10, 11, …, 15 min), with the best
//! one selected per query — exactly parallel when the queried `t` is an
//! indexed instant, nearly parallel otherwise.
//!
//! The crate also contains the two comparison methods of Fig. 14a:
//! the all-pairs [`baseline`] scan and an STR-packed [`rtree`] over
//! positions at the query time (the tuned linear-motion specialist standing
//! in for the intersection-join code of Zhang et al. \[33\]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod baseline;
pub mod intersection;
pub mod kinematics;
pub mod rtree;
pub mod workload;

pub use intersection::{
    AcceleratingIntersectionIndex, CircularIntersectionIndex, LinearIntersectionIndex,
};
pub use kinematics::{AcceleratingMotion, CircularMotion, LinearMotion};
pub use rtree::RTree;

/// A cross-set pair `(index in set A, index in set B)`.
pub type Pair = (u32, u32);

/// Errors of the moving-objects layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MovingError {
    /// Object sets must be non-empty.
    EmptySet,
    /// Time instants for indexing must be non-empty and positive.
    BadTimeInstants,
    /// The queried time lies outside the indexed horizon — callers should
    /// rebuild/advance the time-sliced indices first (MOVIES-style).
    TimeOutsideHorizon {
        /// Queried time.
        t: f64,
        /// Indexed horizon.
        horizon: (f64, f64),
    },
    /// Too many pairs to address with 32-bit pair ids.
    TooManyPairs,
    /// An underlying index error.
    Index(planar_core::PlanarError),
}

impl core::fmt::Display for MovingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MovingError::EmptySet => write!(f, "object sets must be non-empty"),
            MovingError::BadTimeInstants => {
                write!(f, "need at least one positive indexing time instant")
            }
            MovingError::TimeOutsideHorizon { t, horizon } => write!(
                f,
                "query time {t} outside indexed horizon [{}, {}]",
                horizon.0, horizon.1
            ),
            MovingError::TooManyPairs => write!(f, "pair count exceeds u32 id space"),
            MovingError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for MovingError {}

impl From<planar_core::PlanarError> for MovingError {
    fn from(e: planar_core::PlanarError) -> Self {
        MovingError::Index(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, MovingError>;
