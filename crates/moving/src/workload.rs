//! Workload generators matching the paper's simulation setups (§7.5.1).
//!
//! * Linear objects: positions uniform in a square (or cube) of the given
//!   extent centered at the origin; per-axis speed uniform in 0.1–1
//!   mile/min with random sign.
//! * Circular objects: origin-centered concentric circles, radius uniform
//!   in 1–100 miles, angular velocity uniform in 1–5 degrees/min.
//! * Accelerating objects: 3D, initial speed 0.1–1 mile/min and
//!   acceleration 0.01–0.05 mile/min² per axis, random signs.

use crate::kinematics::{AcceleratingMotion, CircularMotion, LinearMotion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn signed_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    let magnitude = rng.random_range(lo..=hi);
    if rng.random_bool(0.5) {
        magnitude
    } else {
        -magnitude
    }
}

/// `n` planar constant-velocity objects in an `extent × extent` square
/// centered at the origin (paper: 1000×1000 mile², speed 0.1–1 mile/min).
pub fn linear_objects(n: usize, extent: f64, seed: u64) -> Vec<LinearMotion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0011_AEA2);
    let half = extent / 2.0;
    (0..n)
        .map(|_| {
            LinearMotion::planar(
                rng.random_range(-half..=half),
                rng.random_range(-half..=half),
                signed_uniform(&mut rng, 0.1, 1.0),
                signed_uniform(&mut rng, 0.1, 1.0),
            )
        })
        .collect()
}

/// `n` 3D constant-velocity objects in an `extent³` cube centered at the
/// origin (the second set of the accelerating workload, Fig. 14c).
pub fn linear_objects_3d(n: usize, extent: f64, seed: u64) -> Vec<LinearMotion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0011_AEA3);
    let half = extent / 2.0;
    (0..n)
        .map(|_| LinearMotion {
            p: [
                rng.random_range(-half..=half),
                rng.random_range(-half..=half),
                rng.random_range(-half..=half),
            ],
            u: [
                signed_uniform(&mut rng, 0.1, 1.0),
                signed_uniform(&mut rng, 0.1, 1.0),
                signed_uniform(&mut rng, 0.1, 1.0),
            ],
        })
        .collect()
}

/// `n` origin-centered circular objects: radius uniform in 1–100 miles,
/// angular velocity uniform in 1–5 degrees/min (Fig. 14b).
pub fn circular_objects(n: usize, seed: u64) -> Vec<CircularMotion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00C1_AC1E);
    (0..n)
        .map(|_| CircularMotion {
            r: rng.random_range(1.0..=100.0),
            omega: rng.random_range(1.0..=5.0_f64).to_radians(),
        })
        .collect()
}

/// `n` 3D accelerating objects in an `extent³` cube: initial speed 0.1–1
/// mile/min, acceleration 0.01–0.05 mile/min² per axis (Fig. 14c).
pub fn accelerating_objects(n: usize, extent: f64, seed: u64) -> Vec<AcceleratingMotion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x000A_CCE1);
    let half = extent / 2.0;
    (0..n)
        .map(|_| AcceleratingMotion {
            p: [
                rng.random_range(-half..=half),
                rng.random_range(-half..=half),
                rng.random_range(-half..=half),
            ],
            u: [
                signed_uniform(&mut rng, 0.1, 1.0),
                signed_uniform(&mut rng, 0.1, 1.0),
                signed_uniform(&mut rng, 0.1, 1.0),
            ],
            a: [
                signed_uniform(&mut rng, 0.01, 0.05),
                signed_uniform(&mut rng, 0.01, 0.05),
                signed_uniform(&mut rng, 0.01, 0.05),
            ],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_objects_respect_parameters() {
        let objs = linear_objects(500, 1000.0, 1);
        assert_eq!(objs.len(), 500);
        for o in &objs {
            assert!(o.p[0].abs() <= 500.0 && o.p[1].abs() <= 500.0);
            assert_eq!(o.p[2], 0.0);
            for axis in 0..2 {
                let speed = o.u[axis].abs();
                assert!((0.1..=1.0).contains(&speed), "speed {speed}");
            }
            assert_eq!(o.u[2], 0.0);
        }
        // Signs must vary.
        assert!(objs.iter().any(|o| o.u[0] > 0.0) && objs.iter().any(|o| o.u[0] < 0.0));
    }

    #[test]
    fn circular_objects_respect_parameters() {
        let objs = circular_objects(300, 2);
        for o in &objs {
            assert!((1.0..=100.0).contains(&o.r));
            let deg = o.omega.to_degrees();
            assert!((1.0..=5.0).contains(&deg), "omega {deg} deg/min");
        }
    }

    #[test]
    fn accelerating_objects_respect_parameters() {
        let objs = accelerating_objects(300, 1000.0, 3);
        for o in &objs {
            for axis in 0..3 {
                assert!(o.p[axis].abs() <= 500.0);
                assert!((0.1..=1.0).contains(&o.u[axis].abs()));
                assert!((0.01..=0.05).contains(&o.a[axis].abs()));
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(linear_objects(10, 100.0, 5), linear_objects(10, 100.0, 5));
        assert_ne!(linear_objects(10, 100.0, 5), linear_objects(10, 100.0, 6));
    }
}
