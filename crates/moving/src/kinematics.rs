//! Motion models and their exact kinematics.
//!
//! All positions are 3-vectors; planar (2D) scenarios use `z = 0`. The
//! models match the paper's workloads (§7.5.1): constant-velocity lines,
//! origin-centered concentric circles, and constant acceleration.

/// A 3-vector.
pub type Vec3 = [f64; 3];

/// Dot product of two 3-vectors.
#[inline]
pub fn dot3(a: &Vec3, b: &Vec3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Component-wise difference.
#[inline]
pub fn sub3(a: &Vec3, b: &Vec3) -> Vec3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

/// Squared Euclidean distance between two positions.
#[inline]
pub fn dist_sq(a: &Vec3, b: &Vec3) -> f64 {
    let d = sub3(a, b);
    dot3(&d, &d)
}

/// Constant-velocity motion: `pos(t) = p + u·t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearMotion {
    /// Initial position.
    pub p: Vec3,
    /// Velocity.
    pub u: Vec3,
}

impl LinearMotion {
    /// Planar (z = 0) constructor.
    pub fn planar(px: f64, py: f64, ux: f64, uy: f64) -> Self {
        Self {
            p: [px, py, 0.0],
            u: [ux, uy, 0.0],
        }
    }

    /// Position at time `t`.
    pub fn position(&self, t: f64) -> Vec3 {
        [
            self.p[0] + self.u[0] * t,
            self.p[1] + self.u[1] * t,
            self.p[2] + self.u[2] * t,
        ]
    }
}

/// Constant-acceleration motion: `pos(t) = p + u·t + ½·a·t²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratingMotion {
    /// Initial position.
    pub p: Vec3,
    /// Initial velocity.
    pub u: Vec3,
    /// Acceleration.
    pub a: Vec3,
}

impl AcceleratingMotion {
    /// Position at time `t`.
    pub fn position(&self, t: f64) -> Vec3 {
        let h = 0.5 * t * t;
        [
            self.p[0] + self.u[0] * t + self.a[0] * h,
            self.p[1] + self.u[1] * t + self.a[1] * h,
            self.p[2] + self.u[2] * t + self.a[2] * h,
        ]
    }
}

/// Origin-centered circular motion (the paper's "concentric circles",
/// Example 2): `pos(t) = (r·sin ωt, r·cos ωt, 0)` with `ω` in radians per
/// minute.
///
/// The sine-first convention matches the paper's Example 2 monomials
/// exactly (their `C = 1 + sin ωt` multiplies the x-cross-terms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircularMotion {
    /// Radius of the circle.
    pub r: f64,
    /// Angular velocity, radians per time unit.
    pub omega: f64,
}

impl CircularMotion {
    /// Position at time `t`.
    pub fn position(&self, t: f64) -> Vec3 {
        let angle = self.omega * t;
        [self.r * angle.sin(), self.r * angle.cos(), 0.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_position() {
        let m = LinearMotion::planar(1.0, 2.0, 0.5, -0.25);
        assert_eq!(m.position(0.0), [1.0, 2.0, 0.0]);
        assert_eq!(m.position(4.0), [3.0, 1.0, 0.0]);
    }

    #[test]
    fn accelerating_position() {
        let m = AcceleratingMotion {
            p: [0.0, 0.0, 1.0],
            u: [1.0, 0.0, 0.0],
            a: [0.0, 2.0, 0.0],
        };
        assert_eq!(m.position(0.0), [0.0, 0.0, 1.0]);
        // x = t, y = t², z = 1
        assert_eq!(m.position(3.0), [3.0, 9.0, 1.0]);
    }

    #[test]
    fn circular_position_stays_on_circle() {
        let m = CircularMotion { r: 5.0, omega: 0.3 };
        for t in [0.0, 1.0, 7.3, 100.0] {
            let p = m.position(t);
            let norm = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((norm - 5.0).abs() < 1e-9, "t={t}: radius {norm}");
            assert_eq!(p[2], 0.0);
        }
        // At t = 0 the object sits at angle 0: (0, r).
        assert_eq!(m.position(0.0), [0.0, 5.0, 0.0]);
    }

    #[test]
    fn distance_helpers() {
        assert_eq!(dist_sq(&[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]), 25.0);
        assert_eq!(dot3(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(sub3(&[1.0, 1.0, 1.0], &[0.5, 2.0, 1.0]), [0.5, -1.0, 0.0]);
    }
}
