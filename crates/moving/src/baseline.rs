//! The naïve all-pairs baseline the paper compares against (§7.5.1: "a
//! baseline method which verifies all 5K×5K object pairs").

use crate::kinematics::{dist_sq, AcceleratingMotion, CircularMotion, LinearMotion};
use crate::Pair;

/// All linear–linear pairs within `s` at time `t`, by exhaustive check.
pub fn linear_pairs_within(
    set_a: &[LinearMotion],
    set_b: &[LinearMotion],
    t: f64,
    s: f64,
) -> Vec<Pair> {
    let positions_a: Vec<_> = set_a.iter().map(|m| m.position(t)).collect();
    let positions_b: Vec<_> = set_b.iter().map(|m| m.position(t)).collect();
    pairs_within(&positions_a, &positions_b, s)
}

/// All accelerating–linear pairs within `s` at time `t`.
pub fn accelerating_pairs_within(
    set_a: &[AcceleratingMotion],
    set_b: &[LinearMotion],
    t: f64,
    s: f64,
) -> Vec<Pair> {
    let positions_a: Vec<_> = set_a.iter().map(|m| m.position(t)).collect();
    let positions_b: Vec<_> = set_b.iter().map(|m| m.position(t)).collect();
    pairs_within(&positions_a, &positions_b, s)
}

/// All circular–linear pairs within `s` at time `t`.
pub fn circular_pairs_within(
    set_a: &[CircularMotion],
    set_b: &[LinearMotion],
    t: f64,
    s: f64,
) -> Vec<Pair> {
    let positions_a: Vec<_> = set_a.iter().map(|m| m.position(t)).collect();
    let positions_b: Vec<_> = set_b.iter().map(|m| m.position(t)).collect();
    pairs_within(&positions_a, &positions_b, s)
}

/// Exhaustive distance check over two position sets.
pub fn pairs_within(a: &[[f64; 3]], b: &[[f64; 3]], s: f64) -> Vec<Pair> {
    let s2 = s * s;
    let mut out = Vec::new();
    for (i, pa) in a.iter().enumerate() {
        for (j, pb) in b.iter().enumerate() {
            if dist_sq(pa, pb) <= s2 {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_within_basic() {
        let a = [[0.0, 0.0, 0.0], [100.0, 0.0, 0.0]];
        let b = [[3.0, 4.0, 0.0], [100.0, 5.0, 0.0]];
        let got = pairs_within(&a, &b, 5.0);
        assert_eq!(got, vec![(0, 0), (1, 1)]);
        // boundary: distance exactly 5 counts (≤).
        assert!(pairs_within(&[[0.0; 3]], &[[5.0, 0.0, 0.0]], 5.0).len() == 1);
        assert!(pairs_within(&[[0.0; 3]], &[[5.001, 0.0, 0.0]], 5.0).is_empty());
    }

    #[test]
    fn linear_baseline_moves_objects() {
        let a = vec![LinearMotion::planar(0.0, 0.0, 1.0, 0.0)];
        let b = vec![LinearMotion::planar(20.0, 0.0, -1.0, 0.0)];
        // They meet at t = 10.
        assert!(linear_pairs_within(&a, &b, 0.0, 5.0).is_empty());
        assert_eq!(linear_pairs_within(&a, &b, 10.0, 5.0), vec![(0, 0)]);
    }
}
