//! Sorted key stores: the physical layout of one Planar index.
//!
//! A Planar index is "the data points sorted in ascending order of
//! `⟨c, φ(x)⟩`" (paper §4.2, the list `L`). Everything the query algorithms
//! need from that list is captured by the [`KeyStore`] trait:
//!
//! * *rank* queries — how many keys are `≤ t` (the binary searches of
//!   Algorithm 1 that locate the interval boundaries `j_min`, `j_max`);
//! * *range scans* in both directions — ascending over the intermediate
//!   interval (Algorithm 1) and descending over the smaller interval
//!   (Algorithm 2's pruned top-k walk);
//! * *point updates* — the dynamic maintenance of §4.4.
//!
//! Three implementations are provided:
//!
//! * [`VecStore`] — a packed sorted array. Fastest scans, O(n) updates.
//!   The right choice for the read-heavy workloads of the paper's main
//!   evaluation.
//! * [`BPlusTree`] — an order-statistics B+-tree built from scratch.
//!   O(log n) updates, matching the paper's `O(d' log n)` per-point update
//!   claim, at a modest constant-factor cost on scans. The right choice for
//!   moving-object style workloads where points change continuously.
//! * [`EytzingerStore`] — a packed array plus a BFS-ordered key copy that
//!   accelerates the rank queries (cache-predictable probe sequence);
//!   static like `VecStore`.

mod bptree;
mod eytzinger;
mod vec_store;

pub use bptree::BPlusTree;
pub use eytzinger::EytzingerStore;
pub use vec_store::VecStore;

use crate::memory::HeapSize;

/// One element of the sorted list `L`: the key `⟨c, φ(x)⟩` and the point id.
///
/// Entries are totally ordered by `(key, id)`; ids break ties so that every
/// entry has a unique position and removals are exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// The sort key `⟨c, φ(x)⟩` (raw-space; see `planar_geom::Normalizer`).
    pub key: f64,
    /// The data point this key belongs to.
    pub id: u32,
}

impl Entry {
    /// Create an entry, canonicalizing `-0.0` to `0.0` so that total-order
    /// comparisons agree with numeric equality at zero.
    #[inline]
    pub fn new(key: f64, id: u32) -> Self {
        Self {
            key: canon(key),
            id,
        }
    }

    /// Total order on `(key, id)`.
    #[inline]
    pub fn total_cmp(&self, other: &Entry) -> core::cmp::Ordering {
        self.key.total_cmp(&other.key).then(self.id.cmp(&other.id))
    }
}

/// Canonicalize `-0.0` to `0.0`: `f64::total_cmp` orders `-0.0 < 0.0`, which
/// would make a rank query at threshold `0.0` misclassify a `-0.0` key.
#[inline]
pub(crate) fn canon(key: f64) -> f64 {
    if key == 0.0 {
        0.0
    } else {
        key
    }
}

/// The sorted list `L` of one Planar index.
///
/// Implementations must behave as a multiset of [`Entry`] values kept in
/// `(key, id)` order. Keys must be finite (the index layer guarantees this —
/// feature tables and normals reject NaN/∞).
pub trait KeyStore: HeapSize + Sized {
    /// Build from arbitrary-order entries.
    fn build(entries: Vec<Entry>) -> Self;

    /// Number of entries.
    fn len(&self) -> usize;

    /// True when the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries with `key ≤ threshold`.
    fn rank_leq(&self, threshold: f64) -> usize;

    /// Number of entries with `key < threshold`.
    fn rank_lt(&self, threshold: f64) -> usize;

    /// Ascending iteration over the rank range `[from, to)`.
    fn iter_asc(&self, from: usize, to: usize) -> impl Iterator<Item = Entry> + '_;

    /// Descending iteration over ranks `below-1, below-2, …, 0`.
    fn iter_desc(&self, below: usize) -> impl Iterator<Item = Entry> + '_;

    /// Insert an entry.
    fn insert(&mut self, e: Entry);

    /// Remove an exact entry; returns whether it was present.
    fn remove(&mut self, e: Entry) -> bool;

    /// The smallest key, if any.
    fn min_key(&self) -> Option<f64> {
        self.iter_asc(0, self.len().min(1)).next().map(|e| e.key)
    }

    /// The largest key, if any.
    fn max_key(&self) -> Option<f64> {
        self.iter_desc(self.len()).next().map(|e| e.key)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A shared conformance suite run against every `KeyStore`
    //! implementation.
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn reference(entries: &[Entry]) -> Vec<Entry> {
        let mut v = entries.to_vec();
        v.sort_by(Entry::total_cmp);
        v
    }

    pub(crate) fn conformance<S: KeyStore>() {
        empty_store::<S>();
        build_sorts::<S>();
        ranks_with_duplicates::<S>();
        asc_desc_iteration::<S>();
        insert_remove_random::<S>();
        negative_zero_canonicalized::<S>();
    }

    fn empty_store<S: KeyStore>() {
        let s = S::build(vec![]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.rank_leq(0.0), 0);
        assert_eq!(s.rank_lt(0.0), 0);
        assert_eq!(s.iter_asc(0, 0).count(), 0);
        assert_eq!(s.iter_desc(0).count(), 0);
        assert_eq!(s.min_key(), None);
        assert_eq!(s.max_key(), None);
    }

    fn build_sorts<S: KeyStore>() {
        let entries = vec![
            Entry::new(3.0, 0),
            Entry::new(1.0, 1),
            Entry::new(2.0, 2),
            Entry::new(1.0, 0),
        ];
        let s = S::build(entries.clone());
        let got: Vec<Entry> = s.iter_asc(0, s.len()).collect();
        assert_eq!(got, reference(&entries));
        assert_eq!(s.min_key(), Some(1.0));
        assert_eq!(s.max_key(), Some(3.0));
    }

    fn ranks_with_duplicates<S: KeyStore>() {
        // keys: 1, 2, 2, 2, 5
        let s = S::build(vec![
            Entry::new(2.0, 0),
            Entry::new(2.0, 1),
            Entry::new(1.0, 2),
            Entry::new(5.0, 3),
            Entry::new(2.0, 4),
        ]);
        assert_eq!(s.rank_leq(0.0), 0);
        assert_eq!(s.rank_leq(1.0), 1);
        assert_eq!(s.rank_leq(2.0), 4);
        assert_eq!(s.rank_leq(4.9), 4);
        assert_eq!(s.rank_leq(5.0), 5);
        assert_eq!(s.rank_leq(9.0), 5);
        assert_eq!(s.rank_lt(1.0), 0);
        assert_eq!(s.rank_lt(2.0), 1);
        assert_eq!(s.rank_lt(2.0000001), 4);
        assert_eq!(s.rank_lt(5.0), 4);
    }

    fn asc_desc_iteration<S: KeyStore>() {
        let n = 257; // crosses node boundaries for the B+-tree
        let entries: Vec<Entry> = (0..n).map(|i| Entry::new((n - i) as f64, i)).collect();
        let s = S::build(entries);
        let asc: Vec<u32> = s.iter_asc(0, n as usize).map(|e| e.id).collect();
        let expect_asc: Vec<u32> = (0..n).rev().collect();
        assert_eq!(asc, expect_asc);

        // Sub-ranges agree with the full ordering.
        let mid: Vec<Entry> = s.iter_asc(10, 20).collect();
        assert_eq!(mid.len(), 10);
        assert_eq!(mid[0].key, 11.0);
        assert_eq!(mid[9].key, 20.0);

        let desc: Vec<Entry> = s.iter_desc(5).collect();
        let keys: Vec<f64> = desc.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![5.0, 4.0, 3.0, 2.0, 1.0]);

        let full_desc: Vec<u32> = s.iter_desc(n as usize).map(|e| e.id).collect();
        let mut expect_desc = expect_asc;
        expect_desc.reverse();
        assert_eq!(full_desc, expect_desc);
    }

    fn insert_remove_random<S: KeyStore>() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = S::build(vec![]);
        let mut model: Vec<Entry> = Vec::new();
        for i in 0..2000u32 {
            let key = (rng.random_range(0..50) as f64) * 0.5;
            let e = Entry::new(key, i);
            s.insert(e);
            model.push(e);
        }
        model.sort_by(Entry::total_cmp);
        assert_eq!(s.len(), model.len());
        let got: Vec<Entry> = s.iter_asc(0, s.len()).collect();
        assert_eq!(got, model);

        // Remove a random half, verifying presence/absence results.
        let mut removed = 0;
        for i in (0..2000u32).step_by(2) {
            let pos = model.iter().position(|e| e.id == i).unwrap();
            let e = model.remove(pos);
            assert!(s.remove(e), "entry {e:?} should be removable");
            assert!(!s.remove(e), "double removal must fail");
            removed += 1;
        }
        assert_eq!(s.len(), 2000 - removed);
        let got: Vec<Entry> = s.iter_asc(0, s.len()).collect();
        assert_eq!(got, model);

        // Rank queries agree with the model on many thresholds.
        for t in 0..60 {
            let t = t as f64 * 0.45;
            let leq = model.iter().filter(|e| e.key <= t).count();
            let lt = model.iter().filter(|e| e.key < t).count();
            assert_eq!(s.rank_leq(t), leq, "rank_leq({t})");
            assert_eq!(s.rank_lt(t), lt, "rank_lt({t})");
        }
    }

    fn negative_zero_canonicalized<S: KeyStore>() {
        let s = S::build(vec![Entry::new(-0.0, 0), Entry::new(0.0, 1)]);
        // Both keys are numerically zero: a strict rank at 0 sees neither.
        assert_eq!(s.rank_lt(0.0), 0);
        assert_eq!(s.rank_leq(0.0), 2);
        assert_eq!(s.rank_leq(-0.0), 2);
    }
}
