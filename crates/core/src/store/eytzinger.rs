//! A [`KeyStore`] with an Eytzinger-layout search accelerator.
//!
//! The Planar index's query hot path is two rank queries (binary searches)
//! per index per query. A classical binary search over a large sorted array
//! takes one hard-to-predict cache miss per probe; laying the probe
//! sequence out in BFS (Eytzinger) order makes successive probes land in
//! predictable, prefetchable locations — the standard static-search-layout
//! trick from the cache-efficient-search literature.
//!
//! `EytzingerStore` keeps the plain sorted entry array (for range scans,
//! exactly like [`super::VecStore`]) plus a BFS-ordered copy of the keys
//! used only to answer rank queries. Point mutations rebuild the
//! accelerator (O(n)) — the same asymptotic cost as the underlying sorted
//! `Vec` mutation, so this store targets the paper's read-heavy main
//! evaluation; use [`super::BPlusTree`] for update-heavy workloads.

use super::{canon, Entry, KeyStore};
use crate::memory::HeapSize;

/// Sorted entries + Eytzinger key accelerator.
#[derive(Debug, Clone, Default)]
pub struct EytzingerStore {
    entries: Vec<Entry>,
    /// Keys in BFS order; `bfs[0]` is the root. 1-based navigation uses
    /// index arithmetic `2i+1 / 2i+2` on this 0-based vector.
    bfs: Vec<f64>,
}

impl EytzingerStore {
    fn rebuild_bfs(&mut self) {
        self.bfs.clear();
        self.bfs.resize(self.entries.len(), 0.0);
        // In-order walk of the implicit BFS tree assigns sorted keys.
        fn fill(entries: &[Entry], bfs: &mut [f64], node: usize, next: &mut usize) {
            if node >= bfs.len() {
                return;
            }
            fill(entries, bfs, 2 * node + 1, next);
            bfs[node] = entries[*next].key;
            *next += 1;
            fill(entries, bfs, 2 * node + 2, next);
        }
        let mut next = 0;
        let entries = std::mem::take(&mut self.entries);
        fill(&entries, &mut self.bfs, 0, &mut next);
        self.entries = entries;
    }

    /// Number of keys strictly less than `t` (when `or_equal` is false) or
    /// less-or-equal (when true), via branch-light Eytzinger descent.
    fn bfs_rank(&self, t: f64, or_equal: bool) -> usize {
        // Descend the implicit tree; track how many keys are known ≤/< t.
        // Classic trick: walk to a leaf, counting via the final position.
        let n = self.bfs.len();
        let mut i = 0usize;
        while i < n {
            let key = self.bfs[i];
            let go_right = if or_equal { key <= t } else { key < t };
            i = 2 * i + 1 + usize::from(go_right);
        }
        // The 1-based path word `k = i+1` records the turns taken (0 = left,
        // 1 = right). The answer — the first element on the "wrong" side of
        // `t` — is the node where the *last left turn* was taken: strip the
        // trailing right-turns and that final left bit (the classic
        // `k >>= ffs(~k)` of Eytzinger lower-bound).
        let k = i + 1;
        let j = k >> (k.trailing_ones() + 1);
        if j == 0 {
            // No left turn was ever taken: every probed key was on the
            // ≤/< side, so all n keys rank below the threshold.
            n
        } else {
            // j is the 1-based BFS index of the boundary node; its in-order
            // rank equals the count of keys before it.
            self.inorder_rank(j - 1)
        }
    }

    /// The in-order rank of BFS node `node` (0-based): number of keys
    /// strictly before it in sorted order.
    fn inorder_rank(&self, node: usize) -> usize {
        // Rank = size of left subtree + (for each ancestor where we are in
        // the right subtree, size of the ancestor's left subtree + 1).
        // Computing subtree sizes of an implicit complete-ish tree is
        // O(log²n); cheap next to the search itself.
        let n = self.bfs.len();
        let mut rank = subtree_size(n, 2 * node + 1);
        let mut current = node;
        while current > 0 {
            let parent = (current - 1) / 2;
            if 2 * parent + 2 == current {
                rank += subtree_size(n, 2 * parent + 1) + 1;
            }
            current = parent;
        }
        rank
    }
}

/// Size of the subtree rooted at `node` in an implicit tree of `n` nodes.
fn subtree_size(n: usize, node: usize) -> usize {
    if node >= n {
        return 0;
    }
    // The implicit tree is complete: count full levels then the partial one.
    let mut size = 0usize;
    let mut first = node;
    let mut width = 1usize;
    loop {
        if first >= n {
            break;
        }
        let last = (first + width - 1).min(n - 1);
        size += last - first + 1;
        first = 2 * first + 1;
        width *= 2;
    }
    size
}

impl KeyStore for EytzingerStore {
    fn build(mut entries: Vec<Entry>) -> Self {
        for e in &mut entries {
            e.key = canon(e.key);
        }
        entries.sort_unstable_by(Entry::total_cmp);
        let mut s = Self {
            entries,
            bfs: Vec::new(),
        };
        s.rebuild_bfs();
        s
    }

    #[inline]
    fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn rank_leq(&self, threshold: f64) -> usize {
        self.bfs_rank(canon(threshold), true)
    }

    #[inline]
    fn rank_lt(&self, threshold: f64) -> usize {
        self.bfs_rank(canon(threshold), false)
    }

    fn iter_asc(&self, from: usize, to: usize) -> impl Iterator<Item = Entry> + '_ {
        let to = to.min(self.entries.len());
        let from = from.min(to);
        self.entries[from..to].iter().copied()
    }

    fn iter_desc(&self, below: usize) -> impl Iterator<Item = Entry> + '_ {
        let below = below.min(self.entries.len());
        self.entries[..below].iter().rev().copied()
    }

    fn insert(&mut self, e: Entry) {
        let e = Entry::new(e.key, e.id);
        let pos = self
            .entries
            .partition_point(|x| x.total_cmp(&e) == core::cmp::Ordering::Less);
        self.entries.insert(pos, e);
        self.rebuild_bfs();
    }

    fn remove(&mut self, e: Entry) -> bool {
        let e = Entry::new(e.key, e.id);
        let pos = self
            .entries
            .partition_point(|x| x.total_cmp(&e) == core::cmp::Ordering::Less);
        if pos < self.entries.len() && self.entries[pos] == e {
            self.entries.remove(pos);
            self.rebuild_bfs();
            true
        } else {
            false
        }
    }

    fn min_key(&self) -> Option<f64> {
        self.entries.first().map(|e| e.key)
    }

    fn max_key(&self) -> Option<f64> {
        self.entries.last().map(|e| e.key)
    }
}

impl HeapSize for EytzingerStore {
    fn heap_size(&self) -> usize {
        self.entries.capacity() * core::mem::size_of::<Entry>()
            + self.bfs.capacity() * core::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::test_support::conformance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn eytzinger_conformance() {
        conformance::<EytzingerStore>();
    }

    #[test]
    fn ranks_agree_with_vec_store_on_random_data() {
        use crate::store::VecStore;
        let mut rng = StdRng::seed_from_u64(17);
        for n in [0usize, 1, 2, 3, 7, 8, 9, 100, 1023, 1024, 1025] {
            let entries: Vec<Entry> = (0..n as u32)
                .map(|i| Entry::new((rng.random_range(0..200) as f64) * 0.5, i))
                .collect();
            let ey = EytzingerStore::build(entries.clone());
            let vs = VecStore::build(entries);
            for t in 0..60 {
                let t = t as f64 * 1.7 - 2.0;
                assert_eq!(ey.rank_leq(t), vs.rank_leq(t), "n={n} leq t={t}");
                assert_eq!(ey.rank_lt(t), vs.rank_lt(t), "n={n} lt t={t}");
            }
        }
    }

    #[test]
    fn subtree_size_complete_tree() {
        // n = 7: perfect tree, every subtree size is known.
        assert_eq!(subtree_size(7, 0), 7);
        assert_eq!(subtree_size(7, 1), 3);
        assert_eq!(subtree_size(7, 2), 3);
        assert_eq!(subtree_size(7, 3), 1);
        assert_eq!(subtree_size(7, 7), 0);
        // n = 5: last level partial.
        assert_eq!(subtree_size(5, 0), 5);
        assert_eq!(subtree_size(5, 1), 3);
        assert_eq!(subtree_size(5, 2), 1);
    }
}
