//! An order-statistics B+-tree [`KeyStore`], built from scratch.
//!
//! The paper's §4.4 claims `O(d' log n)` per-point dynamic updates; a packed
//! sorted array cannot deliver that, so this tree is the store of choice for
//! update-heavy workloads (moving objects whose `φ` changes continuously).
//!
//! Design notes:
//!
//! * Entries are totally ordered by `(key, id)` — see [`super::Entry`].
//! * Internal nodes carry per-child **subtree counts**, making the rank
//!   queries of Algorithm 1 (`j_min`, `j_max`) and rank-positioned scans
//!   O(log n) — the order-statistics part.
//! * Separators follow the copy-up convention: `seps[i]` equals the
//!   smallest entry of child `i+1`, and entries equal to a separator are
//!   routed right.
//! * Deletion rebalances eagerly (borrow from a sibling, else merge), so
//!   every non-root node stays at least half full and the height bound is
//!   honest.
//! * `build` bulk-loads bottom-up at ~¾ fill, leaving room for inserts.

use super::{canon, Entry, KeyStore};
use crate::memory::HeapSize;
use core::cmp::Ordering;

/// Maximum number of entries per leaf / children per internal node.
const MAX_FANOUT: usize = 32;
/// Underflow threshold for non-root nodes.
const MIN_FANOUT: usize = MAX_FANOUT / 2;
/// Bulk-load fill (entries per leaf, children per internal node).
const BULK_FILL: usize = MAX_FANOUT * 3 / 4;

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<Entry>),
    Internal(Internal),
}

#[derive(Debug, Clone)]
struct Internal {
    /// `seps[i]` = smallest entry in `children[i + 1]`.
    seps: Vec<Entry>,
    children: Vec<Node>,
    /// `counts[i]` = number of entries in the subtree `children[i]`.
    counts: Vec<usize>,
}

impl Internal {
    /// Index of the child an entry routes to: `#{seps ≤ e}`.
    #[inline]
    fn child_of(&self, e: &Entry) -> usize {
        self.seps
            .partition_point(|s| s.total_cmp(e) != Ordering::Greater)
    }

    #[inline]
    fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

impl Node {
    fn len(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Internal(n) => n.total(),
        }
    }

    fn fanout(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Internal(n) => n.children.len(),
        }
    }

    fn smallest(&self) -> Entry {
        match self {
            Node::Leaf(v) => v[0],
            Node::Internal(n) => n.children[0].smallest(),
        }
    }
}

/// Order-statistics B+-tree over `(key, id)` entries.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    root: Node,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self {
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }
}

impl BPlusTree {
    /// Height of the tree (a single leaf has height 1). Exposed for tests
    /// and diagnostics.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(n) = node {
            h += 1;
            node = &n.children[0];
        }
        h
    }

    /// Count entries strictly below `bound` in `(key, id)` order.
    fn rank_below(&self, bound: &Entry) -> usize {
        let mut acc = 0;
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(v) => {
                    acc += v.partition_point(|x| x.total_cmp(bound) == Ordering::Less);
                    return acc;
                }
                Node::Internal(n) => {
                    let i = n.child_of(bound);
                    // `child_of` routes entries equal to a separator right;
                    // for a strict bound every child j < i is entirely
                    // below `bound` only if its entries are < bound. Child
                    // j's entries are < seps[j] ≤ bound, so they are < bound
                    // unless equal — but equality with the bound is decided
                    // inside the recursion on child i; children left of i
                    // satisfy entries < seps[j] ≤ bound... strictness at
                    // the separator needs care: seps[j] ≤ bound and entries
                    // of child j are < seps[j], hence < bound. Safe.
                    acc += n.counts[..i].iter().sum::<usize>();
                    node = &n.children[i];
                }
            }
        }
    }

    fn insert_rec(node: &mut Node, e: Entry) -> Option<(Entry, Node)> {
        match node {
            Node::Leaf(v) => {
                let pos = v.partition_point(|x| x.total_cmp(&e) == Ordering::Less);
                v.insert(pos, e);
                if v.len() > MAX_FANOUT {
                    let right = v.split_off(v.len() / 2);
                    let sep = right[0];
                    Some((sep, Node::Leaf(right)))
                } else {
                    None
                }
            }
            Node::Internal(n) => {
                let i = n.child_of(&e);
                n.counts[i] += 1;
                if let Some((sep, right)) = Self::insert_rec(&mut n.children[i], e) {
                    let right_count = right.len();
                    n.counts[i] -= right_count;
                    n.seps.insert(i, sep);
                    n.children.insert(i + 1, right);
                    n.counts.insert(i + 1, right_count);
                    if n.children.len() > MAX_FANOUT {
                        let mid = n.children.len() / 2;
                        let right_children = n.children.split_off(mid);
                        let right_counts = n.counts.split_off(mid);
                        let right_seps = n.seps.split_off(mid);
                        let promote = n.seps.pop().expect("left half keeps ≥ 2 children");
                        return Some((
                            promote,
                            Node::Internal(Internal {
                                seps: right_seps,
                                children: right_children,
                                counts: right_counts,
                            }),
                        ));
                    }
                }
                None
            }
        }
    }

    fn remove_rec(node: &mut Node, e: &Entry) -> bool {
        match node {
            Node::Leaf(v) => {
                let pos = v.partition_point(|x| x.total_cmp(e) == Ordering::Less);
                if pos < v.len() && v[pos] == *e {
                    v.remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal(n) => {
                let i = n.child_of(e);
                let found = Self::remove_rec(&mut n.children[i], e);
                if found {
                    n.counts[i] -= 1;
                    if n.children[i].fanout() < MIN_FANOUT {
                        Self::rebalance(n, i);
                    }
                }
                found
            }
        }
    }

    /// Fix an underflowing child `i`: borrow from a richer sibling or merge.
    fn rebalance(n: &mut Internal, i: usize) {
        // Try borrowing from the left sibling.
        if i > 0 && n.children[i - 1].fanout() > MIN_FANOUT {
            Self::borrow_from_left(n, i);
            return;
        }
        // Try borrowing from the right sibling.
        if i + 1 < n.children.len() && n.children[i + 1].fanout() > MIN_FANOUT {
            Self::borrow_from_right(n, i);
            return;
        }
        // Merge with a sibling (prefer left).
        if i > 0 {
            Self::merge_children(n, i - 1);
        } else if i + 1 < n.children.len() {
            Self::merge_children(n, i);
        }
        // A root child may legitimately have no sibling; the tree-level
        // `shrink_root` handles the root collapsing to one child.
    }

    /// Move the greatest element/child of `children[i-1]` into `children[i]`.
    fn borrow_from_left(n: &mut Internal, i: usize) {
        let (left_half, right_half) = n.children.split_at_mut(i);
        let left = &mut left_half[i - 1];
        let child = &mut right_half[0];
        match (left, child) {
            (Node::Leaf(lv), Node::Leaf(cv)) => {
                let moved = lv.pop().expect("left sibling above minimum");
                cv.insert(0, moved);
                n.seps[i - 1] = moved;
                n.counts[i - 1] -= 1;
                n.counts[i] += 1;
            }
            (Node::Internal(ln), Node::Internal(cn)) => {
                let moved_child = ln.children.pop().expect("left sibling above minimum");
                let moved_count = ln.counts.pop().expect("counts parallel to children");
                let moved_sep = ln.seps.pop().expect("seps parallel to children");
                // Parent separator rotates down; left's last separator
                // rotates up.
                let parent_sep = n.seps[i - 1];
                n.seps[i - 1] = moved_sep;
                cn.seps.insert(0, parent_sep);
                cn.children.insert(0, moved_child);
                cn.counts.insert(0, moved_count);
                n.counts[i - 1] -= moved_count;
                n.counts[i] += moved_count;
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// Move the smallest element/child of `children[i+1]` into `children[i]`.
    fn borrow_from_right(n: &mut Internal, i: usize) {
        let (left_half, right_half) = n.children.split_at_mut(i + 1);
        let child = &mut left_half[i];
        let right = &mut right_half[0];
        match (child, right) {
            (Node::Leaf(cv), Node::Leaf(rv)) => {
                let moved = rv.remove(0);
                cv.push(moved);
                n.seps[i] = rv[0];
                n.counts[i] += 1;
                n.counts[i + 1] -= 1;
            }
            (Node::Internal(cn), Node::Internal(rn)) => {
                let moved_child = rn.children.remove(0);
                let moved_count = rn.counts.remove(0);
                let moved_sep = rn.seps.remove(0);
                let parent_sep = n.seps[i];
                n.seps[i] = moved_sep;
                cn.seps.push(parent_sep);
                cn.children.push(moved_child);
                cn.counts.push(moved_count);
                n.counts[i] += moved_count;
                n.counts[i + 1] -= moved_count;
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// Merge `children[i+1]` into `children[i]` and drop the separator.
    fn merge_children(n: &mut Internal, i: usize) {
        let right = n.children.remove(i + 1);
        let right_count = n.counts.remove(i + 1);
        let sep = n.seps.remove(i);
        n.counts[i] += right_count;
        match (&mut n.children[i], right) {
            (Node::Leaf(lv), Node::Leaf(rv)) => {
                lv.extend(rv);
            }
            (Node::Internal(ln), Node::Internal(rn)) => {
                ln.seps.push(sep);
                ln.seps.extend(rn.seps);
                ln.children.extend(rn.children);
                ln.counts.extend(rn.counts);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    fn shrink_root(&mut self) {
        while let Node::Internal(n) = &mut self.root {
            if n.children.len() == 1 {
                self.root = n.children.pop().expect("one child present");
            } else {
                break;
            }
        }
    }

    /// Split `total` items into chunks near [`BULK_FILL`] such that every
    /// chunk (when more than one) holds at least [`MIN_FANOUT`] items.
    fn chunk_sizes(total: usize) -> Vec<usize> {
        if total == 0 {
            return Vec::new();
        }
        let mut k = total.div_ceil(BULK_FILL);
        if k > 1 && total / k < MIN_FANOUT {
            // Too few items for k half-full nodes; use fewer, fuller nodes.
            k = (total / MIN_FANOUT).max(1);
        }
        let base = total / k;
        let rem = total % k;
        (0..k).map(|i| base + usize::from(i < rem)).collect()
    }

    /// Bulk-load from sorted entries, bottom-up near [`BULK_FILL`] fill.
    fn bulk_load(sorted: Vec<Entry>) -> Node {
        if sorted.is_empty() {
            return Node::Leaf(Vec::new());
        }
        // Leaf level.
        let sizes = Self::chunk_sizes(sorted.len());
        let mut level: Vec<Node> = Vec::with_capacity(sizes.len());
        let mut items = sorted.into_iter();
        for s in sizes {
            level.push(Node::Leaf(items.by_ref().take(s).collect()));
        }
        // Internal levels.
        while level.len() > 1 {
            let sizes = Self::chunk_sizes(level.len());
            let mut next: Vec<Node> = Vec::with_capacity(sizes.len());
            let mut nodes = level.into_iter();
            for s in sizes {
                let group: Vec<Node> = nodes.by_ref().take(s).collect();
                let seps = group[1..].iter().map(Node::smallest).collect();
                let counts = group.iter().map(Node::len).collect();
                next.push(Node::Internal(Internal {
                    seps,
                    children: group,
                    counts,
                }));
            }
            level = next;
        }
        level.pop().expect("at least one node")
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk(node: &Node, is_root: bool, lo: Option<&Entry>, hi: Option<&Entry>) -> usize {
            match node {
                Node::Leaf(v) => {
                    if !is_root {
                        assert!(v.len() >= MIN_FANOUT, "underfull leaf: {}", v.len());
                    }
                    assert!(v.len() <= MAX_FANOUT);
                    for w in v.windows(2) {
                        assert!(w[0].total_cmp(&w[1]) == Ordering::Less, "unsorted leaf");
                    }
                    if let (Some(lo), Some(first)) = (lo, v.first()) {
                        assert!(
                            lo.total_cmp(first) != Ordering::Greater,
                            "lo bound violated"
                        );
                    }
                    if let (Some(hi), Some(last)) = (hi, v.last()) {
                        assert!(last.total_cmp(hi) == Ordering::Less, "hi bound violated");
                    }
                    v.len()
                }
                Node::Internal(n) => {
                    assert_eq!(n.children.len(), n.counts.len());
                    assert_eq!(n.children.len(), n.seps.len() + 1);
                    if !is_root {
                        assert!(n.children.len() >= MIN_FANOUT, "underfull internal");
                    }
                    assert!(n.children.len() <= MAX_FANOUT);
                    let mut total = 0;
                    for (i, child) in n.children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(&n.seps[i - 1]) };
                        let chi = if i == n.seps.len() {
                            hi
                        } else {
                            Some(&n.seps[i])
                        };
                        let sz = walk(child, false, clo, chi);
                        assert_eq!(sz, n.counts[i], "stale subtree count");
                        total += sz;
                    }
                    // Separators may go *stale* after deletions (the entry
                    // equal to a separator can be removed); they must still
                    // partition: sep ≤ min of the right child. The strict
                    // lo/hi range checks above already enforce the rest.
                    for (i, s) in n.seps.iter().enumerate() {
                        assert_ne!(
                            s.total_cmp(&n.children[i + 1].smallest()),
                            Ordering::Greater,
                            "separator exceeds min of right child"
                        );
                    }
                    total
                }
            }
        }
        let total = walk(&self.root, true, None, None);
        assert_eq!(total, self.len, "tree len out of sync");
    }
}

impl KeyStore for BPlusTree {
    fn build(mut entries: Vec<Entry>) -> Self {
        for e in &mut entries {
            e.key = canon(e.key);
        }
        entries.sort_unstable_by(Entry::total_cmp);
        let len = entries.len();
        Self {
            root: Self::bulk_load(entries),
            len,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn rank_leq(&self, threshold: f64) -> usize {
        // Entries with key ≤ t are exactly those strictly below
        // (t, u32::MAX] — i.e. ≤ (t, u32::MAX) since ids are ≤ u32::MAX;
        // count strictly-below (t, MAX) then add matches of (t, MAX) itself.
        // Simpler: strictly below the successor bound (t, u32::MAX) counts
        // every id < MAX; treat the (t, MAX) entry via rank_below on a bound
        // just above. We avoid the edge by counting `< (next_up(t), 0)`.
        let t = canon(threshold);
        self.rank_below(&Entry {
            key: next_up(t),
            id: 0,
        })
    }

    fn rank_lt(&self, threshold: f64) -> usize {
        let t = canon(threshold);
        self.rank_below(&Entry { key: t, id: 0 })
    }

    fn iter_asc(&self, from: usize, to: usize) -> impl Iterator<Item = Entry> + '_ {
        let to = to.min(self.len);
        let from = from.min(to);
        AscIter::positioned(&self.root, from, to - from)
    }

    fn iter_desc(&self, below: usize) -> impl Iterator<Item = Entry> + '_ {
        let below = below.min(self.len);
        DescIter::positioned(&self.root, below)
    }

    fn insert(&mut self, e: Entry) {
        let e = Entry::new(e.key, e.id);
        if let Some((sep, right)) = Self::insert_rec(&mut self.root, e) {
            let old_root = core::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            let counts = vec![old_root.len(), right.len()];
            self.root = Node::Internal(Internal {
                seps: vec![sep],
                children: vec![old_root, right],
                counts,
            });
        }
        self.len += 1;
    }

    fn remove(&mut self, e: Entry) -> bool {
        let e = Entry::new(e.key, e.id);
        let found = Self::remove_rec(&mut self.root, &e);
        if found {
            self.len -= 1;
            self.shrink_root();
        }
        found
    }
}

/// The next representable f64 above `x` (for finite `x`).
fn next_up(x: f64) -> f64 {
    // f64::next_up is stable since 1.86; implemented here for clarity and
    // because we only need the finite case.
    debug_assert!(x.is_finite());
    let bits = x.to_bits();
    let next = if x == 0.0 {
        1 // smallest positive subnormal
    } else if bits >> 63 == 0 {
        bits + 1
    } else {
        bits - 1
    };
    f64::from_bits(next)
}

struct AscIter<'a> {
    stack: Vec<(&'a Internal, usize)>,
    leaf: &'a [Entry],
    leaf_idx: usize,
    remaining: usize,
}

impl<'a> AscIter<'a> {
    fn positioned(root: &'a Node, mut rank: usize, remaining: usize) -> Self {
        let mut stack = Vec::new();
        let mut node = root;
        loop {
            match node {
                Node::Leaf(v) => {
                    return Self {
                        stack,
                        leaf: v,
                        leaf_idx: rank,
                        remaining,
                    };
                }
                Node::Internal(n) => {
                    let mut j = 0;
                    while j + 1 < n.counts.len() && rank >= n.counts[j] {
                        rank -= n.counts[j];
                        j += 1;
                    }
                    stack.push((n, j));
                    node = &n.children[j];
                }
            }
        }
    }

    fn descend_leftmost(&mut self, mut node: &'a Node) {
        loop {
            match node {
                Node::Leaf(v) => {
                    self.leaf = v;
                    self.leaf_idx = 0;
                    return;
                }
                Node::Internal(n) => {
                    self.stack.push((n, 0));
                    node = &n.children[0];
                }
            }
        }
    }
}

impl<'a> Iterator for AscIter<'a> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        if self.remaining == 0 {
            return None;
        }
        while self.leaf_idx >= self.leaf.len() {
            // Climb until some ancestor has a next child, then descend.
            let next_child: Option<&'a Node> = {
                let top = self.stack.last_mut()?;
                let parent: &'a Internal = top.0;
                if top.1 + 1 < parent.children.len() {
                    top.1 += 1;
                    Some(&parent.children[top.1])
                } else {
                    None
                }
            };
            match next_child {
                Some(child) => self.descend_leftmost(child),
                None => {
                    self.stack.pop();
                }
            }
        }
        let e = self.leaf[self.leaf_idx];
        self.leaf_idx += 1;
        self.remaining -= 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

struct DescIter<'a> {
    stack: Vec<(&'a Internal, usize)>,
    leaf: &'a [Entry],
    /// Next position to yield is `leaf_pos - 1`; 0 means leaf exhausted.
    leaf_pos: usize,
    remaining: usize,
}

impl<'a> DescIter<'a> {
    fn positioned(root: &'a Node, below: usize) -> Self {
        if below == 0 {
            return Self {
                stack: Vec::new(),
                leaf: &[],
                leaf_pos: 0,
                remaining: 0,
            };
        }
        // Position on rank `below - 1` and yield downward.
        let mut rank = below - 1;
        let mut stack = Vec::new();
        let mut node = root;
        loop {
            match node {
                Node::Leaf(v) => {
                    return Self {
                        stack,
                        leaf: v,
                        leaf_pos: rank + 1,
                        remaining: below,
                    };
                }
                Node::Internal(n) => {
                    let mut j = 0;
                    while j + 1 < n.counts.len() && rank >= n.counts[j] {
                        rank -= n.counts[j];
                        j += 1;
                    }
                    stack.push((n, j));
                    node = &n.children[j];
                }
            }
        }
    }

    fn descend_rightmost(&mut self, mut node: &'a Node) {
        loop {
            match node {
                Node::Leaf(v) => {
                    self.leaf = v;
                    self.leaf_pos = v.len();
                    return;
                }
                Node::Internal(n) => {
                    self.stack.push((n, n.children.len() - 1));
                    node = &n.children[n.children.len() - 1];
                }
            }
        }
    }
}

impl<'a> Iterator for DescIter<'a> {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        if self.remaining == 0 {
            return None;
        }
        while self.leaf_pos == 0 {
            let prev_child: Option<&'a Node> = {
                let top = self.stack.last_mut()?;
                let parent: &'a Internal = top.0;
                if top.1 > 0 {
                    top.1 -= 1;
                    Some(&parent.children[top.1])
                } else {
                    None
                }
            };
            match prev_child {
                Some(child) => self.descend_rightmost(child),
                None => {
                    self.stack.pop();
                }
            }
        }
        self.leaf_pos -= 1;
        self.remaining -= 1;
        Some(self.leaf[self.leaf_pos])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl HeapSize for BPlusTree {
    fn heap_size(&self) -> usize {
        fn node_heap(node: &Node) -> usize {
            match node {
                Node::Leaf(v) => v.capacity() * core::mem::size_of::<Entry>(),
                Node::Internal(n) => {
                    n.seps.capacity() * core::mem::size_of::<Entry>()
                        + n.counts.capacity() * core::mem::size_of::<usize>()
                        + n.children.capacity() * core::mem::size_of::<Node>()
                        + n.children.iter().map(node_heap).sum::<usize>()
                }
            }
        }
        node_heap(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::test_support::conformance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bptree_conformance() {
        conformance::<BPlusTree>();
    }

    #[test]
    fn bulk_load_respects_invariants() {
        for n in [0usize, 1, 5, 31, 32, 33, 100, 1000, 10_000] {
            let t = BPlusTree::build((0..n as u32).map(|i| Entry::new(i as f64, i)).collect());
            t.check_invariants();
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let t = BPlusTree::build((0..100_000u32).map(|i| Entry::new(i as f64, i)).collect());
        // fill 24 per leaf → ~4167 leaves → ≤ 3 internal levels.
        assert!(t.height() <= 4, "height {}", t.height());
    }

    #[test]
    fn random_ops_maintain_invariants() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = BPlusTree::build(vec![]);
        let mut model: Vec<Entry> = Vec::new();
        for step in 0..4000u32 {
            if model.is_empty() || rng.random_bool(0.6) {
                let e = Entry::new(rng.random_range(0..500) as f64, step);
                t.insert(e);
                model.push(e);
            } else {
                let pos = rng.random_range(0..model.len());
                let e = model.swap_remove(pos);
                assert!(t.remove(e));
            }
            if step % 500 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        model.sort_by(Entry::total_cmp);
        let got: Vec<Entry> = t.iter_asc(0, t.len()).collect();
        assert_eq!(got, model);
        let mut desc: Vec<Entry> = t.iter_desc(t.len()).collect();
        desc.reverse();
        assert_eq!(desc, model);
    }

    #[test]
    fn drain_to_empty_and_refill() {
        let entries: Vec<Entry> = (0..300u32).map(|i| Entry::new(i as f64, i)).collect();
        let mut t = BPlusTree::build(entries.clone());
        for e in &entries {
            assert!(t.remove(*e));
        }
        t.check_invariants();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        for e in &entries {
            t.insert(*e);
        }
        t.check_invariants();
        assert_eq!(t.len(), 300);
        assert_eq!(t.iter_asc(0, 300).count(), 300);
    }

    #[test]
    fn rank_mid_key_gap() {
        // keys 0, 2, 4, ... — thresholds falling in gaps.
        let t = BPlusTree::build((0..100u32).map(|i| Entry::new(2.0 * i as f64, i)).collect());
        assert_eq!(t.rank_leq(3.0), 2);
        assert_eq!(t.rank_lt(4.0), 2);
        assert_eq!(t.rank_leq(4.0), 3);
        assert_eq!(t.rank_leq(-1.0), 0);
        assert_eq!(t.rank_leq(1e9), 100);
    }

    #[test]
    fn next_up_behaves() {
        assert!(next_up(0.0) > 0.0);
        assert!(next_up(1.0) > 1.0);
        assert!(next_up(-1.0) > -1.0);
        assert_eq!(next_up(1.0), f64::from_bits(1.0f64.to_bits() + 1));
    }

    #[test]
    fn heap_size_grows_with_content() {
        let small = BPlusTree::build((0..10u32).map(|i| Entry::new(i as f64, i)).collect());
        let big = BPlusTree::build((0..10_000u32).map(|i| Entry::new(i as f64, i)).collect());
        assert!(big.heap_size() > small.heap_size() * 100);
    }
}
