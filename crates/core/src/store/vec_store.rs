//! A packed, sorted-array [`KeyStore`].
//!
//! This is the layout the paper's evaluation implies: one contiguous sorted
//! list per index, binary-searched at query time. Rank queries are a single
//! `partition_point`, scans are linear memory walks, and memory overhead is
//! exactly `12 bytes/entry` (key + id). Point updates are O(n) — use
//! [`super::BPlusTree`] when updates dominate.

use super::{canon, Entry, KeyStore};
use crate::memory::HeapSize;

/// Sorted `Vec` of entries ordered by `(key, id)`.
#[derive(Debug, Clone, Default)]
pub struct VecStore {
    entries: Vec<Entry>,
}

impl VecStore {
    /// Position of the first entry not strictly below `e` in `(key, id)`
    /// order.
    fn lower_bound(&self, e: &Entry) -> usize {
        self.entries
            .partition_point(|x| x.total_cmp(e) == core::cmp::Ordering::Less)
    }
}

impl KeyStore for VecStore {
    fn build(mut entries: Vec<Entry>) -> Self {
        for e in &mut entries {
            e.key = canon(e.key);
        }
        entries.sort_unstable_by(Entry::total_cmp);
        Self { entries }
    }

    #[inline]
    fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn rank_leq(&self, threshold: f64) -> usize {
        let t = canon(threshold);
        self.entries.partition_point(|e| e.key <= t)
    }

    #[inline]
    fn rank_lt(&self, threshold: f64) -> usize {
        let t = canon(threshold);
        self.entries.partition_point(|e| e.key < t)
    }

    fn iter_asc(&self, from: usize, to: usize) -> impl Iterator<Item = Entry> + '_ {
        let to = to.min(self.entries.len());
        let from = from.min(to);
        self.entries[from..to].iter().copied()
    }

    fn iter_desc(&self, below: usize) -> impl Iterator<Item = Entry> + '_ {
        let below = below.min(self.entries.len());
        self.entries[..below].iter().rev().copied()
    }

    fn insert(&mut self, e: Entry) {
        let e = Entry::new(e.key, e.id);
        let pos = self.lower_bound(&e);
        self.entries.insert(pos, e);
    }

    fn remove(&mut self, e: Entry) -> bool {
        let e = Entry::new(e.key, e.id);
        let pos = self.lower_bound(&e);
        if pos < self.entries.len() && self.entries[pos] == e {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    fn min_key(&self) -> Option<f64> {
        self.entries.first().map(|e| e.key)
    }

    fn max_key(&self) -> Option<f64> {
        self.entries.last().map(|e| e.key)
    }
}

impl HeapSize for VecStore {
    fn heap_size(&self) -> usize {
        self.entries.capacity() * core::mem::size_of::<Entry>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::test_support::conformance;

    #[test]
    fn vec_store_conformance() {
        conformance::<VecStore>();
    }

    #[test]
    fn iter_bounds_are_clamped() {
        let s = VecStore::build(vec![Entry::new(1.0, 0), Entry::new(2.0, 1)]);
        assert_eq!(s.iter_asc(0, 99).count(), 2);
        assert_eq!(s.iter_asc(5, 99).count(), 0);
        assert_eq!(s.iter_desc(99).count(), 2);
    }

    #[test]
    fn heap_size_is_12_bytes_per_entry_plus_padding() {
        let s = VecStore::build((0..100).map(|i| Entry::new(i as f64, i)).collect());
        // Entry is (f64, u32) → 16 bytes with padding; capacity == len after build.
        assert_eq!(s.heap_size(), 100 * core::mem::size_of::<Entry>());
    }
}
