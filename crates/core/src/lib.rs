//! # planar-core
//!
//! The **Planar index** of *"Towards Indexing Functions: Answering Scalar
//! Product Queries"* (Khan, Yanki, Dimcheva, Kossmann — SIGMOD 2014).
//!
//! Given `n` data points `x` and an application-specific feature map
//! `φ : R^d → R^{d'}` known ahead of time, the index answers — online, and
//! exactly — queries whose parameters only become known at query time:
//!
//! * **Inequality queries** (paper Problem 1): all `x` with
//!   `⟨a, φ(x)⟩ ≤ b` (or `≥ b`);
//! * **Top-k nearest-neighbor queries** (paper Problem 2): the `k`
//!   satisfying points closest to the query hyperplane, i.e. minimizing
//!   `|⟨a, φ(x)⟩ − b| / |a|`.
//!
//! ## How it works
//!
//! One *Planar index* is a set of parallel hyperplanes with a common normal
//! `c` — concretely, the points sorted by their key `⟨c, φ(x)⟩` (paper §4.2).
//! At query time the per-axis intercept thresholds `tᵢ = cᵢ·b/aᵢ` split the
//! sorted order into three runs (paper §4.3):
//!
//! * the **smaller interval** `key ≤ min tᵢ` — every point provably
//!   satisfies a `≤` query and is accepted without computing its scalar
//!   product;
//! * the **larger interval** `key > max tᵢ` — every point provably violates
//!   it and is rejected outright;
//! * the **intermediate interval** in between — verified exactly.
//!
//! A [`PlanarIndexSet`] keeps a small budget of such indices with different
//! normals sampled from the query-parameter domains (§5.2) and picks the
//! best one per query by stretch minimization (§5.1.1) or angle
//! minimization (§5.1.2). Queries and data outside the first hyper-octant
//! are handled by the translation of §4.5 (see [`planar_geom::Normalizer`]).
//!
//! ## Quick start
//!
//! ```
//! use planar_core::{Cmp, FeatureTable, InequalityQuery, IndexConfig, ParameterDomain,
//!                   PlanarIndexSet};
//!
//! // φ(x) already applied: three 2-d feature rows.
//! let table = FeatureTable::from_rows(2, vec![
//!     vec![1.0, 1.0],
//!     vec![4.0, 2.0],
//!     vec![9.0, 9.0],
//! ]).unwrap();
//!
//! // Query coefficients will be drawn from [0.5, 2] on both axes.
//! let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
//! let set: PlanarIndexSet = PlanarIndexSet::build(table, domain, IndexConfig::with_budget(8)).unwrap();
//!
//! // ⟨(1, 2), φ(x)⟩ ≤ 9
//! let q = InequalityQuery::new(vec![1.0, 2.0], Cmp::Leq, 9.0).unwrap();
//! let out = set.query(&q).unwrap();
//! assert_eq!(out.sorted_ids(), vec![0, 1]);
//! ```
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`table`] | flat row-major feature storage ([`FeatureTable`]) |
//! | [`query`] | query types and exact predicate evaluation |
//! | [`domain`] | parameter domains, sampling, online domain tracking (§4.1) |
//! | [`store`] | sorted key stores: packed [`store::VecStore`] and a B+-tree ([`store::BPlusTree`]) for dynamic workloads (§4.4) |
//! | [`index`] | one Planar index: intervals + Algorithm 1 + Algorithm 2 |
//! | [`selection`] | best-index selection heuristics (§5.1) |
//! | [`multi`] | [`PlanarIndexSet`]: budgeted multi-index structure (§5) |
//! | [`shard`] | [`ShardedIndexSet`]: shared-nothing horizontal partitioning with k-way top-k merge |
//! | [`parallel`] | thread configuration, query scratch, blocked/chunked verification |
//! | [`scan`] | the sequential-scan baseline the paper compares against |
//! | [`feature`] | the `φ` feature-map abstraction |
//! | [`stats`] | per-query pruning statistics and serving provenance |
//! | [`memory`] | heap accounting for the memory experiments (Fig. 13b) |
//! | [`frame`] | shared CRC-64 framing: the seal/verify helpers every on-disk and wire format uses |
//! | [`persist`] | crash-safe snapshots: sectioned `PLNRIDX2` format, atomic saves, partial recovery |
//! | [`wal`] | crash-consistent mutation durability: CRC-framed write-ahead log, group commit, checkpoints, point-in-time recovery |
//! | [`concurrent`] | epoch-based snapshot isolation: lock-free concurrent reads under a single group-committing writer |
//! | [`replicate`] | WAL-shipping replication: snapshot install, segment tailing, LSN-bounded follower reads, failover promotion |
//! | [`health`] | index self-verification and the quarantine-and-degrade lifecycle |
//! | [`backoff`] | shared capped-exponential retry backoff with deterministic jitter |
//! | [`fault`] | fault injection: deterministic corruptions, a faulty IO layer, panic triggers, a socket-level chaos proxy |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod backoff;
pub mod concurrent;
pub mod conjunction;
pub mod domain;
pub mod fault;
pub mod feature;
pub mod frame;
pub mod halfspace;
pub mod health;
pub mod index;
pub mod memory;
pub mod multi;
pub mod parallel;
pub mod persist;
pub mod quant;
pub mod query;
pub mod replicate;
pub mod router;
pub mod scan;
pub mod selection;
pub mod shard;
pub mod stats;
pub mod store;
pub mod table;
pub mod wal;

pub use adaptive::{AdaptiveConfig, AdaptivePlanarIndexSet};
pub use backoff::Backoff;
pub use concurrent::{
    ConcurrencyConfig, ConcurrentDurablePlanarIndexSet, ConcurrentDurableShardedIndexSet,
    ConcurrentPlanarIndexSet, ConcurrentShardedIndexSet, EpochCell, EpochStats, Snapshot,
};
pub use conjunction::{ConjunctionOutcome, ConjunctionQuery};
pub use domain::{Domain, DomainTracker, ParameterDomain};
#[cfg(any(test, feature = "fault-injection"))]
pub use fault::{ChaosCtl, ChaosFault, ChaosProxy, Corruption, FaultyIo, IoFault, TempDir};
pub use fault::{SnapshotIo, StdIo};
pub use feature::{FeatureMap, FnFeatureMap, IdentityMap};
pub use halfspace::{HalfSpace, HalfSpaceIndex};
pub use health::{HealthIssue, HealthReport, IndexHealth, ShardedHealthReport};
pub use index::{IntervalBounds, SingleIndex, TopKStats};
pub use memory::HeapSize;
pub use multi::{DynamicPlanarIndexSet, IndexConfig, PlanarIndexSet, QueryOutcome, TopKOutcome};
pub use parallel::{ExecutionConfig, QueryScratch, ScratchPool};
pub use persist::{RecoveryReport, SaveOptions, ShardedRecoveryReport};
pub use quant::{
    retune, QuantAutotuneConfig, QuantFilterStats, QuantObservations, QuantPolicy, QuantTier,
    QuantTuner, QuantizedColumns,
};
pub use query::{Cmp, InequalityQuery, InvalidQueryReason, TopKQuery};
pub use replicate::{
    elect, endpoint_pair, AckPolicy, ChannelTransport, DirTransport, FailoverConfig, FollowerRead,
    Primary, ReadConsistency, Replica, ReplicaHealth, ReplicationHealth, ReplicationStats,
    ShipEndpoint, ShipEndpointDriver, TcpLinkOptions, TcpTransport, Transport, SHIP_MAGIC,
};
pub use router::AxisReductionRouter;
pub use scan::SeqScan;
pub use selection::SelectionStrategy;
pub use shard::{
    merge_top_k, PartitionScheme, Partitioner, ShardConfig, ShardedIndexSet, ShardedQueryOutcome,
    ShardedTopKOutcome,
};
pub use stats::{ExecutionPath, JsonObject, QueryStats, ServedBy, StatsAggregator, StatsSnapshot};
pub use store::{BPlusTree, EytzingerStore, KeyStore, VecStore};
pub use table::{ColSegment, ColumnMajorRows, FeatureTable};
pub use wal::{
    DurablePlanarIndexSet, DurableShardedIndexSet, FsyncPolicy, GroupCommitStats, Lsn, Mutation,
    MutationAck, QuorumGate, WalHealth, WalOptions, WalRecord,
};

use planar_geom::GeomError;

/// Errors produced by index construction and querying.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanarError {
    /// An underlying geometry error.
    Geom(GeomError),
    /// Operands disagree on dimensionality.
    DimensionMismatch {
        /// expected dimensionality
        expected: usize,
        /// dimensionality found
        found: usize,
    },
    /// The dataset is empty where at least one point is required.
    EmptyDataset,
    /// A parameter domain was empty or inverted.
    EmptyDomain {
        /// the offending axis
        axis: usize,
    },
    /// A parameter domain straddles zero: the sign of that query coefficient
    /// would be unknown, so no octant can be fixed (§4.5).
    DomainContainsZero {
        /// the offending axis
        axis: usize,
    },
    /// The index budget must be at least 1.
    InvalidBudget,
    /// A supplied value was NaN or infinite.
    NotFinite,
    /// A query failed typed validation before touching any threshold
    /// arithmetic: NaN/±∞ coefficients or offsets, or a zero coefficient
    /// on a thresholded axis (see [`InvalidQueryReason`]).
    InvalidQuery(InvalidQueryReason),
    /// No point with this identifier exists (or it was deleted).
    PointNotFound(u32),
    /// `k` must be at least 1 for a top-k query.
    KNotPositive,
    /// Persistence failure: I/O, truncation, corruption, or version
    /// mismatch (see `crate::persist`).
    Persist(String),
    /// An internal invariant was violated — typically a worker panic caught
    /// at a batch boundary (see `crate::parallel`). The payload is the
    /// panic/diagnostic message.
    Internal(String),
    /// A follower read demanded a consistency level the replica has not
    /// reached yet (see `crate::replicate::ReadConsistency`): the read
    /// required LSN `required` but only `applied` has been applied.
    ReplicaLag {
        /// LSN the read required.
        required: Lsn,
        /// LSN the replica has applied.
        applied: Lsn,
    },
    /// A replication peer holds a higher term: this node was deposed by a
    /// failover promotion and must stop acting as primary.
    Fenced {
        /// This node's term.
        term: u64,
        /// The higher term observed from a peer.
        observed: u64,
    },
    /// A quorum-acknowledged write became locally durable but the required
    /// number of replicas did not confirm the covering LSN in time (see
    /// `crate::replicate::AckPolicy::Quorum`). The write IS applied and
    /// durable on this node; only the quorum guarantee is unmet.
    QuorumTimeout {
        /// LSN the write needed confirmed.
        lsn: Lsn,
        /// Replicas required to confirm it.
        required: usize,
        /// Highest LSN the quorum had confirmed when time ran out.
        frontier: Lsn,
    },
}

impl core::fmt::Display for PlanarError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanarError::Geom(e) => write!(f, "geometry error: {e}"),
            PlanarError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            PlanarError::EmptyDataset => write!(f, "dataset must contain at least one point"),
            PlanarError::EmptyDomain { axis } => write!(f, "empty parameter domain on axis {axis}"),
            PlanarError::DomainContainsZero { axis } => {
                write!(f, "parameter domain on axis {axis} contains zero")
            }
            PlanarError::InvalidBudget => write!(f, "index budget must be at least 1"),
            PlanarError::NotFinite => write!(f, "value must be finite"),
            PlanarError::InvalidQuery(reason) => write!(f, "invalid query: {reason}"),
            PlanarError::PointNotFound(id) => write!(f, "no point with id {id}"),
            PlanarError::KNotPositive => write!(f, "k must be at least 1"),
            PlanarError::Persist(msg) => write!(f, "persistence error: {msg}"),
            PlanarError::Internal(msg) => write!(f, "internal error: {msg}"),
            PlanarError::ReplicaLag { required, applied } => write!(
                f,
                "replica lag: read required lsn {required} but only {applied} is applied"
            ),
            PlanarError::Fenced { term, observed } => write!(
                f,
                "fenced: this node's term {term} was deposed by term {observed}"
            ),
            PlanarError::QuorumTimeout {
                lsn,
                required,
                frontier,
            } => write!(
                f,
                "quorum timeout: lsn {lsn} durable locally but only confirmed up to \
                 {frontier} by the {required} required replica(s)"
            ),
        }
    }
}

impl std::error::Error for PlanarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanarError::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for PlanarError {
    fn from(e: GeomError) -> Self {
        PlanarError::Geom(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = core::result::Result<T, PlanarError>;
