//! Linear-constraint queries: conjunctions of scalar product inequalities.
//!
//! The paper's related-work discussion (§2, "Linear constraint queries")
//! notes that the search region of a linear constraint query is an
//! intersection of half-spaces, and that "one could also apply multiple
//! Planar indices in answering such linear constraint queries". This module
//! implements that suggestion:
//!
//! Given constraints `⟨a₁,φ(x)⟩ ≤ b₁ ∧ … ∧ ⟨a_m,φ(x)⟩ ≤ b_m`, each
//! constraint gets interval boundaries from the best index for *it*; a
//! point wholesale-rejected by **any** constraint is out, a point
//! wholesale-accepted by **all** constraints is in, and only the rest are
//! verified — against the cheapest constraint first, so most failing points
//! cost a single scalar product.

use crate::multi::PlanarIndexSet;
use crate::query::InequalityQuery;
use crate::stats::{ExecutionPath, QueryStats, ScanReason};
use crate::store::KeyStore;
use crate::table::PointId;
use crate::{PlanarError, Result};

/// A conjunction of inequality constraints (all must hold).
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctionQuery {
    constraints: Vec<InequalityQuery>,
}

impl ConjunctionQuery {
    /// Build from at least one constraint; all must share dimensionality.
    ///
    /// # Errors
    ///
    /// [`PlanarError::EmptyDataset`] with zero constraints,
    /// [`PlanarError::DimensionMismatch`] on mixed dimensionality.
    pub fn new(constraints: Vec<InequalityQuery>) -> Result<Self> {
        let first = constraints.first().ok_or(PlanarError::EmptyDataset)?;
        let dim = first.dim();
        for c in &constraints {
            if c.dim() != dim {
                return Err(PlanarError::DimensionMismatch {
                    expected: dim,
                    found: c.dim(),
                });
            }
        }
        Ok(Self { constraints })
    }

    /// The constraints.
    pub fn constraints(&self) -> &[InequalityQuery] {
        &self.constraints
    }

    /// Dimensionality of the query space.
    pub fn dim(&self) -> usize {
        self.constraints[0].dim()
    }

    /// Exact predicate: does the row satisfy every constraint?
    pub fn satisfies(&self, phi: &[f64]) -> bool {
        self.constraints.iter().all(|c| c.satisfies(phi))
    }
}

/// Result of a conjunction query.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctionOutcome {
    /// Ids of points satisfying every constraint (unspecified order).
    pub matches: Vec<PointId>,
    /// Combined statistics. `verified` counts scalar products actually
    /// computed across all constraints.
    pub stats: QueryStats,
}

impl ConjunctionOutcome {
    /// Matching ids in ascending order.
    pub fn sorted_ids(&self) -> Vec<PointId> {
        let mut ids = self.matches.clone();
        ids.sort_unstable();
        ids
    }
}

impl<S: KeyStore> PlanarIndexSet<S> {
    /// Answer a conjunction of inequality constraints (linear constraint
    /// query, §2). Exact.
    ///
    /// Execution plan: every constraint is planned against its best index
    /// (two rank queries, no data touched); the **most selective**
    /// constraint — the one whose larger interval wholesale-rejects the
    /// most points — becomes the *driver*. Only the driver's accepted +
    /// intermediate intervals are enumerated; each candidate is verified
    /// against the remaining constraints (and against the driver itself
    /// inside its intermediate interval). Points the driver rejects
    /// wholesale are never touched, so a selective constraint anywhere in
    /// the conjunction prunes the whole query.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] when constraint dimensionality
    /// differs from the table's.
    pub fn query_conjunction(&self, q: &ConjunctionQuery) -> Result<ConjunctionOutcome> {
        if q.dim() != self.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: self.dim(),
                found: q.dim(),
            });
        }
        // Every index store holds exactly the live points, so ranks and
        // ranges are in live-count space.
        let n = self.len();

        // Plan every indexable constraint (two rank queries each, no data
        // touched).
        let mut plans: Vec<(usize, DriverPlan)> = Vec::new();
        for (ci, c) in q.constraints().iter().enumerate() {
            if let Some((pos, bounds, cmp)) = self.constraint_plan(c) {
                plans.push((ci, DriverPlan { pos, bounds, cmp }));
            }
        }
        let any_indexed = !plans.is_empty();

        let mut matches = Vec::new();
        let mut verified = 0usize;
        let mut smaller = 0usize;
        let mut quant = crate::quant::QuantFilterStats::default();
        if any_indexed {
            // Pick the *index position* whose intersected candidate range
            // is narrowest — constraints sharing an index (e.g. the two
            // sides of a band) prune jointly by rank.
            // Candidate-range intersection per index position.
            let mut best: Option<(usize, (usize, usize))> = None; // (pos, range)
            for (_, plan) in &plans {
                let mut lo = 0usize;
                let mut hi = n;
                for (_, other) in plans.iter().filter(|(_, o)| o.pos == plan.pos) {
                    let (olo, ohi) = other.candidate_range(n);
                    lo = lo.max(olo);
                    hi = hi.min(ohi);
                }
                let hi = hi.max(lo);
                if best.is_none_or(|(_, (blo, bhi))| hi - lo < bhi - blo) {
                    best = Some((plan.pos, (lo, hi)));
                }
            }
            let (pos, (lo, hi)) = best.expect("at least one plan exists");
            // Accepted rank ranges of the driver-index constraints: inside
            // them the constraint is proven and needs no verification.
            let accepted_ranges: Vec<(usize, (usize, usize))> = plans
                .iter()
                .filter(|(_, p)| p.pos == pos)
                .map(|(ci, p)| (*ci, p.accepted_range(n)))
                .collect();
            let idx = self.index_at(pos).expect("planned index exists");
            let ids: Vec<PointId> = idx.ids_in(lo, hi).collect();
            for (offset, id) in ids.into_iter().enumerate() {
                let rank = lo + offset;
                verified += 1;
                let fully_accepted = accepted_ranges
                    .iter()
                    .all(|(_, (alo, ahi))| (*alo..*ahi).contains(&rank));
                if fully_accepted {
                    smaller += 1;
                }
                let row = self.table().row(id);
                let ok = q.constraints().iter().enumerate().all(|(ci, c)| {
                    let proven = accepted_ranges
                        .iter()
                        .any(|(aci, (alo, ahi))| *aci == ci && (*alo..*ahi).contains(&rank));
                    proven || c.satisfies(row)
                });
                if ok {
                    matches.push(id);
                }
            }
        } else if let Some(qcols) = self.table().quant() {
            // No constraint can use an index, but the quantized tier can
            // still wholesale-reject rows that provably fail the first
            // constraint — a row out on any constraint is out of the
            // conjunction. Survivors are checked exactly (skipping the
            // first constraint for lanes the filter already proved), so
            // answers match the plain scan bit for bit.
            quant.tier = qcols.tier();
            let c0 = &q.constraints()[0];
            let mut filter = crate::quant::QuantFilter::new(c0, qcols);
            let table = self.table();
            let len = table.len() as PointId;
            for seg in table.columns().segments(0, len) {
                let lanes_mask = if seg.lanes == planar_geom::BLOCK_ROWS {
                    u64::MAX
                } else {
                    (1u64 << seg.lanes) - 1
                };
                let (accept, reject) = match filter.classify(seg.first, seg.lanes) {
                    crate::quant::BlockClass::Fallback => {
                        quant.fallback += seg.lanes;
                        (0u64, 0u64)
                    }
                    crate::quant::BlockClass::Classified { accept, reject } => {
                        quant.lanes += seg.lanes;
                        quant.accepted += accept.count_ones() as usize;
                        quant.rejected += (reject & lanes_mask).count_ones() as usize;
                        quant.reverified += (!(accept | reject) & lanes_mask).count_ones() as usize;
                        (accept, reject)
                    }
                };
                for l in 0..seg.lanes {
                    if reject >> l & 1 == 1 {
                        continue;
                    }
                    let id = seg.first + l as PointId;
                    if !self.is_live(id) {
                        continue;
                    }
                    verified += 1;
                    let row = table.row(id);
                    let ok = if accept >> l & 1 == 1 {
                        q.constraints()[1..].iter().all(|c| c.satisfies(row))
                    } else {
                        q.satisfies(row)
                    };
                    if ok {
                        matches.push(id);
                    }
                }
            }
        } else {
            // No constraint can use an index: exact scan over live rows.
            for (id, row) in self.table().iter() {
                if self.is_live(id) && q.satisfies(row) {
                    matches.push(id);
                }
            }
            verified = n;
        }

        let stats = QueryStats {
            n,
            smaller,
            intermediate: verified.saturating_sub(smaller),
            larger: n.saturating_sub(verified),
            verified,
            intersect_pruned: 0,
            matched: matches.len(),
            quant,
            path: if any_indexed {
                ExecutionPath::Index { index: 0 }
            } else {
                ExecutionPath::ScanFallback(ScanReason::OctantMismatch)
            },
        };
        Ok(ConjunctionOutcome { matches, stats })
    }
}

/// The chosen driver constraint's plan.
struct DriverPlan {
    pos: usize,
    bounds: crate::index::IntervalBounds,
    cmp: crate::query::Cmp,
}

impl DriverPlan {
    /// Rank range of points this constraint does not wholesale-reject.
    fn candidate_range(&self, n: usize) -> (usize, usize) {
        match self.cmp {
            crate::query::Cmp::Leq => (0, self.bounds.j_max),
            crate::query::Cmp::Geq => (self.bounds.j_min, n),
        }
    }

    /// Rank range where this constraint is proven satisfied.
    fn accepted_range(&self, n: usize) -> (usize, usize) {
        match self.cmp {
            crate::query::Cmp::Leq => (0, self.bounds.j_min),
            crate::query::Cmp::Geq => (self.bounds.j_max, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ParameterDomain;
    use crate::multi::IndexConfig;
    use crate::query::Cmp;
    use crate::store::VecStore;
    use crate::table::FeatureTable;

    fn setup() -> PlanarIndexSet<VecStore> {
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![1.0 + (i % 20) as f64, 1.0 + (i / 20) as f64])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 3.0).unwrap();
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(10)).unwrap()
    }

    fn brute(set: &PlanarIndexSet<VecStore>, q: &ConjunctionQuery) -> Vec<PointId> {
        set.table()
            .iter()
            .filter(|(_, row)| q.satisfies(row))
            .map(|(id, _)| id)
            .collect()
    }

    #[test]
    fn construction_validates() {
        assert!(ConjunctionQuery::new(vec![]).is_err());
        let a = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        let b = InequalityQuery::leq(vec![1.0], 5.0).unwrap();
        assert!(ConjunctionQuery::new(vec![a.clone(), b]).is_err());
        assert!(ConjunctionQuery::new(vec![a]).is_ok());
    }

    #[test]
    fn band_query_matches_brute_force() {
        let set = setup();
        // 10 ≤ x + 2y ≤ 30 — a classic band (two half-spaces).
        let q = ConjunctionQuery::new(vec![
            InequalityQuery::new(vec![1.0, 2.0], Cmp::Geq, 10.0).unwrap(),
            InequalityQuery::new(vec![1.0, 2.0], Cmp::Leq, 30.0).unwrap(),
        ])
        .unwrap();
        let out = set.query_conjunction(&q).unwrap();
        assert_eq!(out.sorted_ids(), brute(&set, &q));
        assert!(!out.matches.is_empty());
        assert!(out.stats.matched > 0);
    }

    #[test]
    fn polytope_query_matches_brute_force() {
        let set = setup();
        let q = ConjunctionQuery::new(vec![
            InequalityQuery::leq(vec![1.0, 1.0], 25.0).unwrap(),
            InequalityQuery::geq(vec![2.0, 0.5], 6.0).unwrap(),
            InequalityQuery::leq(vec![0.5, 2.0], 30.0).unwrap(),
        ])
        .unwrap();
        let out = set.query_conjunction(&q).unwrap();
        assert_eq!(out.sorted_ids(), brute(&set, &q));
    }

    #[test]
    fn contradictory_constraints_yield_empty() {
        let set = setup();
        let q = ConjunctionQuery::new(vec![
            InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap(),
            InequalityQuery::geq(vec![1.0, 1.0], 100.0).unwrap(),
        ])
        .unwrap();
        let out = set.query_conjunction(&q).unwrap();
        assert!(out.matches.is_empty());
    }

    #[test]
    fn scan_constraints_mix_with_indexed_ones() {
        let set = setup();
        // Second constraint has a zero coefficient → per-constraint scan.
        let q = ConjunctionQuery::new(vec![
            InequalityQuery::leq(vec![1.0, 1.0], 30.0).unwrap(),
            InequalityQuery::leq(vec![0.0, 1.0], 10.0).unwrap(),
        ])
        .unwrap();
        let out = set.query_conjunction(&q).unwrap();
        assert_eq!(out.sorted_ids(), brute(&set, &q));
    }

    #[test]
    fn deleted_points_are_excluded() {
        let mut set = setup();
        let q = ConjunctionQuery::new(vec![InequalityQuery::leq(vec![1.0, 1.0], 1000.0).unwrap()])
            .unwrap();
        let before = set.query_conjunction(&q).unwrap().matches.len();
        set.delete_point(3).unwrap();
        let out = set.query_conjunction(&q).unwrap();
        assert_eq!(out.matches.len(), before - 1);
        assert!(!out.sorted_ids().contains(&3));
    }

    #[test]
    fn stats_partition_the_dataset() {
        let set = setup();
        let q = ConjunctionQuery::new(vec![
            InequalityQuery::leq(vec![1.0, 2.0], 20.0).unwrap(),
            InequalityQuery::geq(vec![2.0, 1.0], 8.0).unwrap(),
        ])
        .unwrap();
        let st = set.query_conjunction(&q).unwrap().stats;
        assert_eq!(st.smaller + st.intermediate + st.larger, st.n);
        // Every touched candidate counts as verified (driver-accepted ones
        // still check the remaining constraints).
        assert_eq!(st.verified, st.smaller + st.intermediate);
    }
}
