//! Shared-nothing horizontal sharding: a [`ShardedIndexSet`] partitions the
//! feature table into `S` shard-local [`PlanarIndexSet`]s and answers every
//! query by fanning it out across the shards.
//!
//! ## Why shard a main-memory index?
//!
//! Three reasons, in the order they matter here:
//!
//! 1. **Cache residency.** Batches execute *shard-major*: every query of
//!    the batch runs against shard 0, then every query against shard 1, and
//!    so on. A shard's working set (feature rows + the chosen index's
//!    entries) is `1/S` of the monolith's, so the intermediate-interval
//!    gathers that dominate query time hit L2 instead of missing to DRAM.
//!    On a single core this is worth several× batch throughput at large
//!    `n`; with threads, shards scale near-linearly because they share
//!    nothing.
//! 2. **Locally adaptive planning.** Each shard selects its own best index
//!    and its own sibling intersection filters for the same query, so a
//!    heterogeneous shard (e.g. a pilot-key slab) can pick a different
//!    normal than the global optimum.
//! 3. **Fault isolation.** Quarantine-and-degrade (see `crate::health`)
//!    applies per shard: one shard with every index quarantined degrades
//!    *that shard* to its exact scan while the rest keep serving indexed.
//!
//! ## Partitioners
//!
//! * [`Partitioner::RoundRobin`] — `global_id mod S`. Keeps shards
//!   statistically identical; the right default for uniform data.
//! * [`Partitioner::PilotKeyRange`] — range partitioning on the *pilot
//!   key* `⟨pilot, x⟩` along the domain-octant diagonal, split at build
//!   time into `S` equal-frequency slabs. Queries whose normals resemble
//!   the pilot wholesale-accept or -reject entire slabs through each
//!   shard's own interval bounds.
//!
//! Placement is decided once, at insert time; updates never migrate a
//! point between shards (its global id is pinned), which keeps mutation
//! routing `O(1)` and answers exact regardless of drift.
//!
//! ## Id spaces
//!
//! Each shard numbers its points locally. The sharded set owns the mapping
//! in both directions: `assignment[global] = (shard, local)` and
//! `global_ids[shard][local] = global`. Because global ids only grow and
//! every insert appends to its shard, `global_ids[shard]` is always
//! strictly ascending — per-shard ascending id order concatenates into a
//! deterministic canonical order without a global sort.
//!
//! Top-k answers are produced by pushing the *global* `k` down to every
//! shard and k-way merging the per-shard lists on `(distance, global id)`
//! — see [`merge_top_k`]. Per-shard truncation at `k` is lossless: any
//! global top-k member ranks in the top k of its own shard.

use crate::domain::ParameterDomain;
use crate::health::ShardedHealthReport;
use crate::index::TopKStats;
use crate::multi::{IndexConfig, PlanarIndexSet, QueryOutcome, TopKOutcome};
use crate::parallel::{self, ExecutionConfig, QueryScratch};
use crate::query::{InequalityQuery, TopKQuery};
use crate::stats::{QueryStats, ServedBy, StatsAggregator};
use crate::store::{KeyStore, VecStore};
use crate::table::{FeatureTable, PointId};
use crate::{HeapSize, PlanarError, Result};

/// Sentinel local id for a global id whose row was dropped by a shard
/// compaction — such ids are permanently dead.
const DEAD_LOCAL: u32 = u32::MAX;

/// Sentinel shard for a WAL-replay gap placeholder: an id between the
/// high-water mark and a replayed insert whose own record lives on
/// another shard's log (or was lost to its torn tail). Distinct from any
/// real shard so a compaction-killed `(shard, DEAD_LOCAL)` slot is never
/// mistaken for a fillable gap during replay.
const GAP_SHARD: u32 = u32::MAX;

/// Which partitioner [`ShardedIndexSet::build`] should construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// `global_id mod S` — uniform, data-oblivious.
    RoundRobin,
    /// Equal-frequency range partitioning on the octant-diagonal pilot key.
    PilotKeyRange,
}

/// Shard-count and partitioning request for [`ShardedIndexSet::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards `S ≥ 1`.
    pub shards: usize,
    /// How rows are assigned to shards.
    pub scheme: PartitionScheme,
}

impl ShardConfig {
    /// Round-robin partitioning over `shards` shards.
    pub fn round_robin(shards: usize) -> Self {
        Self {
            shards,
            scheme: PartitionScheme::RoundRobin,
        }
    }

    /// Pilot-key range partitioning over `shards` shards.
    pub fn pilot_key_range(shards: usize) -> Self {
        Self {
            shards,
            scheme: PartitionScheme::PilotKeyRange,
        }
    }
}

/// A built partitioner: routes a `(global id, row)` to its shard.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioner {
    /// `global_id mod shards`.
    RoundRobin {
        /// Shard count.
        shards: usize,
    },
    /// Range partitioning on the raw-space pilot key `⟨pilot, row⟩`:
    /// shard `s` holds keys in `(splits[s-1], splits[s]]` (first shard
    /// unbounded below, last unbounded above).
    PilotKeyRange {
        /// Raw-space pilot direction (the domain octant's diagonal).
        pilot: Vec<f64>,
        /// `shards − 1` ascending split keys.
        splits: Vec<f64>,
    },
}

impl Partitioner {
    /// Number of shards this partitioner routes to.
    pub fn shards(&self) -> usize {
        match self {
            Partitioner::RoundRobin { shards } => *shards,
            Partitioner::PilotKeyRange { splits, .. } => splits.len() + 1,
        }
    }

    /// The shard the point with this global id and feature row belongs to.
    pub fn route(&self, id: PointId, row: &[f64]) -> usize {
        match self {
            Partitioner::RoundRobin { shards } => (id as usize) % shards,
            Partitioner::PilotKeyRange { pilot, splits } => {
                let key = planar_geom::dot_slices(pilot, row);
                splits.partition_point(|&s| s < key)
            }
        }
    }
}

/// Result of an inequality query against a [`ShardedIndexSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedQueryOutcome {
    /// Matching **global** ids, concatenated in canonical order: ascending
    /// shard, and within each shard that shard's interval order (the same
    /// unspecified-but-deterministic order [`QueryOutcome::matches`] has).
    /// Use [`Self::sorted_ids`] for ascending global ids.
    pub matches: Vec<PointId>,
    /// Per-shard execution statistics, indexed by shard.
    pub shard_stats: Vec<QueryStats>,
    /// Per-shard serving provenance, indexed by shard —
    /// [`ServedBy::Degraded`] entries pinpoint shards whose every index is
    /// quarantined.
    pub served_by: Vec<ServedBy>,
}

impl ShardedQueryOutcome {
    /// The matching global ids in ascending order.
    pub fn sorted_ids(&self) -> Vec<PointId> {
        let mut ids = self.matches.clone();
        ids.sort_unstable();
        ids
    }

    /// Per-shard stats merged into one logical query record (sums of all
    /// interval/verification counters; see [`QueryStats::merged`]).
    pub fn merged_stats(&self) -> QueryStats {
        QueryStats::merged(&self.shard_stats)
    }

    /// Shards that served this query degraded (exact scan because every
    /// local index is quarantined), ascending.
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.served_by
            .iter()
            .enumerate()
            .filter_map(|(s, sb)| sb.is_degraded().then_some(s))
            .collect()
    }

    /// Fold this outcome into an aggregator as **one** logical query.
    pub fn record(&self, agg: &mut StatsAggregator) {
        agg.add_sharded(&self.shard_stats);
    }
}

/// Result of a top-k query against a [`ShardedIndexSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedTopKOutcome {
    /// `(global id, distance)` pairs ascending by `(distance, id)`; at most
    /// `k` — identical to the unsharded [`TopKOutcome::neighbors`].
    pub neighbors: Vec<(PointId, f64)>,
    /// Per-shard execution statistics, indexed by shard.
    pub shard_stats: Vec<TopKStats>,
    /// Per-shard serving provenance, indexed by shard.
    pub served_by: Vec<ServedBy>,
}

impl ShardedTopKOutcome {
    /// Shards that served this query degraded, ascending.
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.served_by
            .iter()
            .enumerate()
            .filter_map(|(s, sb)| sb.is_degraded().then_some(s))
            .collect()
    }
}

/// Sharded analogue of `multi::stamp_partial_completed`: a batch slot is
/// partial when *any* shard's slot is a deadline placeholder (its answer is
/// missing that shard's matches), and `completed` counts the slots answered
/// in full by every shard. Returns the number of partial slots.
fn stamp_sharded_partial_completed<O>(
    results: &mut [Result<O>],
    mut served_by: impl FnMut(&mut O) -> &mut Vec<ServedBy>,
) -> usize {
    let mut skipped = 0usize;
    for r in results.iter_mut().flatten() {
        if served_by(r).iter().any(ServedBy::is_partial) {
            skipped += 1;
        }
    }
    if skipped == 0 {
        return 0;
    }
    let completed = results.len() - skipped;
    for r in results.iter_mut().flatten() {
        for sb in served_by(r).iter_mut() {
            if let ServedBy::Partial { completed: c, .. } = sb {
                *c = completed;
            }
        }
    }
    skipped
}

/// K-way merge of per-shard top-k lists on `(distance, id)`.
///
/// Each input list must be sorted ascending by `(distance, id)` — which
/// per-shard [`TopKOutcome::neighbors`] are, once remapped to global ids
/// (the local→global map is monotone). Returns the `k` globally smallest
/// pairs. `O((S + k)·log S)` with a cursor heap: the classic merge step of
/// a partitioned top-k (and the unit the `shard_merge` criterion bench
/// measures).
pub fn merge_top_k(per_shard: &[Vec<(PointId, f64)>], k: usize) -> Vec<(PointId, f64)> {
    // Cursor heap keyed by (dist, id); BinaryHeap is a max-heap, so wrap
    // the comparison reversed. Entries carry (shard, offset) cursors.
    struct Cursor {
        dist: f64,
        id: PointId,
        shard: usize,
        offset: usize,
    }
    impl PartialEq for Cursor {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == core::cmp::Ordering::Equal
        }
    }
    impl Eq for Cursor {}
    impl Ord for Cursor {
        fn cmp(&self, other: &Self) -> core::cmp::Ordering {
            // Reversed: the heap's max is the globally smallest (dist, id).
            other
                .dist
                .total_cmp(&self.dist)
                .then_with(|| other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Cursor {
        fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::with_capacity(per_shard.len());
    for (shard, list) in per_shard.iter().enumerate() {
        if let Some(&(id, dist)) = list.first() {
            heap.push(Cursor {
                dist,
                id,
                shard,
                offset: 0,
            });
        }
    }
    let mut out = Vec::with_capacity(k.min(per_shard.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(cur) = heap.pop() else { break };
        out.push((cur.id, cur.dist));
        if let Some(&(id, dist)) = per_shard[cur.shard].get(cur.offset + 1) {
            heap.push(Cursor {
                dist,
                id,
                shard: cur.shard,
                offset: cur.offset + 1,
            });
        }
    }
    out
}

/// A horizontally partitioned [`PlanarIndexSet`]: `S` shard-local index
/// sets behind one exact query interface. See the module docs for the
/// execution model; generic over the same key stores as the unsharded set.
#[derive(Debug, Clone)]
pub struct ShardedIndexSet<S: KeyStore = VecStore> {
    shards: Vec<PlanarIndexSet<S>>,
    partitioner: Partitioner,
    /// `assignment[global] = (shard, local)`; `local == DEAD_LOCAL` marks a
    /// global id dropped by shard compaction, and `(GAP_SHARD, DEAD_LOCAL)`
    /// a WAL-replay gap whose insert record lives on another shard's log.
    assignment: Vec<(u32, u32)>,
    /// `global_ids[shard][local] = global`, strictly ascending per shard.
    global_ids: Vec<Vec<PointId>>,
}

impl<S: KeyStore> ShardedIndexSet<S> {
    /// Partition `table` with `shard_config` and build one
    /// [`PlanarIndexSet`] per shard (each with the same `config`, hence the
    /// same sampled normals).
    ///
    /// # Errors
    ///
    /// [`PlanarError::InvalidBudget`] on zero shards or budget,
    /// [`PlanarError::DimensionMismatch`] when domain and table disagree,
    /// [`PlanarError::EmptyDataset`] when a shard would receive no rows
    /// (fewer rows than shards, or a degenerate pilot-key distribution) —
    /// use fewer shards.
    pub fn build(
        table: FeatureTable,
        domain: ParameterDomain,
        config: IndexConfig,
        shard_config: ShardConfig,
    ) -> Result<Self>
    where
        S: Send,
    {
        Self::build_with(
            table,
            domain,
            config,
            shard_config,
            &ExecutionConfig::serial(),
        )
    }

    /// [`Self::build`] with per-shard index construction on `exec` (each
    /// shard's budget of sorts is distributed over `exec.threads`; shards
    /// themselves build in order). Identical output for any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`Self::build`].
    pub fn build_with(
        table: FeatureTable,
        domain: ParameterDomain,
        config: IndexConfig,
        shard_config: ShardConfig,
        exec: &ExecutionConfig,
    ) -> Result<Self>
    where
        S: Send,
    {
        if shard_config.shards == 0 {
            return Err(PlanarError::InvalidBudget);
        }
        if domain.dim() != table.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: table.dim(),
                found: domain.dim(),
            });
        }
        let partitioner = Self::fit_partitioner(&table, &domain, shard_config);
        let s = shard_config.shards;
        let dim = table.dim();
        let n = table.len();
        let mut tables: Vec<FeatureTable> = (0..s)
            .map(|_| FeatureTable::with_capacity(dim, n / s + 1))
            .collect::<Result<_>>()?;
        let mut assignment = Vec::with_capacity(n);
        let mut global_ids: Vec<Vec<PointId>> = vec![Vec::with_capacity(n / s + 1); s];
        for (id, row) in table.iter() {
            let shard = partitioner.route(id, row);
            let local = tables[shard].push_row(row)?;
            assignment.push((shard as u32, local));
            global_ids[shard].push(id);
        }
        if tables.iter().any(|t| t.is_empty()) {
            return Err(PlanarError::EmptyDataset);
        }
        let shards = tables
            .into_iter()
            .enumerate()
            .map(|(shard, t)| {
                // Per-shard seed: each shard samples its own candidate
                // normals, so selection can specialize to the shard's key
                // range. Total index memory is unchanged (budget × n
                // entries either way), but the ensemble of normals across
                // shards is `shards ×` richer than one shared sample.
                let seeded = config
                    .clone()
                    .seed(config.seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                PlanarIndexSet::build_with(t, domain.clone(), seeded, exec)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            partitioner,
            assignment,
            global_ids,
        })
    }

    /// The octant-diagonal pilot and its equal-frequency split keys.
    fn fit_partitioner(
        table: &FeatureTable,
        domain: &ParameterDomain,
        shard_config: ShardConfig,
    ) -> Partitioner {
        match shard_config.scheme {
            PartitionScheme::RoundRobin => Partitioner::RoundRobin {
                shards: shard_config.shards,
            },
            PartitionScheme::PilotKeyRange => {
                let octant = domain.octant();
                let pilot: Vec<f64> = (0..table.dim()).map(|i| octant.sign_f64(i)).collect();
                let mut keys: Vec<f64> = table
                    .iter()
                    .map(|(_, row)| planar_geom::dot_slices(&pilot, row))
                    .collect();
                keys.sort_unstable_by(f64::total_cmp);
                let s = shard_config.shards;
                let splits = (1..s)
                    .map(|j| {
                        let rank = (j * keys.len() / s).min(keys.len().saturating_sub(1));
                        keys.get(rank).copied().unwrap_or(0.0)
                    })
                    .collect();
                Partitioner::PilotKeyRange { pilot, splits }
            }
        }
    }

    /// Reassemble from persisted parts (see `crate::persist`): the shard
    /// sets, the partitioner, and the global→(shard, local) assignment.
    /// Validates that the assignment is consistent with the shards: local
    /// ids are dense and ascending per shard and match each shard's table
    /// length.
    pub(crate) fn assemble_shards(
        shards: Vec<PlanarIndexSet<S>>,
        partitioner: Partitioner,
        assignment: Vec<(u32, u32)>,
    ) -> Result<Self> {
        if shards.is_empty() || partitioner.shards() != shards.len() {
            return Err(PlanarError::Persist(
                "shard count disagrees with partitioner".into(),
            ));
        }
        let mut global_ids: Vec<Vec<PointId>> = shards
            .iter()
            .map(|sh| Vec::with_capacity(sh.table().len()))
            .collect();
        for (global, &(shard, local)) in assignment.iter().enumerate() {
            if shard == GAP_SHARD && local == DEAD_LOCAL {
                // WAL-replay gap placeholder (see `replay_insert`);
                // belongs to no shard.
                continue;
            }
            let Some(gids) = global_ids.get_mut(shard as usize) else {
                return Err(PlanarError::Persist(format!(
                    "global id {global} routed to unknown shard {shard}"
                )));
            };
            if local == DEAD_LOCAL {
                continue;
            }
            if local as usize != gids.len() {
                return Err(PlanarError::Persist(format!(
                    "global id {global}: local id {local} is not dense in shard {shard}"
                )));
            }
            gids.push(global as PointId);
        }
        for (shard, (sh, gids)) in shards.iter().zip(&global_ids).enumerate() {
            if sh.table().len() != gids.len() {
                return Err(PlanarError::Persist(format!(
                    "shard {shard} holds {} rows but the assignment routes {}",
                    sh.table().len(),
                    gids.len()
                )));
            }
        }
        Ok(Self {
            shards,
            partitioner,
            assignment,
            global_ids,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrow the shard at `pos` (diagnostics, benches).
    pub fn shard(&self, pos: usize) -> Option<&PlanarIndexSet<S>> {
        self.shards.get(pos)
    }

    /// The partitioner routing mutations.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Quantization policies per shard, ascending by shard position. The
    /// autotuner runs independently per shard (each sees its own slice of
    /// the workload), so tiers can legitimately differ.
    pub fn quant_policies(&self) -> Vec<crate::quant::QuantPolicy> {
        self.shards.iter().map(|s| s.quant_policy()).collect()
    }

    /// Install one quantization policy on every shard (see
    /// [`PlanarIndexSet::set_quant_policy`]). Subsequent compactions may
    /// retune each shard independently.
    pub fn set_quant_policy(&mut self, policy: crate::quant::QuantPolicy) {
        for shard in &mut self.shards {
            shard.set_quant_policy(policy);
        }
    }

    /// Re-evaluate every shard's quantization policy from its observed
    /// workload. Returns the policy now active on each shard.
    pub fn retune_quantization(
        &mut self,
        cfg: &crate::quant::QuantAutotuneConfig,
    ) -> Vec<crate::quant::QuantPolicy> {
        self.shards
            .iter_mut()
            .map(|s| s.retune_quantization(cfg))
            .collect()
    }

    /// Adopt another instance's per-shard tuner windows (see
    /// [`PlanarIndexSet::adopt_quant_window`]). Shard counts always match:
    /// the concurrent wrappers only pair a staged set with its own
    /// published clone.
    pub fn adopt_quant_window(&self, other: &Self) {
        for (mine, theirs) in self.shards.iter().zip(&other.shards) {
            mine.adopt_quant_window(theirs);
        }
    }

    /// The global→(shard, local) assignment (persistence support).
    pub(crate) fn assignment(&self) -> &[(u32, u32)] {
        &self.assignment
    }

    /// Number of live points across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(PlanarIndexSet::len).sum()
    }

    /// True when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality `d'`.
    pub fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    /// Heap bytes owned by all shards plus the id maps.
    pub fn memory_usage(&self) -> usize {
        self.shards
            .iter()
            .map(PlanarIndexSet::memory_usage)
            .sum::<usize>()
            + self.assignment.heap_size()
            + self
                .global_ids
                .iter()
                .map(HeapSize::heap_size)
                .sum::<usize>()
    }

    /// Is the point with this **global** id present and not tombstoned?
    pub fn is_live(&self, id: PointId) -> bool {
        self.slot(id)
            .map(|(shard, local)| self.shards[shard].is_live(local))
            .unwrap_or(false)
    }

    fn slot(&self, id: PointId) -> Option<(usize, u32)> {
        let &(shard, local) = self.assignment.get(id as usize)?;
        (local != DEAD_LOCAL).then_some((shard as usize, local))
    }

    fn live_slot(&self, id: PointId) -> Result<(usize, u32)> {
        match self.slot(id) {
            Some((shard, local)) if self.shards[shard].is_live(local) => Ok((shard, local)),
            _ => Err(PlanarError::PointNotFound(id)),
        }
    }

    /// The shard serving this live **global** id, or `None` for unknown
    /// or deleted ids. Used by the durable wrapper (`crate::wal`) to route
    /// update/delete records to the owning shard's log.
    pub fn shard_of(&self, id: PointId) -> Option<usize> {
        self.live_slot(id).ok().map(|(shard, _)| shard)
    }

    /// The global id the next insert will be assigned.
    pub(crate) fn next_global(&self) -> PointId {
        self.assignment.len() as PointId
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Answer an inequality query serially. See [`Self::query_with`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn query(&self, q: &InequalityQuery) -> Result<ShardedQueryOutcome> {
        self.query_with(q, &ExecutionConfig::serial(), &mut QueryScratch::new())
    }

    /// Answer an inequality query: every shard evaluates it (in shard order
    /// when serial; fanned out over `exec.threads` workers otherwise) and
    /// the id-remapped matches are concatenated in canonical order. Matches
    /// as a *set* equal the unsharded set's for the same data.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn query_with(
        &self,
        q: &InequalityQuery,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> Result<ShardedQueryOutcome> {
        let (_, inner) = parallel::shard_plan(exec, self.shards.len());
        let per_shard = self
            .shards
            .iter()
            .map(|sh| sh.query_with(q, &inner, scratch))
            .collect::<Result<Vec<_>>>()?;
        Ok(self.assemble_query(per_shard))
    }

    /// Answer a batch of inequality queries **shard-major**: each worker
    /// takes whole shards and runs the full batch against them before
    /// moving on, keeping the shard's rows and entries cache-resident
    /// across the batch. Output `i` is deterministic (identical for every
    /// thread count) and equals `query(&qs[i])` as a set of ids.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] if any query's dimensionality
    /// differs (checked up front; no partial results);
    /// [`PlanarError::Internal`] if any query panicked in any shard.
    pub fn query_batch(
        &self,
        qs: &[InequalityQuery],
        exec: &ExecutionConfig,
    ) -> Result<Vec<ShardedQueryOutcome>>
    where
        S: Sync,
    {
        self.query_batch_isolated(qs, exec).into_iter().collect()
    }

    /// [`Self::query_batch`] with per-query fault isolation: slot `i` holds
    /// query `i`'s outcome or its own typed error while the rest of the
    /// batch still completes.
    pub fn query_batch_isolated(
        &self,
        qs: &[InequalityQuery],
        exec: &ExecutionConfig,
    ) -> Vec<Result<ShardedQueryOutcome>>
    where
        S: Sync,
    {
        // One deadline budget spans the whole sharded batch: every shard
        // polls the same guard, so shard 3 sees time spent on shard 0.
        let guard = parallel::DeadlineGuard::new(exec.deadline);
        let per_shard: Vec<Vec<Result<QueryOutcome>>> = self.fan_out_batch(exec, |shard, inner| {
            shard.query_batch_isolated_with_guard(qs, inner, &guard)
        });
        let mut results: Vec<Result<ShardedQueryOutcome>> = (0..qs.len())
            .map(|i| {
                let row: Vec<QueryOutcome> = per_shard
                    .iter()
                    .map(|outs| outs[i].clone())
                    .collect::<Result<_>>()?;
                Ok(self.assemble_query(row))
            })
            .collect();
        let skipped = stamp_sharded_partial_completed(&mut results, |o| &mut o.served_by);
        parallel::record_deadline_events(skipped as u64);
        results
    }

    /// Answer a top-k query serially. See [`Self::top_k_with`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn top_k(&self, q: &TopKQuery) -> Result<ShardedTopKOutcome> {
        self.top_k_with(q, &ExecutionConfig::serial(), &mut QueryScratch::new())
    }

    /// Answer a top-k query: the global `k` is pushed down to every shard
    /// (each answers its local top-k with the same bound) and the id-
    /// remapped per-shard lists are k-way merged on `(distance, global
    /// id)` — identical neighbors to the unsharded set.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn top_k_with(
        &self,
        q: &TopKQuery,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> Result<ShardedTopKOutcome> {
        let (_, inner) = parallel::shard_plan(exec, self.shards.len());
        let per_shard = self
            .shards
            .iter()
            .map(|sh| sh.top_k_with(q, &inner, scratch))
            .collect::<Result<Vec<_>>>()?;
        Ok(self.assemble_top_k(q.k, per_shard))
    }

    /// Answer a batch of top-k queries shard-major (see
    /// [`Self::query_batch`]) with per-shard k pushdown and k-way merges.
    ///
    /// # Errors
    ///
    /// Same as [`Self::query_batch`].
    pub fn top_k_batch(
        &self,
        qs: &[TopKQuery],
        exec: &ExecutionConfig,
    ) -> Result<Vec<ShardedTopKOutcome>>
    where
        S: Sync,
    {
        self.top_k_batch_isolated(qs, exec).into_iter().collect()
    }

    /// [`Self::top_k_batch`] with per-query fault isolation.
    pub fn top_k_batch_isolated(
        &self,
        qs: &[TopKQuery],
        exec: &ExecutionConfig,
    ) -> Vec<Result<ShardedTopKOutcome>>
    where
        S: Sync,
    {
        let guard = parallel::DeadlineGuard::new(exec.deadline);
        let per_shard: Vec<Vec<Result<TopKOutcome>>> = self.fan_out_batch(exec, |shard, inner| {
            shard.top_k_batch_isolated_with_guard(qs, inner, &guard)
        });
        let mut results: Vec<Result<ShardedTopKOutcome>> = (0..qs.len())
            .map(|i| {
                let row: Vec<TopKOutcome> = per_shard
                    .iter()
                    .map(|outs| outs[i].clone())
                    .collect::<Result<_>>()?;
                Ok(self.assemble_top_k(qs[i].k, row))
            })
            .collect();
        let skipped = stamp_sharded_partial_completed(&mut results, |o| &mut o.served_by);
        parallel::record_deadline_events(skipped as u64);
        results
    }

    /// Run `f` once per shard — serially in shard order, or fanned out over
    /// the shard-level workers of `parallel::shard_plan` — and return the
    /// per-shard results in shard order regardless of thread count.
    fn fan_out_batch<R, F>(&self, exec: &ExecutionConfig, f: F) -> Vec<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&PlanarIndexSet<S>, &ExecutionConfig) -> R + Sync,
    {
        let (workers, inner) = parallel::shard_plan(exec, self.shards.len());
        if workers <= 1 {
            return self.shards.iter().map(|sh| f(sh, &inner)).collect();
        }
        let shard_refs: Vec<&PlanarIndexSet<S>> = self.shards.iter().collect();
        parallel::map_chunks(&shard_refs, workers, |chunk| {
            chunk.iter().map(|sh| f(sh, &inner)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    fn assemble_query(&self, per_shard: Vec<QueryOutcome>) -> ShardedQueryOutcome {
        let total: usize = per_shard.iter().map(|o| o.matches.len()).sum();
        let mut matches = Vec::with_capacity(total);
        let mut shard_stats = Vec::with_capacity(per_shard.len());
        let mut served_by = Vec::with_capacity(per_shard.len());
        for (shard, out) in per_shard.into_iter().enumerate() {
            let gids = &self.global_ids[shard];
            matches.extend(out.matches.iter().map(|&local| gids[local as usize]));
            shard_stats.push(out.stats);
            served_by.push(out.served_by);
        }
        ShardedQueryOutcome {
            matches,
            shard_stats,
            served_by,
        }
    }

    fn assemble_top_k(&self, k: usize, per_shard: Vec<TopKOutcome>) -> ShardedTopKOutcome {
        let mut lists = Vec::with_capacity(per_shard.len());
        let mut shard_stats = Vec::with_capacity(per_shard.len());
        let mut served_by = Vec::with_capacity(per_shard.len());
        for (shard, out) in per_shard.into_iter().enumerate() {
            let gids = &self.global_ids[shard];
            lists.push(
                out.neighbors
                    .iter()
                    .map(|&(local, dist)| (gids[local as usize], dist))
                    .collect::<Vec<_>>(),
            );
            shard_stats.push(out.stats);
            served_by.push(out.served_by);
        }
        ShardedTopKOutcome {
            neighbors: merge_top_k(&lists, k),
            shard_stats,
            served_by,
        }
    }

    // ------------------------------------------------------------------
    // Mutations (routed through the partitioner)
    // ------------------------------------------------------------------

    /// Insert a new point; its shard is chosen by the partitioner and its
    /// **global** id is returned. Placement is permanent (see module docs).
    ///
    /// # Errors
    ///
    /// Table validation errors (arity, NaN).
    pub fn insert_point(&mut self, row: &[f64]) -> Result<PointId> {
        if row.len() != self.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: self.dim(),
                found: row.len(),
            });
        }
        let global = self.assignment.len() as PointId;
        let shard = self.partitioner.route(global, row);
        let local = self.shards[shard].insert_point(row)?;
        self.assignment.push((shard as u32, local));
        self.global_ids[shard].push(global);
        Ok(global)
    }

    /// Update the point with this **global** id in place. The point stays
    /// on its shard even if its pilot key moved across a range boundary —
    /// answers remain exact; rebalance by rebuilding if drift accumulates.
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] for unknown/deleted ids, plus table
    /// validation errors.
    pub fn update_point(&mut self, id: PointId, row: &[f64]) -> Result<()> {
        let (shard, local) = self.live_slot(id)?;
        self.shards[shard]
            .update_point(local, row)
            .map_err(|e| Self::reglobalize(e, id))
    }

    /// Delete the point with this **global** id (tombstoned on its shard).
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] for unknown or already-deleted ids.
    pub fn delete_point(&mut self, id: PointId) -> Result<()> {
        let (shard, local) = self.live_slot(id)?;
        self.shards[shard]
            .delete_point(local)
            .map_err(|e| Self::reglobalize(e, id))
    }

    /// Shard errors carry local ids; rewrite them to the caller's global id.
    fn reglobalize(e: PlanarError, global: PointId) -> PlanarError {
        match e {
            PlanarError::PointNotFound(_) => PlanarError::PointNotFound(global),
            other => other,
        }
    }

    /// Compact every shard whose tombstone fraction exceeds `threshold`
    /// (see [`PlanarIndexSet::compact_if`]) and repair the id maps. Global
    /// ids are stable across compaction — only shard-local ids shift — so
    /// callers never observe a change. Returns the shards compacted,
    /// ascending.
    pub fn compact(&mut self, threshold: f64) -> Vec<usize> {
        let mut compacted = Vec::new();
        for shard in 0..self.shards.len() {
            if self.compact_shard(shard, threshold) {
                compacted.push(shard);
            }
        }
        compacted
    }

    /// Compact one shard (when its tombstone fraction exceeds
    /// `threshold`) and repair its slice of the id maps. Shard-local by
    /// construction, which is what lets WAL replay apply a broadcast
    /// `Compact` record per shard stream (see `crate::wal`).
    pub(crate) fn compact_shard(&mut self, shard: usize, threshold: f64) -> bool {
        let Some(remap) = self.shards[shard].compact_if(threshold) else {
            return false;
        };
        let old_gids = std::mem::take(&mut self.global_ids[shard]);
        let mut new_gids = vec![0 as PointId; self.shards[shard].table().len()];
        for (old_local, gid) in old_gids.into_iter().enumerate() {
            match remap[old_local] {
                Some(new_local) => {
                    new_gids[new_local as usize] = gid;
                    self.assignment[gid as usize].1 = new_local;
                }
                None => self.assignment[gid as usize].1 = DEAD_LOCAL,
            }
        }
        self.global_ids[shard] = new_gids;
        true
    }

    // ------------------------------------------------------------------
    // WAL replay (see `crate::wal`)
    // ------------------------------------------------------------------

    /// Apply one replayed WAL record from `shard`'s log. `Insert` records
    /// carry the global id assigned at log time: ids lost to another
    /// shard's torn tail leave tombstoned gaps in the assignment, so each
    /// shard's stream replays independently of cross-shard interleaving.
    pub(crate) fn replay_record(
        &mut self,
        shard: usize,
        lsn: u64,
        rec: &crate::wal::WalRecord,
    ) -> Result<()> {
        use crate::wal::WalRecord;
        match rec {
            WalRecord::Insert { id, row } => self.replay_insert(shard, *id, row, lsn),
            WalRecord::Update { id, row } => self.update_point(*id, row),
            WalRecord::Delete { id } => self.delete_point(*id),
            WalRecord::Compact { threshold } => {
                // `None` (unconditional) never occurs in sharded logs, but
                // a negative threshold makes `compact_if` unconditional.
                self.compact_shard(shard, threshold.unwrap_or(-1.0));
                Ok(())
            }
            WalRecord::Checkpoint { .. } => Ok(()),
        }
    }

    fn replay_insert(
        &mut self,
        shard: usize,
        global: PointId,
        row: &[f64],
        lsn: u64,
    ) -> Result<()> {
        if let Some(&(s, local)) = self.assignment.get(global as usize) {
            // Shards replay one after another, so an earlier shard's
            // replay may already have grown the assignment past this id,
            // leaving a gap placeholder for it. This record is the
            // authoritative owner of the id — fill the slot. Anything
            // else — a live slot, or a compaction-killed one — means two
            // logs claim the same id: real divergence.
            if s != GAP_SHARD || local != DEAD_LOCAL {
                return Err(PlanarError::Persist(format!(
                    "wal: replay diverged at lsn {lsn}: insert id {global} already assigned"
                )));
            }
            let local = self.shards[shard].insert_point(row)?;
            self.assignment[global as usize] = (shard as u32, local);
            self.global_ids[shard].push(global);
            return Ok(());
        }
        // Ids between the high-water mark and this insert belong to
        // records on other shards (replayed later) or lost to their torn
        // tails; leave dead placeholders for them.
        while self.assignment.len() < global as usize {
            self.assignment.push((GAP_SHARD, DEAD_LOCAL));
        }
        let local = self.shards[shard].insert_point(row)?;
        self.assignment.push((shard as u32, local));
        self.global_ids[shard].push(global);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Health: per-shard quarantine and degrade
    // ------------------------------------------------------------------

    /// Run every shard's index self-check (see
    /// [`PlanarIndexSet::verify_all`]) without changing any state.
    pub fn verify_all(&self, key_samples: usize) -> ShardedHealthReport {
        ShardedHealthReport {
            shards: self
                .shards
                .iter()
                .map(|sh| sh.verify_all(key_samples))
                .collect(),
        }
    }

    /// [`Self::verify_all`], then quarantine every failing index on its
    /// shard. A shard with every index quarantined keeps answering exactly
    /// via its scan path ([`ServedBy::Degraded`] in that shard's slot).
    pub fn verify_and_quarantine(&mut self, key_samples: usize) -> ShardedHealthReport {
        ShardedHealthReport {
            shards: self
                .shards
                .iter_mut()
                .map(|sh| sh.verify_and_quarantine(key_samples))
                .collect(),
        }
    }

    /// Quarantine one index on one shard (out-of-range pairs are ignored).
    pub fn quarantine(&mut self, shard: usize, pos: usize) {
        if let Some(sh) = self.shards.get_mut(shard) {
            sh.quarantine(pos);
        }
    }

    /// `(shard, quarantined index positions)` for every shard with at
    /// least one quarantined index, ascending.
    pub fn quarantined_positions(&self) -> Vec<(usize, Vec<usize>)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, sh)| {
                let q = sh.quarantined_positions();
                (!q.is_empty()).then_some((s, q))
            })
            .collect()
    }

    /// Rebuild every quarantined index on every shard from its shard table
    /// and clear the flags. Returns `(shard, rebuilt positions)` for every
    /// shard that had work, ascending.
    pub fn rebuild_quarantined(&mut self) -> Vec<(usize, Vec<usize>)> {
        self.shards
            .iter_mut()
            .enumerate()
            .filter_map(|(s, sh)| {
                let rebuilt = sh.rebuild_quarantined();
                (!rebuilt.is_empty()).then_some((s, rebuilt))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cmp;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_table(n: usize, seed: u64) -> FeatureTable {
        let mut rng = StdRng::seed_from_u64(seed);
        FeatureTable::from_rows(
            2,
            (0..n)
                .map(|_| vec![rng.random_range(1.0..100.0), rng.random_range(1.0..100.0)])
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn pair(
        n: usize,
        shard_config: ShardConfig,
    ) -> (PlanarIndexSet<VecStore>, ShardedIndexSet<VecStore>) {
        let table = random_table(n, 7);
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 3.0).unwrap();
        let cfg = IndexConfig::with_budget(4);
        let unsharded = PlanarIndexSet::build(table.clone(), domain.clone(), cfg.clone()).unwrap();
        let sharded = ShardedIndexSet::build(table, domain, cfg, shard_config).unwrap();
        (unsharded, sharded)
    }

    #[test]
    fn partitioners_route_deterministically() {
        let rr = Partitioner::RoundRobin { shards: 3 };
        assert_eq!(rr.shards(), 3);
        assert_eq!(rr.route(0, &[1.0]), 0);
        assert_eq!(rr.route(4, &[1.0]), 1);
        let range = Partitioner::PilotKeyRange {
            pilot: vec![1.0, 1.0],
            splits: vec![10.0, 20.0],
        };
        assert_eq!(range.shards(), 3);
        assert_eq!(range.route(0, &[1.0, 2.0]), 0);
        assert_eq!(range.route(0, &[5.0, 5.0]), 0); // key 10: boundary keys stay left
        assert_eq!(range.route(0, &[5.0, 6.0]), 1);
        assert_eq!(range.route(0, &[50.0, 50.0]), 2);
    }

    #[test]
    fn sharded_matches_unsharded_for_both_partitioners() {
        for sc in [ShardConfig::round_robin(3), ShardConfig::pilot_key_range(3)] {
            let (unsharded, sharded) = pair(300, sc);
            for (a, b) in [(vec![1.0, 1.0], 90.0), (vec![2.5, 0.6], 120.0)] {
                for cmp in [Cmp::Leq, Cmp::Geq] {
                    let q = InequalityQuery::new(a.clone(), cmp, b).unwrap();
                    let want = unsharded.query(&q).unwrap();
                    let got = sharded.query(&q).unwrap();
                    assert_eq!(got.sorted_ids(), want.sorted_ids(), "{sc:?} {cmp:?}");
                    assert_eq!(got.shard_stats.len(), 3);
                    assert_eq!(
                        got.merged_stats().matched,
                        want.stats.matched,
                        "merged matched count"
                    );

                    let tq = TopKQuery::new(q, 9).unwrap();
                    let want_tk = unsharded.top_k(&tq).unwrap();
                    let got_tk = sharded.top_k(&tq).unwrap();
                    assert_eq!(got_tk.neighbors, want_tk.neighbors, "{sc:?} {cmp:?}");
                }
            }
        }
    }

    #[test]
    fn batches_equal_single_queries_for_any_thread_count() {
        let (_, sharded) = pair(240, ShardConfig::pilot_key_range(4));
        let qs: Vec<InequalityQuery> = (0..6)
            .map(|i| {
                InequalityQuery::leq(vec![1.0 + i as f64 * 0.3, 1.1], 60.0 + i as f64).unwrap()
            })
            .collect();
        let want: Vec<ShardedQueryOutcome> = qs.iter().map(|q| sharded.query(q).unwrap()).collect();
        for threads in [1, 2, 5] {
            let exec = ExecutionConfig::with_threads(threads);
            let got = sharded.query_batch(&qs, &exec).unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
        let tqs: Vec<TopKQuery> = qs
            .iter()
            .map(|q| TopKQuery::new(q.clone(), 5).unwrap())
            .collect();
        let want_tk: Vec<ShardedTopKOutcome> =
            tqs.iter().map(|q| sharded.top_k(q).unwrap()).collect();
        for threads in [1, 2, 5] {
            let exec = ExecutionConfig::with_threads(threads);
            let got = sharded.top_k_batch(&tqs, &exec).unwrap();
            assert_eq!(got, want_tk, "threads={threads}");
        }
    }

    #[test]
    fn merge_top_k_merges_and_tiebreaks_on_id() {
        let a = vec![(0, 1.0), (2, 3.0), (4, 3.0)];
        let b = vec![(1, 1.0), (3, 3.0)];
        assert_eq!(
            merge_top_k(&[a.clone(), b.clone()], 4),
            vec![(0, 1.0), (1, 1.0), (2, 3.0), (3, 3.0)]
        );
        assert_eq!(merge_top_k(&[a, b], 10).len(), 5);
        assert!(merge_top_k(&[Vec::new(), Vec::new()], 3).is_empty());
    }

    #[test]
    fn mutations_route_and_preserve_equivalence() {
        let sc = ShardConfig::pilot_key_range(3);
        let (mut unsharded, mut sharded) = pair(90, sc);
        // Interleave inserts (ids stay aligned because both sets number
        // points in insertion order), updates and deletes.
        let mut rng = StdRng::seed_from_u64(5);
        for step in 0..60u32 {
            match step % 4 {
                0 | 1 => {
                    let row = vec![rng.random_range(1.0..100.0), rng.random_range(1.0..100.0)];
                    let a = unsharded.insert_point(&row).unwrap();
                    let b = sharded.insert_point(&row).unwrap();
                    assert_eq!(a, b, "global id alignment");
                }
                2 => {
                    let id = rng.random_range(0..unsharded.table().len() as u32);
                    let row = vec![rng.random_range(1.0..100.0), rng.random_range(1.0..100.0)];
                    assert_eq!(
                        unsharded.update_point(id, &row).is_ok(),
                        sharded.update_point(id, &row).is_ok()
                    );
                }
                _ => {
                    let id = rng.random_range(0..unsharded.table().len() as u32);
                    assert_eq!(
                        unsharded.delete_point(id).is_ok(),
                        sharded.delete_point(id).is_ok()
                    );
                }
            }
        }
        assert_eq!(unsharded.len(), sharded.len());
        let q = InequalityQuery::leq(vec![1.0, 2.0], 150.0).unwrap();
        assert_eq!(
            sharded.query(&q).unwrap().sorted_ids(),
            unsharded.query(&q).unwrap().sorted_ids()
        );
        let tq = TopKQuery::new(q, 12).unwrap();
        assert_eq!(
            sharded.top_k(&tq).unwrap().neighbors,
            unsharded.top_k(&tq).unwrap().neighbors
        );
        // Deleted ids report the *global* id in errors.
        let dead = (0..unsharded.table().len() as u32)
            .find(|&id| !unsharded.is_live(id))
            .expect("at least one delete happened");
        assert_eq!(
            sharded.delete_point(dead).unwrap_err(),
            PlanarError::PointNotFound(dead)
        );
    }

    #[test]
    fn compaction_keeps_global_ids_stable() {
        let sc = ShardConfig::round_robin(2);
        let (mut unsharded, mut sharded) = pair(40, sc);
        for id in (0..30u32).step_by(2) {
            unsharded.delete_point(id).unwrap();
            sharded.delete_point(id).unwrap();
        }
        let compacted = sharded.compact(0.2);
        assert!(!compacted.is_empty(), "threshold 0.2 must trigger");
        let q = InequalityQuery::geq(vec![1.0, 1.0], 0.0).unwrap();
        assert_eq!(
            sharded.query(&q).unwrap().sorted_ids(),
            unsharded.query(&q).unwrap().sorted_ids()
        );
        // Dead globals stay dead; live globals still mutate.
        assert!(!sharded.is_live(0));
        assert_eq!(
            sharded.delete_point(0).unwrap_err(),
            PlanarError::PointNotFound(0)
        );
        assert!(sharded.is_live(1));
        sharded.update_point(1, &[2.0, 2.0]).unwrap();
        unsharded.update_point(1, &[2.0, 2.0]).unwrap();
        assert_eq!(
            sharded.query(&q).unwrap().sorted_ids(),
            unsharded.query(&q).unwrap().sorted_ids()
        );
        // Inserts after compaction keep the per-shard maps monotone.
        let a = unsharded.insert_point(&[3.0, 3.0]).unwrap();
        let b = sharded.insert_point(&[3.0, 3.0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            sharded.query(&q).unwrap().sorted_ids(),
            unsharded.query(&q).unwrap().sorted_ids()
        );
    }

    #[test]
    fn per_shard_quarantine_degrades_only_that_shard() {
        let (unsharded, mut sharded) = pair(120, ShardConfig::round_robin(3));
        for pos in 0..sharded.shard(1).unwrap().num_indices() {
            sharded.quarantine(1, pos);
        }
        assert_eq!(sharded.quarantined_positions().len(), 1);
        let q = InequalityQuery::leq(vec![1.0, 1.0], 80.0).unwrap();
        let out = sharded.query(&q).unwrap();
        assert_eq!(out.degraded_shards(), vec![1]);
        assert!(matches!(out.served_by[0], ServedBy::Index(_)));
        assert_eq!(
            out.sorted_ids(),
            unsharded.query(&q).unwrap().sorted_ids(),
            "degraded shard still answers exactly"
        );
        let mut agg = StatsAggregator::new();
        out.record(&mut agg);
        assert_eq!(agg.count(), 1);
        assert_eq!(agg.scan_fallback_count(), 0, "one indexed shard suffices");

        let rebuilt = sharded.rebuild_quarantined();
        assert_eq!(rebuilt.len(), 1);
        assert_eq!(rebuilt[0].0, 1);
        assert!(sharded.verify_all(usize::MAX).healthy());
        assert!(sharded.query(&q).unwrap().degraded_shards().is_empty());
    }

    #[test]
    fn build_rejects_empty_shards_and_zero_counts() {
        let table = random_table(3, 1);
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 3.0).unwrap();
        let cfg = IndexConfig::with_budget(2);
        assert_eq!(
            ShardedIndexSet::<VecStore>::build(
                table.clone(),
                domain.clone(),
                cfg.clone(),
                ShardConfig::round_robin(0),
            )
            .unwrap_err(),
            PlanarError::InvalidBudget
        );
        assert_eq!(
            ShardedIndexSet::<VecStore>::build(table, domain, cfg, ShardConfig::round_robin(5),)
                .unwrap_err(),
            PlanarError::EmptyDataset
        );
    }

    #[test]
    fn isolated_batch_surfaces_poisoned_query_per_slot() {
        let (_, sharded) = pair(60, ShardConfig::round_robin(2));
        let poison_b = 77.125_001_5;
        let qs = vec![
            InequalityQuery::leq(vec![1.0, 1.0], 50.0).unwrap(),
            InequalityQuery::leq(vec![1.0, 1.0], poison_b).unwrap(),
            InequalityQuery::leq(vec![1.0, 1.0], 90.0).unwrap(),
        ];
        crate::fault::arm_query_panic(poison_b);
        let results = sharded.query_batch_isolated(&qs, &ExecutionConfig::serial());
        crate::fault::disarm_query_panic();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(PlanarError::Internal(_))));
        assert!(results[2].is_ok());
    }

    #[test]
    fn replay_insert_rejects_compaction_killed_ids() {
        let (_, mut sharded) = pair(30, ShardConfig::round_robin(3));
        // Kill a shard-0 global id via delete + compaction: its slot
        // becomes (0, DEAD_LOCAL), which must stay distinct from a
        // replay gap placeholder.
        let victim = 0u32; // round-robin: global 0 lives on shard 0
        sharded.delete_point(victim).unwrap();
        assert!(sharded.compact_shard(0, 0.0));
        assert_eq!(sharded.assignment[victim as usize], (0, DEAD_LOCAL));
        let err = sharded
            .replay_record(
                0,
                1,
                &crate::wal::WalRecord::Insert {
                    id: victim,
                    row: vec![1.0, 1.0],
                },
            )
            .unwrap_err()
            .to_string();
        assert!(err.contains("replay diverged"), "got: {err}");
    }

    #[test]
    fn persisted_assignment_keeps_replay_gaps() {
        let (_, mut sharded) = pair(30, ShardConfig::round_robin(3));
        let next = sharded.next_global();
        // Replay an insert whose predecessor's record was lost to another
        // shard's torn tail: a gap placeholder fills the hole.
        sharded
            .replay_record(
                1,
                1,
                &crate::wal::WalRecord::Insert {
                    id: next + 1,
                    row: vec![2.0, 2.0],
                },
            )
            .unwrap();
        assert_eq!(sharded.assignment[next as usize], (GAP_SHARD, DEAD_LOCAL));
        assert!(sharded.is_live(next + 1));

        // The gap survives a snapshot round-trip untouched.
        let tmp = crate::fault::TempDir::new("shard_gap_persist").unwrap();
        let path = tmp.file("snap.plnr");
        sharded.save_to(&path).unwrap();
        let (loaded, _) = ShardedIndexSet::<VecStore>::load_or_recover(&path).unwrap();
        assert_eq!(loaded.assignment[next as usize], (GAP_SHARD, DEAD_LOCAL));
        assert!(!loaded.is_live(next));
        assert!(loaded.is_live(next + 1));
        assert_eq!(loaded.next_global(), next + 2);
    }

    #[test]
    fn deadline_spans_the_whole_sharded_batch() {
        use std::time::Duration;
        let (_, sharded) = pair(90, ShardConfig::round_robin(3));
        let qs: Vec<InequalityQuery> = [40.0, 80.0, 120.0]
            .iter()
            .map(|&b| InequalityQuery::leq(vec![1.0, 1.0], b).unwrap())
            .collect();
        let exec = ExecutionConfig::serial().with_deadline(Duration::ZERO);
        let outs = sharded.query_batch(&qs, &exec).unwrap();
        for out in &outs {
            assert!(out.matches.is_empty());
            // Every shard slot is a placeholder stamped with the batch's
            // completed count (zero here).
            assert_eq!(out.served_by.len(), 3);
            for sb in &out.served_by {
                assert_eq!(
                    *sb,
                    ServedBy::Partial {
                        completed: 0,
                        deadline_hit: true
                    }
                );
            }
        }
        let tops: Vec<TopKQuery> = qs
            .iter()
            .map(|q| TopKQuery::new(q.clone(), 4).unwrap())
            .collect();
        let touts = sharded.top_k_batch(&tops, &exec).unwrap();
        assert!(touts
            .iter()
            .all(|o| o.neighbors.is_empty() && o.served_by.iter().all(ServedBy::is_partial)));

        // An effectively unlimited budget answers everything, bit-identical
        // to the unbudgeted path.
        let generous = ExecutionConfig::serial().with_deadline(Duration::from_secs(3600));
        assert_eq!(
            sharded.query_batch(&qs, &generous).unwrap(),
            sharded
                .query_batch(&qs, &ExecutionConfig::serial())
                .unwrap()
        );
    }
}
