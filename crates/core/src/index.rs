//! One Planar index (paper §4): the data points sorted by `⟨c, φ(x)⟩` for a
//! single normal `c`, plus the interval-based query algorithms.
//!
//! ## Normalized vs raw space
//!
//! The interval machinery assumes the first hyper-octant: positive query
//! coefficients and non-negative data coordinates. General octants are
//! handled by `planar_geom::Normalizer` (translation §4.5 + reflection).
//! Crucially, the normalized key decomposes as
//! `⟨c, φ''(x)⟩ = ⟨c_raw, φ(x)⟩ + shift`, so this index stores **raw-space
//! keys** and applies the (query-time) `shift` to thresholds instead. Data
//! updates that grow the translation deltas therefore never touch stored
//! keys.
//!
//! ## Interval boundaries
//!
//! For a normalized query `(a, b)` the per-axis thresholds are
//! `tᵢ = cᵢ·b/aᵢ`; with `t_min = min tᵢ` and `t_max = max tᵢ`:
//!
//! * keys ≤ `t_min` form the **smaller interval** — they provably satisfy
//!   `⟨a, φ⟩ ≤ b` (paper Observation 2);
//! * keys > `t_max` form the **larger interval** — they provably violate it
//!   (Observation 1);
//! * keys in between form the **intermediate interval** and are verified
//!   with one scalar product each (Algorithm 1).
//!
//! A `≥` query swaps the roles of acceptance and rejection; boundary keys
//! (`= t_min`) are routed into the intermediate interval so that points
//! exactly on the query hyperplane are still verified exactly. A small
//! relative epsilon additionally widens the intermediate interval to absorb
//! floating-point rounding between stored keys and computed thresholds —
//! widening is always sound because the intermediate interval is verified
//! exactly in raw space.

use crate::parallel::{self, ExecutionConfig, QueryScratch};
use crate::query::{Cmp, InequalityQuery, TopKQuery};
use crate::scan::TopKBuffer;
use crate::stats::{ExecutionPath, QueryStats};
use crate::store::{Entry, KeyStore};
use crate::table::{FeatureTable, PointId};
use crate::{HeapSize, PlanarError, Result};
use planar_geom::{dot_slices, NormalizedQuery, Normalizer};

/// Relative slack applied to interval boundaries so that float rounding in
/// key/threshold computation can never misclassify a boundary point into a
/// pruned interval. See the module docs — widening the verified interval is
/// always sound.
const BOUNDARY_EPS: f64 = 1e-9;

/// Interval boundaries `(j_min, j_max)` in rank space: ranks `< j_min` are
/// the smaller interval, ranks `≥ j_max` the larger interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalBounds {
    /// Rank of the first intermediate-interval entry.
    pub j_min: usize,
    /// Rank one past the last intermediate-interval entry.
    pub j_max: usize,
}

/// Statistics of one top-k query execution (paper Table 3 reports the
/// fraction of points *checked*).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKStats {
    /// Dataset size.
    pub n: usize,
    /// Intermediate-interval size (all verified).
    pub intermediate: usize,
    /// Points of the accepting interval examined before the lower-bound
    /// pruning of Claim 3 terminated the walk (`k₁` in the paper §6).
    pub walked: usize,
    /// Scalar products computed.
    pub verified: usize,
    /// II candidates rejected by multi-index intersection pruning (a
    /// sibling index proved they violate the constraint, so neither a
    /// scalar product nor a distance was computed for them).
    pub intersect_pruned: usize,
}

impl TopKStats {
    /// Total points touched, `|II| + k₁` — the "checked points" column of
    /// paper Table 3.
    pub fn checked(&self) -> usize {
        self.intermediate + self.walked
    }

    /// Checked points as a percentage of the dataset.
    pub fn checked_percentage(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        100.0 * self.checked() as f64 / self.n as f64
    }
}

/// One Planar index: a normal `c` and the points ordered by raw key
/// `⟨c_raw, φ(x)⟩`.
#[derive(Debug, Clone)]
pub struct SingleIndex<S: KeyStore> {
    /// The normal in normalized (first-octant) space; strictly positive.
    normal: Vec<f64>,
    /// `c_rawᵢ = cᵢ·sign(O, i)` — the raw-space key normal.
    raw_normal: Vec<f64>,
    store: S,
    /// Raw key by point id (`NaN` for ids this index does not hold) — the
    /// O(1) side table behind multi-index intersection pruning: a sibling
    /// index classifies an II candidate with one array load and two
    /// comparisons instead of a rank query.
    keys_by_id: Vec<f64>,
}

/// One sibling index's contribution to intersection pruning: its slacked
/// raw-key thresholds `(lo, hi)` for the current query plus its id→key side
/// table. Built by the index set, consumed by [`SingleIndex`] verification.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AuxFilter<'a> {
    /// Slacked lower threshold (raw-key space): `t_min − ε − shift`.
    pub lo: f64,
    /// Slacked upper threshold (raw-key space): `t_max + ε − shift`.
    pub hi: f64,
    /// The sibling's id→raw-key table.
    pub keys: &'a [f64],
}

/// What one sibling index's key proves about an II candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyClass {
    /// Provably satisfies the query (Observation 2 with slack).
    Accept,
    /// Provably violates the query (Observation 1 with slack).
    Reject,
    /// No proof either way — the candidate still needs verification.
    Verify,
}

impl AuxFilter<'_> {
    /// Classify a candidate through this sibling's intervals. Mirrors
    /// [`SingleIndex::boundaries`]: for `≤` the smaller interval
    /// (`key ≤ lo`) is accepted and the larger (`key > hi`) rejected; `≥`
    /// swaps the roles and keeps `key = lo` in the verified middle (it can
    /// lie exactly on the hyperplane). An id absent from the sibling
    /// (`NaN` key) fails every comparison and lands on `Verify`.
    #[inline]
    fn classify(&self, id: PointId, cmp: Cmp) -> KeyClass {
        let key = match self.keys.get(id as usize) {
            Some(&k) => k,
            None => return KeyClass::Verify,
        };
        match cmp {
            Cmp::Leq if key <= self.lo => KeyClass::Accept,
            Cmp::Geq if key > self.hi => KeyClass::Accept,
            Cmp::Leq if key > self.hi => KeyClass::Reject,
            Cmp::Geq if key < self.lo => KeyClass::Reject,
            _ => KeyClass::Verify,
        }
    }
}

impl<S: KeyStore> SingleIndex<S> {
    /// Build an index over `table` for the (normalized-space, strictly
    /// positive) normal `c`.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] when `normal` does not match the
    /// table dimensionality, [`PlanarError::NotFinite`] on NaN/∞ or
    /// non-positive components.
    pub fn build(table: &FeatureTable, normalizer: &Normalizer, normal: Vec<f64>) -> Result<Self> {
        if normal.len() != table.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: table.dim(),
                found: normal.len(),
            });
        }
        if normal.iter().any(|&v| !v.is_finite() || v <= 0.0) {
            return Err(PlanarError::NotFinite);
        }
        let raw_normal = normalizer.raw_normal(&normal);
        let entries: Vec<Entry> = table
            .iter()
            .map(|(id, row)| Entry::new(dot_slices(&raw_normal, row), id))
            .collect();
        let keys_by_id = keys_from_entries(&entries);
        Ok(Self {
            normal,
            raw_normal,
            store: S::build(entries),
            keys_by_id,
        })
    }

    /// The index normal `c` (normalized space).
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// All entries in ascending key order (used by persistence).
    pub fn entries(&self) -> impl Iterator<Item = Entry> + '_ {
        self.store.iter_asc(0, self.store.len())
    }

    /// Point ids in the rank range `[from, to)` of the sorted order.
    pub fn ids_in(&self, from: usize, to: usize) -> impl Iterator<Item = PointId> + '_ {
        self.store.iter_asc(from, to).map(|e| e.id)
    }

    /// Reassemble from persisted parts; `normal` must be validated by the
    /// caller and `store` already built over this index's entries.
    pub(crate) fn from_parts(normal: Vec<f64>, raw_normal: Vec<f64>, store: S) -> Self {
        let entries: Vec<Entry> = store.iter_asc(0, store.len()).collect();
        let keys_by_id = keys_from_entries(&entries);
        Self {
            normal,
            raw_normal,
            store,
            keys_by_id,
        }
    }

    /// The raw-space sort key of a feature row.
    #[inline]
    pub fn raw_key(&self, row: &[f64]) -> f64 {
        dot_slices(&self.raw_normal, row)
    }

    /// Discard the store and rebuild it from the table — every entry is
    /// recomputable from the rows and this index's normal, which is what
    /// makes quarantined indices recoverable. `deleted[id]` rows are
    /// skipped. `O(n log n)`.
    pub(crate) fn rebuild_from(&mut self, table: &FeatureTable, deleted: &[bool]) {
        let entries: Vec<Entry> = table
            .iter()
            .filter(|(id, _)| !deleted.get(*id as usize).copied().unwrap_or(false))
            .map(|(id, row)| Entry::new(self.raw_key(row), id))
            .collect();
        self.keys_by_id = keys_from_entries(&entries);
        self.store = S::build(entries);
    }

    /// Register a new point (paper §4.4 dynamic maintenance).
    pub fn insert_point(&mut self, id: PointId, row: &[f64]) {
        let entry = Entry::new(self.raw_key(row), id);
        self.set_key(id, entry.key);
        self.store.insert(entry);
    }

    /// Remove a point, given its current feature row.
    pub fn remove_point(&mut self, id: PointId, row: &[f64]) -> bool {
        let removed = self.store.remove(Entry::new(self.raw_key(row), id));
        if removed {
            self.set_key(id, f64::NAN);
        }
        removed
    }

    /// Update a point's feature row: `O(d' + log n)` with a tree store.
    pub fn update_point(&mut self, id: PointId, old_row: &[f64], new_row: &[f64]) -> bool {
        let removed = self.store.remove(Entry::new(self.raw_key(old_row), id));
        let entry = Entry::new(self.raw_key(new_row), id);
        self.set_key(id, entry.key);
        self.store.insert(entry);
        removed
    }

    /// Maintain the id→key side table alongside a store mutation.
    fn set_key(&mut self, id: PointId, key: f64) {
        let i = id as usize;
        if i >= self.keys_by_id.len() {
            self.keys_by_id.resize(i + 1, f64::NAN);
        }
        self.keys_by_id[i] = key;
    }

    /// The id→raw-key side table (NaN for absent ids), for intersection
    /// pruning by sibling queries.
    pub(crate) fn keys_by_id(&self) -> &[f64] {
        &self.keys_by_id
    }

    /// Interval boundaries for a normalized query. `shift` is the current
    /// key shift `Σ cᵢ·δᵢ` from the normalizer (see module docs).
    pub fn boundaries(&self, nq: &NormalizedQuery, shift: f64, cmp: Cmp) -> IntervalBounds {
        let (lo, hi) = self.slack_bounds(nq, shift);
        let j_min = match cmp {
            // ≤: boundary keys (= t_min) satisfy the query and may stay in
            // the accepted smaller interval.
            Cmp::Leq => self.store.rank_leq(lo),
            // ≥: the smaller interval is rejected; keys equal to t_min can
            // lie exactly on the hyperplane, so they must be verified.
            Cmp::Geq => self.store.rank_lt(lo),
        };
        let j_max = self.store.rank_leq(hi);
        IntervalBounds {
            j_min,
            j_max: j_max.max(j_min),
        }
    }

    /// The slacked raw-key thresholds `(lo, hi)` for a normalized query:
    /// the per-axis threshold extremes widened by the boundary epsilon and
    /// shifted to raw-key space. Keys `≤ lo` are in the smaller interval,
    /// keys `> hi` in the larger — the comparisons the [`AuxFilter`] runs
    /// per candidate.
    pub(crate) fn slack_bounds(&self, nq: &NormalizedQuery, shift: f64) -> (f64, f64) {
        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        for (&ci, &ai) in self.normal.iter().zip(&nq.a) {
            let t = ci * nq.b / ai;
            t_min = t_min.min(t);
            t_max = t_max.max(t);
        }
        Self::slacked(t_min, t_max, shift)
    }

    /// Widen the verified interval by a relative epsilon (sound; see module
    /// docs) and move thresholds to raw-key space.
    fn slacked(t_min: f64, t_max: f64, shift: f64) -> (f64, f64) {
        let scale = t_min.abs().max(t_max.abs()).max(shift.abs()).max(1.0);
        let eps = BOUNDARY_EPS * scale;
        (t_min - eps - shift, t_max + eps - shift)
    }

    /// The paper-literal interval computation (Algorithm 1, Eq. 7–8): one
    /// binary search *per axis* for `Small(i)` and `Large(i)`, then
    /// `j_min = min_i Small(i)`, `j_max = max_i Large(i)`.
    ///
    /// Functionally identical to [`Self::boundaries`], which refines the
    /// `O(d'·log n)` search to `O(d' + log n)` by reducing the thresholds
    /// first. Kept for the `ablation-search` benchmark.
    pub fn boundaries_literal(&self, nq: &NormalizedQuery, shift: f64, cmp: Cmp) -> IntervalBounds {
        let mut j_min = usize::MAX;
        let mut j_max = 0usize;
        for (&ci, &ai) in self.normal.iter().zip(&nq.a) {
            let t = ci * nq.b / ai;
            let (lo, hi) = Self::slacked(t, t, shift);
            let small = match cmp {
                Cmp::Leq => self.store.rank_leq(lo),
                Cmp::Geq => self.store.rank_lt(lo),
            };
            let large = self.store.rank_leq(hi);
            j_min = j_min.min(small);
            j_max = j_max.max(large);
        }
        if j_min == usize::MAX {
            j_min = 0;
        }
        IntervalBounds {
            j_min,
            j_max: j_max.max(j_min),
        }
    }

    /// Exact intermediate-interval size for a query (used by the
    /// oracle-count selection strategy).
    pub fn ii_size(&self, nq: &NormalizedQuery, shift: f64, cmp: Cmp) -> usize {
        let b = self.boundaries(nq, shift, cmp);
        b.j_max - b.j_min
    }

    /// The wholesale-accepted and wholesale-rejected point ids of a query's
    /// interval partition (no verification performed). Used by the
    /// linear-constraint conjunction evaluator.
    pub fn partition(
        &self,
        nq: &NormalizedQuery,
        shift: f64,
        cmp: Cmp,
    ) -> (Vec<PointId>, Vec<PointId>) {
        let n = self.store.len();
        let IntervalBounds { j_min, j_max } = self.boundaries(nq, shift, cmp);
        let smaller: Vec<PointId> = self.store.iter_asc(0, j_min).map(|e| e.id).collect();
        let larger: Vec<PointId> = self.store.iter_asc(j_max, n).map(|e| e.id).collect();
        match cmp {
            Cmp::Leq => (smaller, larger),
            Cmp::Geq => (larger, smaller),
        }
    }

    /// Algorithm 1: answer an inequality query.
    ///
    /// `verify` is the exact raw-space predicate (the original query), `nq`
    /// its normalized form, `index_pos` only labels the stats.
    ///
    /// Convenience wrapper over [`Self::evaluate_with`] with serial
    /// execution and throwaway scratch.
    pub fn evaluate(
        &self,
        verify: &InequalityQuery,
        nq: &NormalizedQuery,
        shift: f64,
        table: &FeatureTable,
        index_pos: usize,
    ) -> (Vec<PointId>, QueryStats) {
        self.evaluate_with(
            verify,
            nq,
            shift,
            table,
            index_pos,
            &ExecutionConfig::serial(),
            &mut QueryScratch::new(),
        )
    }

    /// [`Self::evaluate`] with explicit execution configuration and
    /// reusable scratch buffers.
    ///
    /// The result vector is allocated once with capacity from the interval
    /// bounds (accepted-interval size + II size); all staging goes through
    /// `scratch`, so a warm scratch makes the hot loop allocation-free
    /// beyond that single result allocation. Matches are ordered
    /// canonically — the wholesale-accepted interval in store (key) order,
    /// then II matches in ascending-id order — identically for every
    /// `exec.threads` value.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_with(
        &self,
        verify: &InequalityQuery,
        nq: &NormalizedQuery,
        shift: f64,
        table: &FeatureTable,
        index_pos: usize,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> (Vec<PointId>, QueryStats) {
        self.evaluate_with_aux(verify, nq, shift, table, index_pos, &[], exec, scratch)
    }

    /// [`Self::evaluate_with`] with multi-index intersection pruning: before
    /// verification, each II candidate is classified through the sibling
    /// indices' slacked intervals (`aux`). A candidate a sibling wholesale
    /// accepts or rejects skips its scalar product; the rest are verified
    /// exactly as before. Matches and their order are identical to the
    /// unpruned path — the sibling proofs are the same Observations 1 and 2
    /// the chosen index itself uses for its outer intervals.
    ///
    /// The cost model skips the whole pass when the II holds fewer than
    /// `exec.intersect_min_candidates` candidates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn evaluate_with_aux(
        &self,
        verify: &InequalityQuery,
        nq: &NormalizedQuery,
        shift: f64,
        table: &FeatureTable,
        index_pos: usize,
        aux: &[AuxFilter<'_>],
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> (Vec<PointId>, QueryStats) {
        let n = self.store.len();
        let IntervalBounds { j_min, j_max } = self.boundaries(nq, shift, verify.cmp());
        let (smaller, intermediate, larger) = (j_min, j_max - j_min, n - j_max);
        let accepted_len = match verify.cmp() {
            Cmp::Leq => j_min,
            Cmp::Geq => n - j_max,
        };
        let mut matches = Vec::with_capacity(accepted_len + intermediate);

        // Wholesale-accepted interval.
        let accepted = match verify.cmp() {
            Cmp::Leq => self.store.iter_asc(0, j_min),
            Cmp::Geq => self.store.iter_asc(j_max, n),
        };
        matches.extend(accepted.map(|e| e.id));

        // Intermediate interval: verify each point exactly. Candidates are
        // re-sorted by id so consecutive rows coalesce into blocked
        // scalar-product calls (and chunked verification stays
        // order-deterministic).
        scratch.ids.clear();
        scratch
            .ids
            .extend(self.store.iter_asc(j_min, j_max).map(|e| e.id));
        scratch.ids.sort_unstable();

        // Multi-index intersection: let sibling indices settle candidates
        // via O(1) key classifications before paying for scalar products.
        let candidates = scratch.ids.len();
        scratch.accepted.clear();
        if !aux.is_empty() && candidates >= exec.intersect_min_candidates {
            let cmp = verify.cmp();
            let (ids, accepted) = (&mut scratch.ids, &mut scratch.accepted);
            ids.retain(|&id| {
                for f in aux {
                    match f.classify(id, cmp) {
                        KeyClass::Accept => {
                            accepted.push(id);
                            return false;
                        }
                        KeyClass::Reject => return false,
                        KeyClass::Verify => {}
                    }
                }
                true
            });
        }
        let intersect_pruned = candidates - scratch.ids.len();
        let verified = scratch.ids.len();

        let quant = if scratch.accepted.is_empty() {
            parallel::verify_ids(verify, table, &scratch.ids, exec, &mut matches)
        } else {
            // Sibling-accepted ids never went through verification, so they
            // must be merged back to keep the ascending-id II match order.
            scratch.verified_out.clear();
            let quant =
                parallel::verify_ids(verify, table, &scratch.ids, exec, &mut scratch.verified_out);
            merge_ascending(&scratch.accepted, &scratch.verified_out, &mut matches);
            quant
        };

        let stats = QueryStats {
            n,
            smaller,
            intermediate,
            larger,
            verified,
            intersect_pruned,
            matched: matches.len(),
            quant,
            path: ExecutionPath::Index { index: index_pos },
        };
        (matches, stats)
    }

    /// Algorithm 2: the top-k satisfying points nearest the query
    /// hyperplane, with the lower-bound-distance pruning of Claim 3.
    pub fn top_k(
        &self,
        q: &TopKQuery,
        nq: &NormalizedQuery,
        shift: f64,
        table: &FeatureTable,
    ) -> (Vec<(PointId, f64)>, TopKStats) {
        self.top_k_inner(
            q,
            nq,
            shift,
            table,
            &[],
            true,
            &ExecutionConfig::serial(),
            &mut QueryScratch::new(),
        )
    }

    /// [`Self::top_k`] with explicit execution configuration and reusable
    /// scratch buffers; results are identical for every thread count.
    pub fn top_k_with(
        &self,
        q: &TopKQuery,
        nq: &NormalizedQuery,
        shift: f64,
        table: &FeatureTable,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> (Vec<(PointId, f64)>, TopKStats) {
        self.top_k_inner(q, nq, shift, table, &[], true, exec, scratch)
    }

    /// [`Self::top_k_with`] with multi-index intersection pruning of the
    /// intermediate interval. Top-k needs a distance for every *satisfying*
    /// point, so only sibling **rejections** prune (a rejected candidate
    /// provably violates the constraint and could never enter the buffer);
    /// sibling-accepted candidates are verified anyway for their distance.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn top_k_with_aux(
        &self,
        q: &TopKQuery,
        nq: &NormalizedQuery,
        shift: f64,
        table: &FeatureTable,
        aux: &[AuxFilter<'_>],
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> (Vec<(PointId, f64)>, TopKStats) {
        self.top_k_inner(q, nq, shift, table, aux, true, exec, scratch)
    }

    /// [`Self::top_k`] with the Claim-3 lower-bound pruning disabled: the
    /// whole accepting interval is walked. Identical answers, no early
    /// termination — the `ablation-topk` benchmark's control arm.
    pub fn top_k_unpruned(
        &self,
        q: &TopKQuery,
        nq: &NormalizedQuery,
        shift: f64,
        table: &FeatureTable,
    ) -> (Vec<(PointId, f64)>, TopKStats) {
        self.top_k_inner(
            q,
            nq,
            shift,
            table,
            &[],
            false,
            &ExecutionConfig::serial(),
            &mut QueryScratch::new(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn top_k_inner(
        &self,
        q: &TopKQuery,
        nq: &NormalizedQuery,
        shift: f64,
        table: &FeatureTable,
        aux: &[AuxFilter<'_>],
        use_pruning: bool,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> (Vec<(PointId, f64)>, TopKStats) {
        let n = self.store.len();
        let cmp = q.query.cmp();
        let IntervalBounds { j_min, j_max } = self.boundaries(nq, shift, cmp);
        let mut buffer = TopKBuffer::new(q.k);
        let inv_norm = 1.0 / q.query.a_norm();

        // Intermediate interval first (paper Algorithm 2, lines 3–7),
        // verified with the blocked kernel in ascending-id order. The
        // buffer's total (dist, id) order makes its contents independent of
        // arrival order, so this matches the store-order walk exactly.
        scratch.ids.clear();
        scratch
            .ids
            .extend(self.store.iter_asc(j_min, j_max).map(|e| e.id));
        scratch.ids.sort_unstable();

        // Reject-only intersection pruning: a sibling-rejected candidate
        // provably violates the constraint, so it can skip both the scalar
        // product and the distance.
        let candidates = scratch.ids.len();
        if !aux.is_empty() && candidates >= exec.intersect_min_candidates {
            scratch
                .ids
                .retain(|&id| !aux.iter().any(|f| f.classify(id, cmp) == KeyClass::Reject));
        }
        let intersect_pruned = candidates - scratch.ids.len();
        let verified = scratch.ids.len();
        parallel::verify_top_k(
            &q.query,
            table,
            &scratch.ids,
            q.k,
            exec,
            &mut scratch.dots,
            &mut buffer,
        );

        // Walk the accepting interval from the query hyperplane outward,
        // terminating when the lower-bound distance (Def. 5) of the next
        // point exceeds the worst buffered distance (Claim 3 makes every
        // later point at least that far).
        //
        // r = aᵢ/cᵢ extremes: for ≤ queries the bound is
        // (b − r_max·key)/|a|; for ≥ queries (r_min·key − b)/|a|.
        let (mut r_min, mut r_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (&ci, &ai) in self.normal.iter().zip(&nq.a) {
            let r = ai / ci;
            r_min = r_min.min(r);
            r_max = r_max.max(r);
        }

        let mut walked = 0;
        match cmp {
            Cmp::Leq => {
                for e in self.store.iter_desc(j_min) {
                    let key_norm = e.key + shift;
                    let lbs = deflate((nq.b - r_max * key_norm) * inv_norm);
                    if use_pruning && buffer.is_full() && buffer.worst().is_some_and(|w| lbs > w) {
                        break;
                    }
                    walked += 1;
                    let row = table.row(e.id);
                    buffer.offer(q.query.distance(row), e.id);
                }
            }
            Cmp::Geq => {
                for e in self.store.iter_asc(j_max, n) {
                    let key_norm = e.key + shift;
                    let lbs = deflate((r_min * key_norm - nq.b) * inv_norm);
                    if use_pruning && buffer.is_full() && buffer.worst().is_some_and(|w| lbs > w) {
                        break;
                    }
                    walked += 1;
                    let row = table.row(e.id);
                    buffer.offer(q.query.distance(row), e.id);
                }
            }
        }

        let stats = TopKStats {
            n,
            intermediate: j_max - j_min,
            walked,
            verified: verified + walked,
            intersect_pruned,
        };
        (buffer.into_sorted(), stats)
    }
}

/// Build the id→raw-key side table from an index's entries (`NaN` marks
/// absent ids).
fn keys_from_entries(entries: &[Entry]) -> Vec<f64> {
    let len = entries.iter().map(|e| e.id as usize + 1).max().unwrap_or(0);
    let mut keys = vec![f64::NAN; len];
    for e in entries {
        keys[e.id as usize] = e.key;
    }
    keys
}

/// Merge two ascending, disjoint id lists into `out` (ascending).
fn merge_ascending(a: &[PointId], b: &[PointId], out: &mut Vec<PointId>) {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Shave a relative epsilon off a lower bound so float rounding in the key
/// decomposition can never make it exceed the true distance.
#[inline]
fn deflate(lbs: f64) -> f64 {
    lbs - lbs.abs() * 1e-9
}

impl<S: KeyStore> HeapSize for SingleIndex<S> {
    fn heap_size(&self) -> usize {
        self.normal.heap_size() + self.raw_normal.heap_size() + self.store.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{BPlusTree, VecStore};
    use planar_geom::Normalizer;

    fn first_octant_setup() -> (FeatureTable, Normalizer) {
        let table = FeatureTable::from_rows(
            2,
            vec![
                vec![1.0, 1.0],
                vec![2.0, 3.0],
                vec![4.0, 4.0],
                vec![0.5, 0.5],
                vec![3.0, 1.0],
            ],
        )
        .unwrap();
        let normalizer = Normalizer::identity(2);
        (table, normalizer)
    }

    fn eval_ids<S: KeyStore>(
        idx: &SingleIndex<S>,
        table: &FeatureTable,
        norm: &Normalizer,
        q: &InequalityQuery,
    ) -> (Vec<PointId>, QueryStats) {
        let nq = norm.normalize_query(q.a(), q.b()).unwrap();
        let shift = norm.key_shift(idx.normal());
        let (mut ids, stats) = idx.evaluate(q, &nq, shift, table, 0);
        ids.sort_unstable();
        (ids, stats)
    }

    #[test]
    fn build_validates_normal() {
        let (table, norm) = first_octant_setup();
        assert!(SingleIndex::<VecStore>::build(&table, &norm, vec![1.0]).is_err());
        assert!(SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, -1.0]).is_err());
        assert!(SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 0.0]).is_err());
        assert!(SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, f64::NAN]).is_err());
        let idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 1.0]).unwrap();
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
    }

    #[test]
    fn parallel_index_gives_empty_intermediate_interval() {
        let (table, norm) = first_octant_setup();
        let idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 1.0]).unwrap();
        let q = InequalityQuery::leq(vec![2.0, 2.0], 10.0).unwrap(); // parallel to c
        let nq = norm.normalize_query(q.a(), q.b()).unwrap();
        let b = idx.boundaries(&nq, 0.0, Cmp::Leq);
        // All thresholds coincide at key 5: II only holds boundary keys
        // (key exactly 5 → id 1), everything else is pruned.
        assert!(b.j_max - b.j_min <= 1);
        // x + y ≤ 5: ids 0 (2), 1 (5, boundary), 3 (1), 4 (4).
        let (ids, stats) = eval_ids(&idx, &table, &norm, &q);
        assert_eq!(ids, vec![0, 1, 3, 4]);
        assert!(stats.pruned_fraction() >= 0.8, "{stats:?}");
    }

    #[test]
    fn leq_and_geq_answers_match_scan() {
        let (table, norm) = first_octant_setup();
        let idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 2.0]).unwrap();
        let scan = crate::scan::SeqScan::new(&table);
        for (a, b) in [
            (vec![1.0, 1.0], 5.0),
            (vec![3.0, 0.5], 4.0),
            (vec![0.5, 2.5], 6.0),
        ] {
            for cmp in [Cmp::Leq, Cmp::Geq] {
                let q = InequalityQuery::new(a.clone(), cmp, b).unwrap();
                let (ids, _) = eval_ids(&idx, &table, &norm, &q);
                assert_eq!(ids, scan.evaluate(&q).unwrap(), "query {a:?} {cmp:?} {b}");
            }
        }
    }

    #[test]
    fn boundary_points_are_answered_exactly() {
        // Points exactly on the query hyperplane: ⟨(1,1), (2,3)⟩ = 5.
        let (table, norm) = first_octant_setup();
        let idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 1.0]).unwrap();
        let leq = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        let geq = InequalityQuery::geq(vec![1.0, 1.0], 5.0).unwrap();
        let (l, _) = eval_ids(&idx, &table, &norm, &leq);
        let (g, _) = eval_ids(&idx, &table, &norm, &geq);
        assert!(l.contains(&1), "boundary point must satisfy ≤");
        assert!(g.contains(&1), "boundary point must satisfy ≥");
    }

    #[test]
    fn observations_1_and_2_hold() {
        // Every smaller-interval point satisfies a ≤ query; every
        // larger-interval point violates it.
        let (table, norm) = first_octant_setup();
        let idx = SingleIndex::<BPlusTree>::build(&table, &norm, vec![2.0, 1.0]).unwrap();
        let q = InequalityQuery::leq(vec![1.0, 3.0], 7.0).unwrap();
        let nq = norm.normalize_query(q.a(), q.b()).unwrap();
        let shift = norm.key_shift(idx.normal());
        let b = idx.boundaries(&nq, shift, Cmp::Leq);
        for e in idx.store.iter_asc(0, b.j_min) {
            assert!(q.satisfies(table.row(e.id)), "SI point {e:?} must satisfy");
        }
        for e in idx.store.iter_asc(b.j_max, idx.len()) {
            assert!(!q.satisfies(table.row(e.id)), "LI point {e:?} must violate");
        }
    }

    #[test]
    fn works_in_negative_octant_via_normalizer() {
        // Data with negative second coordinate; queries with a₂ < 0.
        let table = FeatureTable::from_rows(
            2,
            vec![
                vec![1.0, -1.0],
                vec![2.0, -3.0],
                vec![4.0, -0.5],
                vec![0.2, -2.0],
            ],
        )
        .unwrap();
        let a = [1.0, -2.0];
        let octant = planar_geom::Octant::of_coefficients(&a).unwrap();
        let rows: Vec<&[f64]> = table.iter().map(|(_, r)| r).collect();
        let norm = Normalizer::fit(&octant, rows);
        let idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 1.5]).unwrap();
        let scan = crate::scan::SeqScan::new(&table);
        for b in [0.0, 2.0, 5.0, 9.0] {
            for cmp in [Cmp::Leq, Cmp::Geq] {
                let q = InequalityQuery::new(a.to_vec(), cmp, b).unwrap();
                let (ids, _) = eval_ids(&idx, &table, &norm, &q);
                assert_eq!(ids, scan.evaluate(&q).unwrap(), "b={b} {cmp:?}");
            }
        }
    }

    #[test]
    fn update_point_moves_entry() {
        let (mut table, norm) = first_octant_setup();
        let mut idx = SingleIndex::<BPlusTree>::build(&table, &norm, vec![1.0, 1.0]).unwrap();
        let old = table.row(2).to_vec();
        let new = vec![0.1, 0.1];
        assert!(idx.update_point(2, &old, &new));
        table.update_row(2, &new).unwrap();
        let q = InequalityQuery::leq(vec![1.0, 1.0], 1.0).unwrap();
        let (ids, _) = eval_ids(&idx, &table, &norm, &q);
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn insert_and_remove_points() {
        let (mut table, norm) = first_octant_setup();
        let mut idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 1.0]).unwrap();
        let id = table.push_row(&[10.0, 10.0]).unwrap();
        idx.insert_point(id, &[10.0, 10.0]);
        assert_eq!(idx.len(), 6);
        let q = InequalityQuery::geq(vec![1.0, 1.0], 19.0).unwrap();
        let (ids, _) = eval_ids(&idx, &table, &norm, &q);
        assert_eq!(ids, vec![id]);
        assert!(idx.remove_point(id, &[10.0, 10.0]));
        assert!(!idx.remove_point(id, &[10.0, 10.0]));
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn top_k_matches_brute_force() {
        let (table, norm) = first_octant_setup();
        let idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 1.0]).unwrap();
        let scan = crate::scan::SeqScan::new(&table);
        for k in 1..=5 {
            for cmp in [Cmp::Leq, Cmp::Geq] {
                let q = TopKQuery::new(InequalityQuery::new(vec![1.5, 0.7], cmp, 4.0).unwrap(), k)
                    .unwrap();
                let nq = norm.normalize_query(q.query.a(), q.query.b()).unwrap();
                let shift = norm.key_shift(idx.normal());
                let (got, stats) = idx.top_k(&q, &nq, shift, &table);
                let want = scan.top_k(&q).unwrap();
                assert_eq!(got, want, "k={k} {cmp:?}");
                assert!(stats.checked() <= table.len());
            }
        }
    }

    #[test]
    fn top_k_pruning_stops_early_on_parallel_index() {
        // With a parallel index, Algorithm 2 checks ~k+1 points of the
        // accepting interval (paper §6 best case).
        let rows: Vec<Vec<f64>> = (1..=1000).map(|i| vec![i as f64, i as f64]).collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let norm = Normalizer::identity(2);
        let idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 1.0]).unwrap();
        let q = TopKQuery::new(InequalityQuery::leq(vec![2.0, 2.0], 2000.0).unwrap(), 5).unwrap();
        let nq = norm.normalize_query(q.query.a(), q.query.b()).unwrap();
        let (res, stats) = idx.top_k(&q, &nq, 0.0, &table);
        assert_eq!(res.len(), 5);
        // ids 500, 499, 498, 497, 496 are nearest to x+y = 1000.
        assert_eq!(res[0].0, 499);
        assert!(
            stats.checked() <= 10,
            "expected early termination, checked {}",
            stats.checked()
        );
    }

    #[test]
    fn empty_index_answers_empty() {
        let table = FeatureTable::new(2).unwrap();
        let norm = Normalizer::identity(2);
        let idx = SingleIndex::<VecStore>::build(&table, &norm, vec![1.0, 1.0]).unwrap();
        let q = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        let nq = norm.normalize_query(q.a(), q.b()).unwrap();
        let (ids, stats) = idx.evaluate(&q, &nq, 0.0, &table, 0);
        assert!(ids.is_empty());
        assert_eq!(stats.matched, 0);
    }
}
