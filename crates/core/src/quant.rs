//! The quantized columnar filter tier: fixed-point codec over
//! [`ColumnMajorRows`] blocks, the sound three-way candidate classifier
//! built on `planar_geom::quant`, and the per-shard workload autotuner.
//!
//! ## Tier format
//!
//! Each 64-lane interleaved block of the columnar mirror is encoded
//! per-dimension as an affine fixed-point code:
//!
//! ```text
//! x[j][l] ≈ offset[b][j] + scale[b][j] · code[b][j][l]
//! ```
//!
//! with `code` an `i8` in `[-127, 127]` or an `i16` in `[-32767, 32767]`.
//! `offset` is the midpoint and `scale` the half-range of the block's
//! values in that dimension divided by the code magnitude, so rounding to
//! the nearest code bounds the per-element decode error by `scale/2` with
//! no clamping in the common case. A block whose statistics cannot be
//! encoded soundly (overflowing magnitudes) is flagged for full-precision
//! fallback instead — the tier *never* guesses.
//!
//! ## Error-bound math (why answers stay bit-identical)
//!
//! For a query `⟨a, x⟩ ⋚ b` over a block, the filter computes
//! `D = Σ_j f32(a_j·s_j) · code_j` in `f32` and classifies against
//! thresholds derived from `bias = Σ_j a_j·o_j − b` and a conservative
//! bound `E` on `|（D + bias） − (⟨a,x⟩_f64 − b)|`, where `⟨a,x⟩_f64` is
//! the exact-path [`planar_geom::dot_slices`] value the index's answers
//! are defined by. `E` sums:
//!
//! * quantization: `½·Σ|a_j|·s_j`, slightly inflated for the codec's own
//!   rounding;
//! * `f32` kernel rounding: `(d+6)·2⁻²³ · Σ|a_j|·s_j · qmax`, covering
//!   weight rounding, products, and the striped accumulation;
//! * `f64` reference rounding: `(d+6)·2⁻⁵¹ · M` with
//!   `M = Σ|a_j|(|o_j| + s_j·qmax) + |b|`, covering both the exact dot's
//!   own accumulation error and the `bias` computation;
//! * an absolute guard `(d+4)·qmax·2⁻¹²⁶` for subnormal `f32` products.
//!
//! The whole bound is multiplied by the tier's `slack ≥ 1` (a pure
//! widening — slack can only move lanes from accept/reject into the
//! re-verify band, so it trades filter sharpness for margin, never
//! soundness). Thresholds are rounded *outward* when folded to `f32`, so
//! a lane classified accept/reject provably agrees with the `f64` path;
//! everything else is re-verified exactly. `PLANAR_FORCE_PORTABLE`
//! flips both the `f64` and quantized kernels to their scalar twins, and
//! the twins are bit-identical, so verdicts are host-independent.
//!
//! ## Autotuner policy
//!
//! [`QuantTuner`] accumulates relaxed atomic counters from `&self` query
//! paths (classified lanes, accepts, rejects, re-verifies, fallbacks).
//! [`retune`] turns an observation window into a [`QuantPolicy`]:
//!
//! * tables under `min_rows` stay `Off` (the tier's prep cost cannot
//!   amortize);
//! * a fresh table starts at `I16` (conservative: wide codes, narrow
//!   band);
//! * a re-verify band wider than `demote_band` demotes `I8 → I16`; wider
//!   than `disable_band` demotes `I16 → Off` (recorded so the tier stays
//!   off until the next compaction re-evaluates the data);
//! * a band tighter than `promote_band` promotes `I16 → I8`;
//! * a very tight band also widens `slack` toward `max_slack` — free
//!   robustness margin when the workload never grazes its thresholds.
//!
//! [`crate::PlanarIndexSet::retune_quantization`] applies the policy per
//! set, and each shard of a [`crate::ShardedIndexSet`] tunes
//! independently on `compact()`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use planar_geom::quant::{
    classify_block_i16, classify_block_i8, quant_kernel_name, QMAX_I16, QMAX_I8,
};
use planar_geom::BLOCK_ROWS;

use crate::memory::HeapSize;
use crate::query::{Cmp, InequalityQuery};
use crate::table::ColumnMajorRows;
use crate::table::PointId;

/// Which quantized tier (if any) a table carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantTier {
    /// No quantized mirror; every verification is full-precision.
    #[default]
    Off,
    /// 8-bit codes: 8x smaller than `f64`, widest error band.
    I8,
    /// 16-bit codes: 4x smaller than `f64`, band ~256x tighter than `I8`.
    I16,
}

impl QuantTier {
    /// Stable one-byte tag for snapshot persistence.
    pub fn tag(self) -> u8 {
        match self {
            QuantTier::Off => 0,
            QuantTier::I8 => 1,
            QuantTier::I16 => 2,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(QuantTier::Off),
            1 => Some(QuantTier::I8),
            2 => Some(QuantTier::I16),
            _ => None,
        }
    }

    /// Name of the kernel serving this tier (for provenance stamping).
    pub fn kernel_name(self) -> &'static str {
        match self {
            QuantTier::Off => "off",
            QuantTier::I8 => quant_kernel_name(false),
            QuantTier::I16 => quant_kernel_name(true),
        }
    }
}

/// A tier choice plus its error-bound slack, as picked by [`retune`] or
/// set explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantPolicy {
    /// The code width (or `Off`).
    pub tier: QuantTier,
    /// Error-bound widening factor, clamped to `≥ 1.0` (values below 1
    /// would be unsound and are refused by the codec).
    pub slack: f64,
}

impl QuantPolicy {
    /// The tier disabled.
    pub fn off() -> Self {
        QuantPolicy {
            tier: QuantTier::Off,
            slack: 1.0,
        }
    }

    /// `tier` at the default slack of 1.0.
    pub fn tier(tier: QuantTier) -> Self {
        QuantPolicy { tier, slack: 1.0 }
    }
}

/// Code storage for one tier width.
#[derive(Debug, Clone, PartialEq)]
enum Codes {
    I8(Vec<i8>),
    I16(Vec<i16>),
}

impl Codes {
    fn qmax(&self) -> i32 {
        match self {
            Codes::I8(_) => QMAX_I8,
            Codes::I16(_) => QMAX_I16,
        }
    }

    fn resize(&mut self, len: usize) {
        match self {
            Codes::I8(v) => v.resize(len, 0),
            Codes::I16(v) => v.resize(len, 0),
        }
    }

    fn heap_size(&self) -> usize {
        match self {
            Codes::I8(v) => v.capacity(),
            Codes::I16(v) => v.capacity() * 2,
        }
    }
}

/// The quantized mirror of a [`ColumnMajorRows`]: per-block fixed-point
/// codes plus per-`(block, dim)` affine decode parameters, maintained
/// incrementally alongside the `f64` blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedColumns {
    dim: usize,
    len: usize,
    slack: f64,
    codes: Codes,
    /// Per `(block, dim)`: decode scale (`0` for a constant dimension).
    scales: Vec<f64>,
    /// Per `(block, dim)`: decode offset (the block's per-dim midpoint).
    offsets: Vec<f64>,
    /// Per block: `true` when the block could not be encoded soundly and
    /// must always take the full-precision path.
    fallback: Vec<bool>,
}

impl QuantizedColumns {
    /// Encode the whole columnar mirror at `tier` (`I8` or `I16`) with the
    /// given error-bound slack (clamped to ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `tier` is `Off` — an absent mirror is represented by
    /// `Option::None`, not by an empty codec.
    pub fn encode(cols: &ColumnMajorRows, tier: QuantTier, slack: f64) -> Self {
        let codes = match tier {
            QuantTier::I8 => Codes::I8(Vec::new()),
            QuantTier::I16 => Codes::I16(Vec::new()),
            QuantTier::Off => panic!("QuantizedColumns::encode called with QuantTier::Off"),
        };
        let mut q = QuantizedColumns {
            dim: cols.dim(),
            len: 0,
            slack: slack.max(1.0),
            codes,
            scales: Vec::new(),
            offsets: Vec::new(),
            fallback: Vec::new(),
        };
        q.sync(cols);
        q
    }

    /// The tier this mirror encodes.
    pub fn tier(&self) -> QuantTier {
        match self.codes {
            Codes::I8(_) => QuantTier::I8,
            Codes::I16(_) => QuantTier::I16,
        }
    }

    /// The error-bound slack (≥ 1) applied during classification.
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// Rows currently encoded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are encoded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i8` code plane (blocks × dim × [`BLOCK_ROWS`], interleaved
    /// like the `f64` blocks), when this is an `I8` mirror.
    pub fn codes_i8(&self) -> Option<&[i8]> {
        match &self.codes {
            Codes::I8(v) => Some(v),
            Codes::I16(_) => None,
        }
    }

    /// The `i16` code plane, when this is an `I16` mirror.
    pub fn codes_i16(&self) -> Option<&[i16]> {
        match &self.codes {
            Codes::I16(v) => Some(v),
            Codes::I8(_) => None,
        }
    }

    /// Per-`(block, dim)` decode scales.
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Per-`(block, dim)` decode offsets.
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }

    /// Blocks flagged for full-precision fallback.
    pub fn fallback_blocks(&self) -> usize {
        self.fallback.iter().filter(|&&f| f).count()
    }

    /// Bring the mirror up to date with `cols`: encode any appended rows'
    /// blocks (called after `push_row`).
    pub(crate) fn sync(&mut self, cols: &ColumnMajorRows) {
        debug_assert_eq!(self.dim, cols.dim());
        let new_len = cols.len();
        if new_len == self.len {
            return;
        }
        let first_dirty = self.len / BLOCK_ROWS;
        let blocks = new_len.div_ceil(BLOCK_ROWS);
        self.codes.resize(blocks * self.dim * BLOCK_ROWS);
        self.scales.resize(blocks * self.dim, 0.0);
        self.offsets.resize(blocks * self.dim, 0.0);
        self.fallback.resize(blocks, false);
        self.len = new_len;
        for b in first_dirty..blocks {
            self.reencode_block(cols, b);
        }
    }

    /// Re-encode the block containing `row` (called after `update_row`).
    pub(crate) fn reencode_row_block(&mut self, cols: &ColumnMajorRows, row: PointId) {
        self.reencode_block(cols, row as usize / BLOCK_ROWS);
    }

    /// Re-derive scales, offsets, and codes of block `b` from the `f64`
    /// mirror. `O(dim · BLOCK_ROWS)`.
    fn reencode_block(&mut self, cols: &ColumnMajorRows, b: usize) {
        let dim = self.dim;
        let from = (b * BLOCK_ROWS) as PointId;
        let to = cols.len().min((b + 1) * BLOCK_ROWS) as PointId;
        let Some(seg) = cols.segments(from, to).next() else {
            return;
        };
        debug_assert_eq!(seg.lanes, (to - from) as usize);
        let stride = cols.stride();
        let qmax = self.codes.qmax();
        let qmax_f = f64::from(qmax);
        let mut sound = true;
        for j in 0..dim {
            let col = &seg.cols[j * stride..j * stride + seg.lanes];
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in col {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            // Midpoint/half-range via halves so ±huge endpoints cannot
            // overflow to ±inf.
            let offset = 0.5 * lo + 0.5 * hi;
            let half = 0.5 * hi - 0.5 * lo;
            let scale = if half > 0.0 { half / qmax_f } else { 0.0 };
            // The decoded range must stay finite: |offset| + scale·qmax can
            // round past f64::MAX for max-magnitude blocks even though every
            // source value is finite.
            if !offset.is_finite()
                || !scale.is_finite()
                || !(offset.abs() + scale * qmax_f).is_finite()
            {
                sound = false;
            }
            self.scales[b * dim + j] = scale;
            self.offsets[b * dim + j] = offset;
            let base = b * dim * BLOCK_ROWS + j * BLOCK_ROWS;
            match &mut self.codes {
                Codes::I8(v) => encode_col(col, offset, scale, qmax, &mut v[base..]),
                Codes::I16(v) => encode_col(col, offset, scale, qmax, &mut v[base..]),
            }
        }
        self.fallback[b] = !sound;
    }
}

impl HeapSize for QuantizedColumns {
    fn heap_size(&self) -> usize {
        self.codes.heap_size()
            + self.scales.capacity() * 8
            + self.offsets.capacity() * 8
            + self.fallback.capacity()
    }
}

/// Quantize one dimension's lane column into `out[..col.len()]`
/// (zero-padding beyond is left untouched — callers pre-zero on resize).
fn encode_col<T: TryFrom<i32> + Default + Copy>(
    col: &[f64],
    offset: f64,
    scale: f64,
    qmax: i32,
    out: &mut [T],
) {
    if scale <= 0.0 || !scale.is_finite() {
        for o in &mut out[..col.len()] {
            *o = T::default();
        }
        return;
    }
    for (o, &v) in out.iter_mut().zip(col) {
        let q = ((v - offset) / scale).round();
        // The quotient is within ±qmax up to rounding slop; clamp keeps
        // the cast infallible and the decode error within the bound.
        let q = (q.clamp(-f64::from(qmax), f64::from(qmax))) as i32;
        *o = T::try_from(q).unwrap_or_default();
    }
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// Per-segment verdict of the quantized filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockClass {
    /// The block cannot be classified soundly; take the `f64` path.
    Fallback,
    /// Disjoint proven masks; lanes in neither mask need exact
    /// re-verification.
    Classified {
        /// Lanes proven to satisfy the predicate.
        accept: u64,
        /// Lanes proven to fail it.
        reject: u64,
    },
}

/// Per-query classification driver: folds the query into per-block `f32`
/// weights and outward-rounded thresholds, then dispatches the fused
/// kernels. Create once per (query, table) pair; `classify` is called per
/// [`crate::table::ColSegment`].
pub(crate) struct QuantFilter<'a> {
    q: &'a QuantizedColumns,
    a: &'a [f64],
    b: f64,
    leq: bool,
    /// Scratch: per-dimension `f32` weights for the current block.
    w: Vec<f32>,
    /// Fold cache: `(block, t_lo, t_hi)` of the block `w` currently holds.
    /// Sorted candidate ids revisit the same block in consecutive short
    /// runs, so caching the fold makes the per-segment setup O(1) after
    /// the first run instead of O(dim) every time.
    folded: Option<(usize, f32, f32)>,
}

impl<'a> QuantFilter<'a> {
    pub(crate) fn new(query: &'a InequalityQuery, q: &'a QuantizedColumns) -> Self {
        QuantFilter {
            q,
            a: query.a(),
            b: query.b(),
            leq: query.cmp() == Cmp::Leq,
            w: vec![0.0; query.a().len()],
            folded: None,
        }
    }

    /// Classify `lanes` lanes starting at row `first` (all within one
    /// block). Returns disjoint accept/reject masks (bit `l` ↔ row
    /// `first + l`) or `Fallback`.
    pub(crate) fn classify(&mut self, first: PointId, lanes: usize) -> BlockClass {
        let dim = self.a.len();
        let block = first as usize / BLOCK_ROWS;
        let shift = first as usize % BLOCK_ROWS;
        if self.q.fallback[block] {
            return BlockClass::Fallback;
        }
        let (t_lo, t_hi) = match self.folded {
            Some((b, lo, hi)) if b == block => (lo, hi),
            _ => match self.fold(block) {
                Some(bounds) => bounds,
                None => return BlockClass::Fallback,
            },
        };

        let base = block * dim * BLOCK_ROWS + shift;
        let (below, above) = match &self.q.codes {
            Codes::I8(v) => classify_block_i8(&self.w, &v[base..], BLOCK_ROWS, lanes, t_lo, t_hi),
            Codes::I16(v) => classify_block_i16(&self.w, &v[base..], BLOCK_ROWS, lanes, t_lo, t_hi),
        };
        if self.leq {
            BlockClass::Classified {
                accept: below,
                reject: above,
            }
        } else {
            BlockClass::Classified {
                accept: above,
                reject: below,
            }
        }
    }

    /// Fold the query into `block`'s decode, filling `self.w` and the fold
    /// cache. Returns the outward-rounded thresholds, or `None` when the
    /// fold is numerically unsafe (the caller must take the exact path).
    fn fold(&mut self, block: usize) -> Option<(f32, f32)> {
        let dim = self.a.len();
        let scales = &self.q.scales[block * dim..(block + 1) * dim];
        let offsets = &self.q.offsets[block * dim..(block + 1) * dim];
        let qmax_f = f64::from(self.q.codes.qmax());

        // Fold the query into this block's decode: weights, bias, and the
        // magnitudes the error bound is built from.
        let mut s_sum = 0.0f64;
        let mut bias = -self.b;
        let mut mag = self.b.abs();
        for j in 0..dim {
            let aj = self.a[j];
            let sj = scales[j];
            let oj = offsets[j];
            self.w[j] = (aj * sj) as f32;
            s_sum += aj.abs() * sj;
            bias += aj * oj;
            mag += aj.abs() * (oj.abs() + sj * qmax_f);
        }
        // f32 overflow guard: with Σ|w|·qmax below this, no partial sum
        // can leave the finite f32 range, so D is always finite.
        if !bias.is_finite() || !mag.is_finite() || s_sum * qmax_f >= 1e36 {
            return None;
        }
        let d_f = dim as f64;
        let e = self.q.slack
            * (0.5 * s_sum * (1.0 + 1e-6)
                + (d_f + 6.0) * 2f64.powi(-23) * s_sum * qmax_f
                + (d_f + 6.0) * 2f64.powi(-51) * mag
                + (d_f + 4.0) * qmax_f * f64::from(f32::MIN_POSITIVE));
        if !e.is_finite() {
            return None;
        }

        // Outward-rounded f32 thresholds. `below` lanes have D ≤ t_lo,
        // `above` lanes have D ≥ t_hi; meaning depends on direction.
        let (t_lo, t_hi) = if self.leq {
            // accept ⇐ D ≤ −E − bias; reject ⇐ D > E − bias.
            (f32_at_most(-e - bias), f32_strictly_above(e - bias))
        } else {
            // reject ⇐ D < −E − bias; accept ⇐ D ≥ E − bias.
            (f32_strictly_below(-e - bias), f32_at_least(e - bias))
        };
        self.folded = Some((block, t_lo, t_hi));
        Some((t_lo, t_hi))
    }
}

fn next_down(t: f32) -> f32 {
    if t.is_nan() || t == f32::NEG_INFINITY {
        t
    } else if t == 0.0 {
        -f32::from_bits(1)
    } else if t > 0.0 {
        f32::from_bits(t.to_bits() - 1)
    } else {
        f32::from_bits(t.to_bits() + 1)
    }
}

fn next_up(t: f32) -> f32 {
    if t.is_nan() || t == f32::INFINITY {
        t
    } else if t == 0.0 {
        f32::from_bits(1)
    } else if t > 0.0 {
        f32::from_bits(t.to_bits() + 1)
    } else {
        f32::from_bits(t.to_bits() - 1)
    }
}

/// Largest f32 `t` with `t ≤ x`.
fn f32_at_most(x: f64) -> f32 {
    let t = x as f32;
    if f64::from(t) > x {
        next_down(t)
    } else {
        t
    }
}

/// Smallest f32 `t` with `t ≥ x`.
fn f32_at_least(x: f64) -> f32 {
    let t = x as f32;
    if f64::from(t) < x {
        next_up(t)
    } else {
        t
    }
}

/// Largest f32 `t` with `t < x`.
fn f32_strictly_below(x: f64) -> f32 {
    let t = x as f32;
    if f64::from(t) >= x {
        next_down(t)
    } else {
        t
    }
}

/// Smallest f32 `t` with `t > x`.
fn f32_strictly_above(x: f64) -> f32 {
    let t = x as f32;
    if f64::from(t) <= x {
        next_up(t)
    } else {
        t
    }
}

// ---------------------------------------------------------------------------
// Per-query filter stats
// ---------------------------------------------------------------------------

/// What the quantized filter did for one query (all zeros when the tier is
/// off). Nested in [`crate::QueryStats`] and summed by
/// [`crate::StatsAggregator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantFilterStats {
    /// Candidate lanes that entered the quantized filter.
    pub lanes: usize,
    /// Lanes proven to satisfy the predicate without touching `f64` rows.
    pub accepted: usize,
    /// Lanes proven to fail it.
    pub rejected: usize,
    /// Lanes inside the uncertainty band, re-verified at full precision.
    pub reverified: usize,
    /// Lanes classified by the full-precision fallback (unsound blocks or
    /// overflow guards).
    pub fallback: usize,
    /// The tier that served this query.
    pub tier: QuantTier,
}

impl QuantFilterStats {
    /// Accumulate `other` (counter sums; tier latest-wins among non-off).
    pub fn merge(&mut self, other: &QuantFilterStats) {
        self.lanes += other.lanes;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.reverified += other.reverified;
        self.fallback += other.fallback;
        if other.tier != QuantTier::Off {
            self.tier = other.tier;
        }
    }
}

// ---------------------------------------------------------------------------
// Autotuner
// ---------------------------------------------------------------------------

/// Relaxed atomic workload counters feeding [`retune`]. Owned by each
/// [`crate::PlanarIndexSet`]; recorded from `&self` query paths.
#[derive(Debug, Default)]
pub struct QuantTuner {
    queries: AtomicU64,
    lanes: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    reverified: AtomicU64,
    fallback: AtomicU64,
    /// Set when [`retune`] disabled the tier for band width; cleared on
    /// compaction so the data change re-earns a trial.
    demoted: AtomicBool,
}

impl Clone for QuantTuner {
    fn clone(&self) -> Self {
        QuantTuner {
            queries: AtomicU64::new(self.queries.load(Ordering::Relaxed)),
            lanes: AtomicU64::new(self.lanes.load(Ordering::Relaxed)),
            accepted: AtomicU64::new(self.accepted.load(Ordering::Relaxed)),
            rejected: AtomicU64::new(self.rejected.load(Ordering::Relaxed)),
            reverified: AtomicU64::new(self.reverified.load(Ordering::Relaxed)),
            fallback: AtomicU64::new(self.fallback.load(Ordering::Relaxed)),
            demoted: AtomicBool::new(self.demoted.load(Ordering::Relaxed)),
        }
    }
}

impl QuantTuner {
    /// Record one query's filter outcome.
    pub fn observe(&self, stats: &QuantFilterStats) {
        if stats.tier == QuantTier::Off {
            return;
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.lanes.fetch_add(stats.lanes as u64, Ordering::Relaxed);
        self.accepted
            .fetch_add(stats.accepted as u64, Ordering::Relaxed);
        self.rejected
            .fetch_add(stats.rejected as u64, Ordering::Relaxed);
        self.reverified
            .fetch_add(stats.reverified as u64, Ordering::Relaxed);
        self.fallback
            .fetch_add(stats.fallback as u64, Ordering::Relaxed);
    }

    /// Snapshot the window for [`retune`].
    pub fn observations(&self) -> QuantObservations {
        QuantObservations {
            queries: self.queries.load(Ordering::Relaxed),
            lanes: self.lanes.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            reverified: self.reverified.load(Ordering::Relaxed),
            fallback: self.fallback.load(Ordering::Relaxed),
            demoted: self.demoted.load(Ordering::Relaxed),
        }
    }

    /// Overwrite this window's counters with `other`'s (the demotion flag
    /// is untouched — only the owner retunes, so it stays authoritative).
    ///
    /// Concurrency support: epoch-published clones of an index set carry
    /// their own tuner copy, and reader queries accumulate on that copy
    /// while the staged writer set sees nothing. Adopting the published
    /// clone's counters right before a retune folds those observations
    /// back in. Counters only grow between publishes, so a plain copy
    /// (not a sum) is the lossless merge.
    pub fn adopt(&self, other: &QuantTuner) {
        self.queries
            .store(other.queries.load(Ordering::Relaxed), Ordering::Relaxed);
        self.lanes
            .store(other.lanes.load(Ordering::Relaxed), Ordering::Relaxed);
        self.accepted
            .store(other.accepted.load(Ordering::Relaxed), Ordering::Relaxed);
        self.rejected
            .store(other.rejected.load(Ordering::Relaxed), Ordering::Relaxed);
        self.reverified
            .store(other.reverified.load(Ordering::Relaxed), Ordering::Relaxed);
        self.fallback
            .store(other.fallback.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset the observation window (after a retune applied).
    pub fn reset_window(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.lanes.store(0, Ordering::Relaxed);
        self.accepted.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.reverified.store(0, Ordering::Relaxed);
        self.fallback.store(0, Ordering::Relaxed);
    }

    /// Record that the tuner disabled the tier.
    pub fn mark_demoted(&self) {
        self.demoted.store(true, Ordering::Relaxed);
    }

    /// The data changed (compaction): let the tier re-earn a trial.
    pub fn clear_demotion(&self) {
        self.demoted.store(false, Ordering::Relaxed);
    }
}

/// A point-in-time read of a [`QuantTuner`] window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantObservations {
    /// Queries that used the quantized filter.
    pub queries: u64,
    /// Lanes classified.
    pub lanes: u64,
    /// Lanes proven satisfying.
    pub accepted: u64,
    /// Lanes proven failing.
    pub rejected: u64,
    /// Lanes re-verified exactly.
    pub reverified: u64,
    /// Lanes through the full-precision fallback.
    pub fallback: u64,
    /// Whether the tuner previously disabled the tier.
    pub demoted: bool,
}

impl QuantObservations {
    /// Fraction of classified lanes that needed full precision anyway.
    pub fn band_rate(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            (self.reverified + self.fallback) as f64 / self.lanes as f64
        }
    }
}

/// Autotuner thresholds. Defaults fit the benched synthetic and paper
/// workloads; see DESIGN.md §15 for the derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantAutotuneConfig {
    /// Tables smaller than this stay `Off` (prep cost cannot amortize and
    /// the whole table is cache-resident anyway).
    pub min_rows: usize,
    /// Classified lanes required before the tuner trusts the window.
    pub min_lanes: u64,
    /// Band rate above which `I8` demotes to `I16`.
    pub demote_band: f64,
    /// Band rate above which `I16` demotes to `Off`.
    pub disable_band: f64,
    /// Band rate below which `I16` promotes to `I8`.
    pub promote_band: f64,
    /// Band rate below which slack is widened (extra robustness margin).
    pub widen_band: f64,
    /// Upper bound for tuner-chosen slack.
    pub max_slack: f64,
}

impl Default for QuantAutotuneConfig {
    fn default() -> Self {
        QuantAutotuneConfig {
            min_rows: 4096,
            min_lanes: 10_000,
            demote_band: 0.35,
            disable_band: 0.60,
            promote_band: 0.08,
            widen_band: 0.01,
            max_slack: 4.0,
        }
    }
}

/// Pure tuner policy: next `QuantPolicy` from the current tier, table
/// size, and an observation window. Deterministic and side-effect free so
/// the policy is unit-testable; callers apply the result and manage the
/// window.
pub fn retune(
    current: QuantPolicy,
    n_rows: usize,
    obs: &QuantObservations,
    cfg: &QuantAutotuneConfig,
) -> QuantPolicy {
    if n_rows < cfg.min_rows {
        return QuantPolicy::off();
    }
    if current.tier == QuantTier::Off {
        // Earn a trial at the conservative width — unless the tuner
        // itself demoted to Off and the data hasn't changed since.
        return if obs.demoted {
            QuantPolicy::off()
        } else {
            QuantPolicy::tier(QuantTier::I16)
        };
    }
    if obs.lanes < cfg.min_lanes {
        return current; // window too small to act on
    }
    let band = obs.band_rate();
    let tier = match current.tier {
        QuantTier::I8 if band > cfg.demote_band => QuantTier::I16,
        QuantTier::I16 if band > cfg.disable_band => QuantTier::Off,
        QuantTier::I16 if band < cfg.promote_band => QuantTier::I8,
        t => t,
    };
    if tier == QuantTier::Off {
        return QuantPolicy::off();
    }
    // Slack: widen when the workload never grazes the thresholds (free
    // margin), tighten back to 1 otherwise. Changing tier resets to 1.
    let slack = if tier == current.tier && band < cfg.widen_band {
        (current.slack * 2.0).clamp(1.0, cfg.max_slack)
    } else {
        1.0
    };
    QuantPolicy { tier, slack }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::FeatureTable;
    use planar_geom::dot_slices;

    fn table_from(rows: &[Vec<f64>]) -> FeatureTable {
        FeatureTable::from_rows(rows[0].len(), rows.iter().cloned()).unwrap()
    }

    fn lcg_rows(n: usize, dim: usize, scale: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * scale
                    })
                    .collect()
            })
            .collect()
    }

    fn decode(q: &QuantizedColumns, row: usize, j: usize) -> f64 {
        let b = row / BLOCK_ROWS;
        let l = row % BLOCK_ROWS;
        let dim = q.scales.len() / q.fallback.len();
        let s = q.scales[b * dim + j];
        let o = q.offsets[b * dim + j];
        let idx = b * dim * BLOCK_ROWS + j * BLOCK_ROWS + l;
        let code = match &q.codes {
            Codes::I8(v) => f64::from(v[idx]),
            Codes::I16(v) => f64::from(v[idx]),
        };
        o + s * code
    }

    #[test]
    fn codec_error_is_within_half_scale() {
        for tier in [QuantTier::I8, QuantTier::I16] {
            for scale in [1e-12, 1.0, 1e6, 1e300] {
                let rows = lcg_rows(150, 3, scale, 42);
                let t = table_from(&rows);
                let q = QuantizedColumns::encode(t.columns(), tier, 1.0);
                assert_eq!(q.len(), 150);
                assert_eq!(q.fallback_blocks(), 0, "scale {scale}");
                let dim = 3;
                for (r, row) in rows.iter().enumerate() {
                    for (j, &x) in row.iter().enumerate().take(dim) {
                        let s = q.scales[(r / BLOCK_ROWS) * dim + j];
                        let err = (decode(&q, r, j) - x).abs();
                        assert!(
                            err <= 0.5 * s * (1.0 + 1e-6) || err == 0.0,
                            "tier {tier:?} scale {scale} row {r} dim {j}: err {err}, s {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn codec_handles_denormals_and_constants() {
        // Denormal magnitudes and constant dimensions (zero range).
        let rows = vec![
            vec![1e-310, 5.0],
            vec![-3e-312, 5.0],
            vec![2e-310, 5.0],
            vec![0.0, 5.0],
        ];
        let t = table_from(&rows);
        for tier in [QuantTier::I8, QuantTier::I16] {
            let q = QuantizedColumns::encode(t.columns(), tier, 1.0);
            assert_eq!(q.fallback_blocks(), 0);
            // Constant dimension decodes exactly.
            for r in 0..rows.len() {
                assert_eq!(decode(&q, r, 1), 5.0);
            }
            // Denormal dimension stays within half a (subnormal) scale.
            let s = q.scales[0];
            for (r, row) in rows.iter().enumerate() {
                assert!((decode(&q, r, 0) - row[0]).abs() <= 0.75 * s.max(f64::MIN_POSITIVE));
            }
        }
    }

    #[test]
    fn codec_flags_overflowing_blocks_as_fallback() {
        // ±f64::MAX rows: midpoint and scale are finite (computed in
        // halves), but the decoded range |offset| + scale·qmax rounds past
        // f64::MAX, so the block must be flagged for full-precision
        // fallback rather than encoded with an overflowing decode. ±inf
        // rows never reach the codec at all — push_row rejects them with
        // PlanarError::NotFinite.
        let rows = vec![vec![f64::MAX], vec![-f64::MAX], vec![0.0]];
        let t = table_from(&rows);
        let q = QuantizedColumns::encode(t.columns(), QuantTier::I16, 1.0);
        assert_eq!(q.fallback_blocks(), 1);
        // Large-but-representable magnitudes still encode normally.
        let rows = vec![vec![1e300], vec![-1e300], vec![0.0]];
        let t = table_from(&rows);
        let q = QuantizedColumns::encode(t.columns(), QuantTier::I16, 1.0);
        assert_eq!(q.fallback_blocks(), 0);
        for (r, row) in rows.iter().enumerate() {
            let s = q.scales[0];
            assert!((decode(&q, r, 0) - row[0]).abs() <= 0.5 * s * (1.0 + 1e-6));
        }
    }

    #[test]
    fn filter_verdicts_are_sound_vs_exact_path() {
        for tier in [QuantTier::I8, QuantTier::I16] {
            for (dim, scale) in [(1, 1.0), (4, 100.0), (7, 1e-6), (8, 1e8)] {
                let rows = lcg_rows(200, dim, scale, dim as u64 * 31);
                let t = table_from(&rows);
                let q = QuantizedColumns::encode(t.columns(), tier, 1.0);
                for cmp in [Cmp::Leq, Cmp::Geq] {
                    let a: Vec<f64> = (0..dim).map(|j| 1.0 + j as f64 * 0.5).collect();
                    // Threshold near the middle of the dot distribution.
                    let mid = dot_slices(&a, t.row(100));
                    let query = InequalityQuery::new(a.clone(), cmp, mid).unwrap();
                    let mut f = QuantFilter::new(&query, &q);
                    let mut classified = 0usize;
                    for first in (0..200u32).step_by(BLOCK_ROWS) {
                        let lanes = (200 - first as usize).min(BLOCK_ROWS);
                        match f.classify(first, lanes) {
                            BlockClass::Fallback => {}
                            BlockClass::Classified { accept, reject } => {
                                assert_eq!(accept & reject, 0, "masks must be disjoint");
                                for l in 0..lanes {
                                    let id = first + l as u32;
                                    let exact = query.satisfies_dot(dot_slices(&a, t.row(id)));
                                    if accept >> l & 1 == 1 {
                                        classified += 1;
                                        assert!(exact, "tier {tier:?} {cmp:?} accept lane {id}");
                                    }
                                    if reject >> l & 1 == 1 {
                                        classified += 1;
                                        assert!(!exact, "tier {tier:?} {cmp:?} reject lane {id}");
                                    }
                                }
                            }
                        }
                    }
                    // The filter must actually classify most lanes for a
                    // mid-distribution threshold (else it is useless).
                    assert!(
                        classified > 100,
                        "tier {tier:?} {cmp:?} dim {dim} classified only {classified}"
                    );
                }
            }
        }
    }

    #[test]
    fn filter_huge_magnitudes_fall_back() {
        let rows = vec![vec![f64::MAX], vec![-f64::MAX], vec![0.0]];
        let t = table_from(&rows);
        let q = QuantizedColumns::encode(t.columns(), QuantTier::I8, 1.0);
        let query = InequalityQuery::new(vec![2.0], Cmp::Leq, 0.0).unwrap();
        let mut f = QuantFilter::new(&query, &q);
        // mag = 2·f64::MAX overflows → the classifier must refuse.
        assert_eq!(f.classify(0, 3), BlockClass::Fallback);
    }

    #[test]
    fn mirror_stays_in_sync_under_mutation() {
        let rows = lcg_rows(100, 2, 10.0, 7);
        let mut t = table_from(&rows);
        t.set_quant_policy(QuantPolicy::tier(QuantTier::I16));
        t.push_row(&[123.0, -4.0]).unwrap();
        t.update_row(3, &[9.0, 9.0]).unwrap();
        let q = t.quant().unwrap();
        assert_eq!(q.len(), 101);
        assert!((decode(q, 100, 0) - 123.0).abs() <= q.scales()[2] * 0.51 + 1e-9);
        assert!((decode(q, 3, 1) - 9.0).abs() <= q.scales()[1] * 0.51 + 1e-9);
    }

    #[test]
    fn outward_rounding_helpers() {
        for x in [0.0f64, 1.0, -1.0, 1e-40, 1e40, 0.1, -0.1, 3.9e38, -3.9e38] {
            assert!(f64::from(f32_at_most(x)) <= x);
            assert!(f64::from(f32_at_least(x)) >= x);
            assert!(f64::from(f32_strictly_below(x)) < x || x == f64::from(f32::NEG_INFINITY));
            assert!(f64::from(f32_strictly_above(x)) > x || x == f64::from(f32::INFINITY));
        }
    }

    #[test]
    fn retune_policy_transitions() {
        let cfg = QuantAutotuneConfig::default();
        let obs0 = QuantObservations::default();
        // Small tables stay off.
        assert_eq!(
            retune(QuantPolicy::tier(QuantTier::I8), 100, &obs0, &cfg),
            QuantPolicy::off()
        );
        // Fresh large tables earn an I16 trial.
        assert_eq!(
            retune(QuantPolicy::off(), 100_000, &obs0, &cfg).tier,
            QuantTier::I16
        );
        // …but not after a tuner demotion.
        let demoted = QuantObservations {
            demoted: true,
            ..obs0
        };
        assert_eq!(
            retune(QuantPolicy::off(), 100_000, &demoted, &cfg).tier,
            QuantTier::Off
        );
        // Tight band promotes I16 → I8.
        let tight = QuantObservations {
            lanes: 100_000,
            accepted: 60_000,
            rejected: 39_500,
            reverified: 500,
            ..obs0
        };
        assert_eq!(
            retune(QuantPolicy::tier(QuantTier::I16), 100_000, &tight, &cfg).tier,
            QuantTier::I8
        );
        // Wide band demotes I8 → I16 → Off.
        let wide = QuantObservations {
            lanes: 100_000,
            accepted: 20_000,
            rejected: 10_000,
            reverified: 70_000,
            ..obs0
        };
        assert_eq!(
            retune(QuantPolicy::tier(QuantTier::I8), 100_000, &wide, &cfg).tier,
            QuantTier::I16
        );
        assert_eq!(
            retune(QuantPolicy::tier(QuantTier::I16), 100_000, &wide, &cfg).tier,
            QuantTier::Off
        );
        // Near-zero band widens slack, capped.
        let calm = QuantObservations {
            lanes: 1_000_000,
            accepted: 999_900,
            rejected: 50,
            reverified: 50,
            ..obs0
        };
        let p = retune(QuantPolicy::tier(QuantTier::I8), 100_000, &calm, &cfg);
        assert_eq!(p.tier, QuantTier::I8);
        assert!(p.slack > 1.0 && p.slack <= cfg.max_slack);
        // Small windows keep the current policy.
        let tiny = QuantObservations { lanes: 10, ..obs0 };
        let cur = QuantPolicy {
            tier: QuantTier::I8,
            slack: 2.0,
        };
        assert_eq!(retune(cur, 100_000, &tiny, &cfg), cur);
    }

    #[test]
    fn tuner_counters_accumulate_and_reset() {
        let tuner = QuantTuner::default();
        tuner.observe(&QuantFilterStats {
            lanes: 100,
            accepted: 60,
            rejected: 30,
            reverified: 8,
            fallback: 2,
            tier: QuantTier::I8,
        });
        tuner.observe(&QuantFilterStats::default()); // Off: ignored
        let obs = tuner.observations();
        assert_eq!(obs.queries, 1);
        assert_eq!(obs.lanes, 100);
        assert!((obs.band_rate() - 0.1).abs() < 1e-12);
        tuner.reset_window();
        assert_eq!(tuner.observations().lanes, 0);
    }
}
