//! Half-space range searching — the identity-φ special case (paper
//! Remark 3 and Table 1).
//!
//! When `φ` is the identity, Problem 1 reduces to the classical half-space
//! range searching problem of Agarwal et al. / Matoušek / Arya et al., and
//! Problem 2 to the hyperplane-to-nearest-point query. This thin wrapper
//! fixes `φ = id` and speaks in points and hyperplanes rather than feature
//! rows — the API a computational-geometry user expects.

use crate::domain::ParameterDomain;
use crate::multi::{IndexConfig, PlanarIndexSet, QueryOutcome, TopKOutcome};
use crate::query::{Cmp, InequalityQuery, TopKQuery};
use crate::store::KeyStore;
use crate::table::{FeatureTable, PointId};
use crate::{Result, VecStore};
use planar_geom::Hyperplane;

/// Which closed half-space of a hyperplane to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HalfSpace {
    /// `⟨a, x⟩ ≤ b`.
    Below,
    /// `⟨a, x⟩ ≥ b`.
    Above,
}

/// A half-space range searching index over a fixed point set.
#[derive(Debug, Clone)]
pub struct HalfSpaceIndex<S: KeyStore = VecStore> {
    set: PlanarIndexSet<S>,
}

impl<S: KeyStore> HalfSpaceIndex<S> {
    /// Index `points` for query hyperplanes whose normals fall in `domain`.
    ///
    /// # Errors
    ///
    /// Table/domain validation and index-construction errors.
    pub fn build(
        points: Vec<Vec<f64>>,
        domain: ParameterDomain,
        config: IndexConfig,
    ) -> Result<Self> {
        let dim = domain.dim();
        let table = FeatureTable::from_rows(dim, points)?;
        Ok(Self {
            set: PlanarIndexSet::build(table, domain, config)?,
        })
    }

    /// All points in the chosen closed half-space of `plane`.
    ///
    /// # Errors
    ///
    /// Dimensionality mismatch; [`PlanarError::InvalidQuery`] when the
    /// plane's normal has a zero component (every axis is thresholded
    /// here, so the per-axis intercept would be undefined).
    ///
    /// [`PlanarError::InvalidQuery`]: crate::PlanarError::InvalidQuery
    pub fn report(&self, plane: &Hyperplane, side: HalfSpace) -> Result<QueryOutcome> {
        self.set.query(&self.to_query(plane, side)?)
    }

    /// The `k` points of the chosen half-space nearest to `plane`.
    ///
    /// # Errors
    ///
    /// Dimensionality mismatch; `k = 0`; [`PlanarError::InvalidQuery`]
    /// when the plane's normal has a zero component.
    ///
    /// [`PlanarError::InvalidQuery`]: crate::PlanarError::InvalidQuery
    pub fn nearest(&self, plane: &Hyperplane, side: HalfSpace, k: usize) -> Result<TopKOutcome> {
        self.set
            .top_k(&TopKQuery::new(self.to_query(plane, side)?, k)?)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The underlying index set.
    pub fn index_set(&self) -> &PlanarIndexSet<S> {
        &self.set
    }

    /// Access a point by id.
    pub fn point(&self, id: PointId) -> &[f64] {
        self.set.table().row(id)
    }

    fn to_query(&self, plane: &Hyperplane, side: HalfSpace) -> Result<InequalityQuery> {
        let cmp = match side {
            HalfSpace::Below => Cmp::Leq,
            HalfSpace::Above => Cmp::Geq,
        };
        // Hyperplane validates its normal finite and non-zero as a
        // vector, but individual components may still be zero — and here
        // every axis is thresholded, so a zero component would poison the
        // intercept. Surface the typed error instead of propagating NaN.
        let q = InequalityQuery::new(plane.normal().as_slice().to_vec(), cmp, plane.offset())?;
        q.require_nonzero_coefficients()?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_geom::Vector;

    fn index() -> HalfSpaceIndex {
        let points: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![1.0 + (i % 14) as f64, 1.0 + (i % 11) as f64])
            .collect();
        HalfSpaceIndex::build(
            points,
            ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap(),
            IndexConfig::with_budget(8),
        )
        .unwrap()
    }

    fn plane(a: &[f64], b: f64) -> Hyperplane {
        Hyperplane::new(Vector::new(a.to_vec()).unwrap(), b).unwrap()
    }

    #[test]
    fn report_splits_the_point_set() {
        let idx = index();
        let h = plane(&[1.0, 1.0], 14.0);
        let below = idx.report(&h, HalfSpace::Below).unwrap();
        let above = idx.report(&h, HalfSpace::Above).unwrap();
        // Every point is on at least one side; points exactly on the plane
        // are on both.
        assert!(below.matches.len() + above.matches.len() >= idx.len());
        for &id in &below.matches {
            assert!(h.eval(idx.point(id)).unwrap() <= 1e-9);
        }
        for &id in &above.matches {
            assert!(h.eval(idx.point(id)).unwrap() >= -1e-9);
        }
    }

    #[test]
    fn nearest_returns_closest_points() {
        let idx = index();
        let h = plane(&[1.0, 2.0], 20.0);
        let out = idx.nearest(&h, HalfSpace::Below, 4).unwrap();
        assert_eq!(out.neighbors.len(), 4);
        // Distances ascend and match the hyperplane distance formula.
        for w in out.neighbors.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for (id, d) in &out.neighbors {
            let true_d = h.distance_to(idx.point(*id)).unwrap();
            assert!((true_d - d).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_normal_component_is_a_typed_error() {
        use crate::query::InvalidQueryReason;
        use crate::PlanarError;
        let idx = index();
        // A zero component passes Hyperplane validation (the vector as a
        // whole is non-zero) but every axis here is thresholded.
        let h = plane(&[1.0, 0.0], 5.0);
        assert_eq!(
            idx.report(&h, HalfSpace::Below).unwrap_err(),
            PlanarError::InvalidQuery(InvalidQueryReason::ZeroCoefficient { axis: 1 })
        );
        assert_eq!(
            idx.nearest(&h, HalfSpace::Above, 3).unwrap_err(),
            PlanarError::InvalidQuery(InvalidQueryReason::ZeroCoefficient { axis: 1 })
        );
    }

    #[test]
    fn empty_index() {
        let idx = HalfSpaceIndex::<VecStore>::build(
            vec![],
            ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap(),
            IndexConfig::with_budget(2),
        )
        .unwrap();
        assert!(idx.is_empty());
        let h = plane(&[1.0, 1.0], 5.0);
        assert!(idx.report(&h, HalfSpace::Below).unwrap().matches.is_empty());
    }
}
