//! The multi-index Planar structure (paper §5): a budget of Planar indices
//! with different normals, best-index selection per query, octant handling,
//! and dynamic maintenance.
//!
//! [`PlanarIndexSet`] is the type applications use. It owns the feature
//! table, a `planar_geom::Normalizer` fitted to the parameter domain's
//! octant, and `budget` [`SingleIndex`]es whose normals are sampled from the
//! parameter domains (§5.2) with redundant (parallel) normals removed.

use crate::domain::ParameterDomain;
use crate::health::{HealthReport, IndexHealth};
use crate::index::{AuxFilter, SingleIndex, TopKStats};
use crate::parallel::{self, ExecutionConfig, QueryScratch};
use crate::query::{Cmp, InequalityQuery, TopKQuery};
use crate::scan::TopKBuffer;
use crate::selection::{angle_score, argmin_by_score_filtered, stretch_score, SelectionStrategy};
use crate::stats::{ExecutionPath, QueryStats, ScanReason, ServedBy};
use crate::store::{KeyStore, VecStore};
use crate::table::{FeatureTable, PointId};
use crate::{BPlusTree, HeapSize, PlanarError, Result};
use planar_geom::{NormalizedQuery, Normalizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tolerance on the absolute cosine for declaring two normals parallel
/// (redundant-index removal, §5.2).
const PARALLEL_EPS: f64 = 1e-9;

/// How many times the builder re-samples before accepting fewer than
/// `budget` distinct normals (small discrete domains may not have `budget`
/// non-parallel normals at all — e.g. RQ=2 in 2 dimensions).
const RESAMPLE_FACTOR: usize = 8;

/// Construction parameters for a [`PlanarIndexSet`].
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Number of Planar indices to build (the paper's budget `b`).
    pub budget: usize,
    /// Best-index selection heuristic (§5.1). Defaults to stretch
    /// minimization, which the paper found superior.
    pub strategy: SelectionStrategy,
    /// Seed for normal sampling — index construction is deterministic
    /// given the seed.
    pub seed: u64,
    /// Remove redundant (parallel) normals (§5.2). On by default; the
    /// `ablation-dedup` bench turns it off.
    pub dedup: bool,
}

impl IndexConfig {
    /// A config with the given budget and the paper's defaults otherwise.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            budget,
            strategy: SelectionStrategy::MinStretch,
            seed: 0x9E37_79B9,
            dedup: true,
        }
    }

    /// Override the selection strategy.
    pub fn strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable/disable redundant-normal removal.
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }
}

/// Result of an inequality query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Ids of all satisfying points. Order is unspecified (interval order
    /// for indexed execution, id order for scans) — use
    /// [`Self::sorted_ids`] for a canonical order.
    pub matches: Vec<PointId>,
    /// Execution statistics.
    pub stats: QueryStats,
    /// Serving provenance: which index answered, or whether the exact scan
    /// fallback served — [`ServedBy::Degraded`] means it did so because
    /// every index was quarantined.
    pub served_by: ServedBy,
}

impl QueryOutcome {
    /// The matching ids in ascending order.
    pub fn sorted_ids(&self) -> Vec<PointId> {
        let mut ids = self.matches.clone();
        ids.sort_unstable();
        ids
    }
}

/// Result of a top-k nearest-neighbor query.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKOutcome {
    /// `(id, distance)` pairs sorted by ascending distance to the query
    /// hyperplane; at most `k` entries, all satisfying the inequality.
    pub neighbors: Vec<(PointId, f64)>,
    /// Execution statistics (`checked()` is Table 3's "checked points").
    pub stats: TopKStats,
    /// Serving provenance — see [`QueryOutcome::served_by`].
    pub served_by: ServedBy,
}

/// Second pass over a joined batch: count the slots that did run (anything
/// not a deadline placeholder, including per-query errors — those executed,
/// they just failed) and stamp that count into every
/// [`ServedBy::Partial::completed`]. Returns the number of skipped slots.
pub(crate) fn stamp_partial_completed<O>(
    results: &mut [Result<O>],
    mut served_by: impl FnMut(&mut O) -> &mut ServedBy,
) -> usize {
    let mut skipped = 0usize;
    for out in results.iter_mut().flatten() {
        if served_by(out).is_partial() {
            skipped += 1;
        }
    }
    if skipped == 0 {
        return 0;
    }
    let completed = results.len() - skipped;
    for out in results.iter_mut().flatten() {
        if let ServedBy::Partial { completed: c, .. } = served_by(out) {
            *c = completed;
        }
    }
    skipped
}

/// A budget of Planar indices over one dataset — the main entry point of
/// this crate. Generic over the key store: [`VecStore`] (default) for
/// read-heavy workloads, [`BPlusTree`] for update-heavy ones.
#[derive(Debug, Clone)]
pub struct PlanarIndexSet<S: KeyStore = VecStore> {
    table: FeatureTable,
    domain: ParameterDomain,
    normalizer: Normalizer,
    indices: Vec<SingleIndex<S>>,
    strategy: SelectionStrategy,
    deleted: Vec<bool>,
    n_live: usize,
    /// `quarantined[pos]` — the index at `pos` failed verification or could
    /// not be recovered from a snapshot; the planner skips it until
    /// [`Self::rebuild_quarantined`] restores it.
    quarantined: Vec<bool>,
    /// Reused old-row buffer for `update_point`/`delete_point`, so the
    /// mutation path is allocation-free after the first call.
    row_scratch: Vec<f64>,
    /// Workload counters feeding the quantization autotuner (see
    /// [`crate::quant::retune`]); recorded from `&self` query paths.
    quant_tuner: crate::quant::QuantTuner,
}

/// A [`PlanarIndexSet`] backed by the B+-tree store: `O(d'·log n)` dynamic
/// point updates (paper §4.4).
pub type DynamicPlanarIndexSet = PlanarIndexSet<BPlusTree>;

impl<S: KeyStore> PlanarIndexSet<S> {
    /// Build an index set over `table` for queries drawn from `domain`.
    ///
    /// Normals are sampled uniformly from the domain (§5.2), redundant
    /// (parallel) ones removed. Construction is `O(budget · n log n)`.
    ///
    /// # Errors
    ///
    /// [`PlanarError::InvalidBudget`] on a zero budget, and
    /// [`PlanarError::DimensionMismatch`] when domain and table disagree.
    pub fn build(
        table: FeatureTable,
        domain: ParameterDomain,
        config: IndexConfig,
    ) -> Result<Self> {
        Self::validate_build(&table, &domain, &config)?;
        let normals = Self::sample_normals(&domain, &config);
        Self::with_normals(table, domain, normals, config.strategy)
    }

    /// [`Self::build`] with the budget-`b` independent [`SingleIndex`]
    /// constructions distributed over `exec.threads` scoped worker threads.
    ///
    /// Normal sampling stays sequential (one RNG stream), so the resulting
    /// set is identical to [`Self::build`] for every thread count.
    ///
    /// # Errors
    ///
    /// Same as [`Self::build`].
    pub fn build_with(
        table: FeatureTable,
        domain: ParameterDomain,
        config: IndexConfig,
        exec: &ExecutionConfig,
    ) -> Result<Self>
    where
        S: Send,
    {
        Self::validate_build(&table, &domain, &config)?;
        let normals = Self::sample_normals(&domain, &config);
        Self::with_normals_parallel(table, domain, normals, config.strategy, exec)
    }

    fn validate_build(
        table: &FeatureTable,
        domain: &ParameterDomain,
        config: &IndexConfig,
    ) -> Result<()> {
        if config.budget == 0 {
            return Err(PlanarError::InvalidBudget);
        }
        if domain.dim() != table.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: table.dim(),
                found: domain.dim(),
            });
        }
        Ok(())
    }

    fn sample_normals(domain: &ParameterDomain, config: &IndexConfig) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut normals: Vec<Vec<f64>> = Vec::with_capacity(config.budget);
        let mut attempts = 0;
        let max_attempts = config.budget * RESAMPLE_FACTOR;
        while normals.len() < config.budget && attempts < max_attempts {
            attempts += 1;
            let c = domain.sample_normal_abs(&mut rng);
            if config.dedup && Self::is_redundant(&normals, &c) {
                continue;
            }
            normals.push(c);
        }
        if normals.is_empty() {
            // Degenerate domain (single possible normal): keep one sample.
            normals.push(domain.sample_normal_abs(&mut rng));
        }
        normals
    }

    /// Build with explicit normalized-space normals (each strictly
    /// positive). Useful when good normals are known — e.g. the
    /// moving-object application uses the exact parameter vectors of a few
    /// future time instants.
    ///
    /// # Errors
    ///
    /// [`PlanarError::InvalidBudget`] when `normals` is empty, plus
    /// [`SingleIndex::build`] validation per normal.
    pub fn with_normals(
        table: FeatureTable,
        domain: ParameterDomain,
        normals: Vec<Vec<f64>>,
        strategy: SelectionStrategy,
    ) -> Result<Self> {
        let normalizer = Self::validate_normals(&table, &domain, &normals)?;
        let indices = normals
            .into_iter()
            .map(|c| SingleIndex::build(&table, &normalizer, c))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::from_built(
            table, domain, normalizer, indices, strategy,
        ))
    }

    /// [`Self::with_normals`] with index construction distributed over
    /// `exec.threads` scoped worker threads — each normal's sort is
    /// independent, so the resulting indices are identical to the serial
    /// build in content and order.
    ///
    /// # Errors
    ///
    /// Same as [`Self::with_normals`].
    pub fn with_normals_parallel(
        table: FeatureTable,
        domain: ParameterDomain,
        normals: Vec<Vec<f64>>,
        strategy: SelectionStrategy,
        exec: &ExecutionConfig,
    ) -> Result<Self>
    where
        S: Send,
    {
        let normalizer = Self::validate_normals(&table, &domain, &normals)?;
        let workers = exec.threads.min(normals.len()).max(1);
        let indices = if workers <= 1 {
            normals
                .into_iter()
                .map(|c| SingleIndex::build(&table, &normalizer, c))
                .collect::<Result<Vec<_>>>()?
        } else {
            let table_ref = &table;
            let normalizer_ref = &normalizer;
            parallel::map_chunks(&normals, workers, |chunk| {
                chunk
                    .iter()
                    .map(|c| SingleIndex::build(table_ref, normalizer_ref, c.clone()))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect::<Result<Vec<_>>>()?
        };
        Ok(Self::from_built(
            table, domain, normalizer, indices, strategy,
        ))
    }

    fn validate_normals(
        table: &FeatureTable,
        domain: &ParameterDomain,
        normals: &[Vec<f64>],
    ) -> Result<Normalizer> {
        if normals.is_empty() {
            return Err(PlanarError::InvalidBudget);
        }
        if domain.dim() != table.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: table.dim(),
                found: domain.dim(),
            });
        }
        let octant = domain.octant();
        Ok(Normalizer::fit(&octant, table.iter().map(|(_, r)| r)))
    }

    fn from_built(
        table: FeatureTable,
        domain: ParameterDomain,
        normalizer: Normalizer,
        indices: Vec<SingleIndex<S>>,
        strategy: SelectionStrategy,
    ) -> Self {
        let n = table.len();
        let budget = indices.len();
        Self {
            table,
            domain,
            normalizer,
            indices,
            strategy,
            deleted: vec![false; n],
            n_live: n,
            quarantined: vec![false; budget],
            row_scratch: Vec::new(),
            quant_tuner: crate::quant::QuantTuner::default(),
        }
    }

    /// Reassemble a set from persisted parts (see `crate::persist`).
    /// `quarantined[pos]` marks indices whose entry sections were corrupt
    /// or already flagged in the snapshot; their `entry_lists` slot is
    /// typically empty and their normal is retained for rebuilding.
    pub(crate) fn assemble(
        table: FeatureTable,
        domain: ParameterDomain,
        strategy: SelectionStrategy,
        tombstones: Vec<bool>,
        normals: Vec<Vec<f64>>,
        entry_lists: Vec<Vec<crate::store::Entry>>,
        quarantined: Vec<bool>,
    ) -> Result<Self> {
        if domain.dim() != table.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: table.dim(),
                found: domain.dim(),
            });
        }
        if tombstones.len() != table.len() {
            return Err(PlanarError::Persist(
                "tombstone vector length mismatch".into(),
            ));
        }
        if quarantined.len() != normals.len() {
            return Err(PlanarError::Persist(
                "quarantine vector length mismatch".into(),
            ));
        }
        let normalizer = Normalizer::fit(&domain.octant(), table.iter().map(|(_, r)| r));
        let mut indices = Vec::with_capacity(normals.len());
        for (normal, entries) in normals.into_iter().zip(entry_lists) {
            if normal.len() != table.dim() || normal.iter().any(|&v| !v.is_finite() || v <= 0.0) {
                return Err(PlanarError::Persist("invalid stored index normal".into()));
            }
            let raw_normal = normalizer.raw_normal(&normal);
            indices.push(SingleIndex::from_parts(
                normal,
                raw_normal,
                S::build(entries),
            ));
        }
        if indices.is_empty() {
            return Err(PlanarError::InvalidBudget);
        }
        let n_live = tombstones.iter().filter(|&&t| !t).count();
        Ok(Self {
            table,
            domain,
            normalizer,
            indices,
            strategy,
            deleted: tombstones,
            n_live,
            quarantined,
            row_scratch: Vec::new(),
            quant_tuner: crate::quant::QuantTuner::default(),
        })
    }

    fn is_redundant(normals: &[Vec<f64>], c: &[f64]) -> bool {
        normals.iter().any(|existing| {
            let cos = planar_geom::dot_slices(existing, c)
                / (planar_geom::norm(existing) * planar_geom::norm(c));
            (cos.abs() - 1.0).abs() <= PARALLEL_EPS
        })
    }

    /// Number of live (non-deleted) points.
    pub fn len(&self) -> usize {
        self.n_live
    }

    /// True when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    /// Feature dimensionality `d'`.
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// Number of Planar indices in the set.
    pub fn num_indices(&self) -> usize {
        self.indices.len()
    }

    /// The normals of all indices (normalized space).
    pub fn normals(&self) -> impl Iterator<Item = &[f64]> {
        self.indices.iter().map(|i| i.normal())
    }

    /// The underlying feature table (rows of deleted points persist but are
    /// never returned by queries).
    pub fn table(&self) -> &FeatureTable {
        &self.table
    }

    /// The parameter domain the set was built for.
    pub fn domain(&self) -> &ParameterDomain {
        &self.domain
    }

    /// The selection strategy in use.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Change the selection strategy (no rebuild needed).
    pub fn set_strategy(&mut self, strategy: SelectionStrategy) {
        self.strategy = strategy;
    }

    /// The active quantization policy (tier + error-bound slack) of the
    /// underlying table.
    pub fn quant_policy(&self) -> crate::quant::QuantPolicy {
        self.table.quant_policy()
    }

    /// Install a quantization policy, (re-)encoding the table's quantized
    /// mirror as needed (`O(n · d')` on a tier or slack change) and
    /// resetting the autotuner's observation window. Answers are
    /// bit-identical under every policy — the tier only changes how many
    /// candidates the filter pass can settle without full-precision work.
    pub fn set_quant_policy(&mut self, policy: crate::quant::QuantPolicy) {
        self.table.set_quant_policy(policy);
        self.quant_tuner.reset_window();
    }

    /// The autotuner's current observation window (counters since the last
    /// policy change).
    pub fn quant_observations(&self) -> crate::quant::QuantObservations {
        self.quant_tuner.observations()
    }

    /// Adopt another instance's tuner window (see
    /// [`crate::quant::QuantTuner::adopt`]). The concurrent wrappers call
    /// this with the published epoch's clone — where reader observations
    /// actually land — before retuning the staged writer set.
    pub fn adopt_quant_window(&self, other: &Self) {
        self.quant_tuner.adopt(&other.quant_tuner);
    }

    /// Re-evaluate the quantization policy from the observed workload (see
    /// [`crate::quant::retune`]), apply the result, and return it. Called
    /// automatically by [`Self::compact`]; callers with checkpoint cadence
    /// (e.g. the durable wrappers) invoke it there too.
    pub fn retune_quantization(
        &mut self,
        cfg: &crate::quant::QuantAutotuneConfig,
    ) -> crate::quant::QuantPolicy {
        let current = self.table.quant_policy();
        let obs = self.quant_tuner.observations();
        let next = crate::quant::retune(current, self.table.len(), &obs, cfg);
        if next.tier == crate::quant::QuantTier::Off
            && current.tier != crate::quant::QuantTier::Off
            && self.table.len() >= cfg.min_rows
        {
            // The tuner turned the tier off for band width, not table
            // size: remember that, so it stays off until the data changes
            // (compaction clears the flag).
            self.quant_tuner.mark_demoted();
        }
        self.table.set_quant_policy(next);
        self.quant_tuner.reset_window();
        next
    }

    /// Heap bytes owned by the whole structure (table + all indices) — the
    /// quantity of paper Fig. 13b.
    pub fn memory_usage(&self) -> usize {
        self.table.heap_size()
            + self.deleted.capacity()
            + self.indices.iter().map(|i| i.heap_size()).sum::<usize>()
    }

    /// Prepare a query for indexed execution: handle octant mismatches via
    /// negation, normalize, or report why a scan is needed.
    ///
    /// The first element is `None` when the original query is already in
    /// the indexed octant — the common case, kept allocation-free because
    /// workloads like circular moving-object intersection issue one query
    /// per object group.
    fn prepare(
        &self,
        q: &InequalityQuery,
    ) -> core::result::Result<(Option<InequalityQuery>, NormalizedQuery), ScanReason> {
        if q.a().contains(&0.0) {
            return Err(ScanReason::ZeroCoefficient);
        }
        let effective = if self.domain.signs_match(q.a()) {
            None
        } else {
            // ⟨a,φ⟩ ≤ b ⇔ ⟨−a,φ⟩ ≥ −b: the mirrored form may fall into the
            // indexed octant.
            let neg = q.negated();
            if self.domain.signs_match(neg.a()) {
                Some(neg)
            } else {
                return Err(ScanReason::OctantMismatch);
            }
        };
        let view = effective.as_ref().unwrap_or(q);
        match self.normalizer.normalize_query(view.a(), view.b()) {
            Ok(nq) => Ok((effective, nq)),
            Err(_) => Err(ScanReason::OctantMismatch),
        }
    }

    /// Pick the best *usable* (non-quarantined) index for a normalized
    /// query (§5.1) along with its key shift. `None` when every index is
    /// quarantined — the caller degrades to the exact scan.
    fn select_index(&self, nq: &NormalizedQuery, cmp: Cmp) -> Option<(usize, f64)> {
        let skip = |i: usize| self.quarantined[i];
        let pos = match self.strategy {
            SelectionStrategy::MinStretch => {
                argmin_by_score_filtered(self.indices.len(), skip, |i| {
                    stretch_score(self.indices[i].normal(), &nq.a, nq.b)
                })
            }
            SelectionStrategy::MinAngle => {
                argmin_by_score_filtered(self.indices.len(), skip, |i| {
                    angle_score(self.indices[i].normal(), &nq.a)
                })
            }
            SelectionStrategy::OracleCount => {
                argmin_by_score_filtered(self.indices.len(), skip, |i| {
                    let shift = self.normalizer.key_shift(self.indices[i].normal());
                    self.indices[i].ii_size(nq, shift, cmp) as f64
                })
            }
        }?;
        let shift = self.normalizer.key_shift(self.indices[pos].normal());
        Some((pos, shift))
    }

    /// Most sibling filters consulted per query: classification cost grows
    /// linearly with the filter count while the marginal candidates a 4th
    /// filter settles (that the 3 sharpest did not) are few.
    const MAX_AUX_FILTERS: usize = 3;

    /// Build the sibling-index intersection filters for a query served by
    /// the index at `chosen` (the multi-index pruning of this crate's
    /// batched engine; see `DESIGN.md`).
    ///
    /// Cost model: each sibling costs one `O(d' + log n)` boundary
    /// computation up front and ~2 comparisons per II candidate thereafter,
    /// and only pays off when it can actually settle candidates. A sibling
    /// whose own intermediate interval covers more than ¾ of its entries
    /// classifies almost everything `Verify` and is skipped; the rest are
    /// ranked by II size (smaller II ⇒ sharper intervals ⇒ more settled
    /// candidates) and capped at [`Self::MAX_AUX_FILTERS`].
    fn aux_filters(&self, nq: &NormalizedQuery, cmp: Cmp, chosen: usize) -> Vec<AuxFilter<'_>> {
        if self.indices.len() <= 1 {
            return Vec::new();
        }
        let mut ranked: Vec<(usize, usize)> = Vec::new();
        for (i, idx) in self.indices.iter().enumerate() {
            if i == chosen || self.quarantined[i] || idx.is_empty() {
                continue;
            }
            let shift = self.normalizer.key_shift(idx.normal());
            let b = idx.boundaries(nq, shift, cmp);
            let ii = b.j_max - b.j_min;
            if ii * 4 > idx.len() * 3 {
                continue;
            }
            ranked.push((ii, i));
        }
        ranked.sort_unstable();
        ranked.truncate(Self::MAX_AUX_FILTERS);
        ranked
            .into_iter()
            .map(|(_, i)| {
                let idx = &self.indices[i];
                let shift = self.normalizer.key_shift(idx.normal());
                let (lo, hi) = idx.slack_bounds(nq, shift);
                AuxFilter {
                    lo,
                    hi,
                    keys: idx.keys_by_id(),
                }
            })
            .collect()
    }

    /// Answer an inequality query (paper Problem 1, Algorithm 1).
    ///
    /// Falls back to an exact sequential scan — with the reason recorded in
    /// the stats — when the query cannot use the indexed path (zero
    /// coefficients or octant mismatch).
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] when the query dimensionality
    /// differs from the table's.
    pub fn query(&self, q: &InequalityQuery) -> Result<QueryOutcome> {
        self.query_with(q, &ExecutionConfig::serial(), &mut QueryScratch::new())
    }

    /// [`Self::query`] with explicit execution configuration and caller-
    /// owned scratch buffers. With `exec.threads > 1`, intermediate-
    /// interval verification is chunked across threads once the interval
    /// crosses `exec.parallel_verify_threshold`; matches are identical (in
    /// content *and* order) for every thread count.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn query_with(
        &self,
        q: &InequalityQuery,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome> {
        self.check_dim(q)?;
        Ok(self.query_prepared(q, exec, scratch))
    }

    /// Answer a batch of inequality queries, sharded across
    /// `exec.threads` scoped worker threads (each with its own reusable
    /// [`QueryScratch`]). Output `i` is exactly what `query(&qs[i])`
    /// returns — same matches, same order, same stats — for every thread
    /// count.
    ///
    /// Workers are panic-isolated: a query that panics mid-execution
    /// surfaces as [`PlanarError::Internal`] instead of aborting the whole
    /// batch (or the process). Use [`Self::query_batch_isolated`] to keep
    /// the per-query results of the queries that did succeed.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] if any query's dimensionality
    /// differs from the table's (checked up front; no partial results);
    /// [`PlanarError::Internal`] if any query panicked.
    pub fn query_batch(
        &self,
        qs: &[InequalityQuery],
        exec: &ExecutionConfig,
    ) -> Result<Vec<QueryOutcome>>
    where
        S: Sync,
    {
        for q in qs {
            self.check_dim(q)?;
        }
        self.query_batch_isolated(qs, exec).into_iter().collect()
    }

    /// [`Self::query_batch`] with per-query fault isolation: output `i` is
    /// `Ok(outcome)` or the typed error for query `i` alone — a poisoned
    /// query (panic) yields `Err(PlanarError::Internal)` in its slot while
    /// every other query in the batch still completes.
    pub fn query_batch_isolated(
        &self,
        qs: &[InequalityQuery],
        exec: &ExecutionConfig,
    ) -> Vec<Result<QueryOutcome>>
    where
        S: Sync,
    {
        let guard = parallel::DeadlineGuard::new(exec.deadline);
        let mut results = self.query_batch_isolated_with_guard(qs, exec, &guard);
        let skipped = stamp_partial_completed(&mut results, |o| &mut o.served_by);
        parallel::record_deadline_events(skipped as u64);
        results
    }

    /// Batch body shared with the sharded engine: the caller owns the
    /// [`parallel::DeadlineGuard`] (so one budget can span every shard of a
    /// sharded batch) and is responsible for stamping `completed` counts
    /// into the [`ServedBy::Partial`] placeholders afterwards.
    pub(crate) fn query_batch_isolated_with_guard(
        &self,
        qs: &[InequalityQuery],
        exec: &ExecutionConfig,
        guard: &parallel::DeadlineGuard,
    ) -> Vec<Result<QueryOutcome>>
    where
        S: Sync,
    {
        let (workers, inner) = parallel::batch_plan(exec, qs.len());
        if workers <= 1 {
            let mut scratch = QueryScratch::new();
            return qs
                .iter()
                .map(|q| {
                    if guard.expired() {
                        Ok(self.deadline_placeholder_query())
                    } else {
                        self.query_one_isolated(q, &inner, &mut scratch)
                    }
                })
                .collect();
        }
        let per_chunk = parallel::map_chunks(qs, workers, |chunk| {
            let mut scratch = QueryScratch::new();
            chunk
                .iter()
                .map(|q| {
                    if guard.expired() {
                        Ok(self.deadline_placeholder_query())
                    } else {
                        self.query_one_isolated(q, &inner, &mut scratch)
                    }
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// The empty slot emitted for a query the batch deadline skipped: no
    /// matches, nothing verified, provenance [`ServedBy::Partial`]. The
    /// `completed` count is stamped in afterwards by the batch wrapper,
    /// once the whole batch is joined.
    fn deadline_placeholder_stats(&self) -> QueryStats {
        QueryStats {
            n: self.n_live,
            smaller: 0,
            intermediate: 0,
            larger: 0,
            verified: 0,
            intersect_pruned: 0,
            matched: 0,
            quant: crate::quant::QuantFilterStats::default(),
            path: ExecutionPath::ScanFallback(ScanReason::DeadlineExceeded),
        }
    }

    fn deadline_placeholder_query(&self) -> QueryOutcome {
        QueryOutcome {
            matches: Vec::new(),
            served_by: ServedBy::Partial {
                completed: 0,
                deadline_hit: true,
            },
            stats: self.deadline_placeholder_stats(),
        }
    }

    fn deadline_placeholder_top_k(&self) -> TopKOutcome {
        TopKOutcome {
            neighbors: Vec::new(),
            served_by: ServedBy::Partial {
                completed: 0,
                deadline_hit: true,
            },
            // `TopKStats` carries no execution path; the skipped slot is
            // identified by its `ServedBy::Partial` provenance alone.
            stats: TopKStats {
                n: self.n_live,
                intermediate: 0,
                walked: 0,
                verified: 0,
                intersect_pruned: 0,
            },
        }
    }

    fn query_one_isolated(
        &self,
        q: &InequalityQuery,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome> {
        self.check_dim(q)?;
        parallel::run_isolated(|| self.query_prepared(q, exec, scratch))
    }

    fn query_prepared(
        &self,
        q: &InequalityQuery,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> QueryOutcome {
        crate::fault::maybe_inject_query_panic(q.b());
        match self.prepare(q) {
            Ok((effective, nq)) => {
                let view = effective.as_ref().unwrap_or(q);
                let Some((pos, shift)) = self.select_index(&nq, view.cmp()) else {
                    return self.scan_fallback(q, ScanReason::IndexUnavailable);
                };
                let aux = if exec.intersect_pruning {
                    self.aux_filters(&nq, view.cmp(), pos)
                } else {
                    Vec::new()
                };
                let (matches, stats) = self.indices[pos].evaluate_with_aux(
                    view,
                    &nq,
                    shift,
                    &self.table,
                    pos,
                    &aux,
                    exec,
                    scratch,
                );
                self.quant_tuner.observe(&stats.quant);
                QueryOutcome {
                    matches,
                    served_by: ServedBy::Index(pos),
                    stats,
                }
            }
            Err(reason) => self.scan_fallback(q, reason),
        }
    }

    /// Answer a query with a forced sequential scan (the baseline).
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn query_scan(&self, q: &InequalityQuery) -> Result<QueryOutcome> {
        self.check_dim(q)?;
        Ok(self.scan_fallback(q, ScanReason::Requested))
    }

    fn scan_fallback(&self, q: &InequalityQuery, reason: ScanReason) -> QueryOutcome {
        // Collect live ids and verify them through the blocked kernel, so
        // the quantized tier (when active) wholesale-settles most rows on
        // the scan path too. The kernel mask is bit-identical to the
        // per-row `q.satisfies` predicate, so answers are unchanged.
        let live: Vec<PointId> = (0..self.table.len() as PointId)
            .filter(|&id| !self.deleted[id as usize])
            .collect();
        let mut matches = Vec::new();
        let quant = parallel::verify_ids_blocked(q, &self.table, &live, &mut matches);
        let stats = QueryStats {
            n: self.n_live,
            smaller: 0,
            intermediate: self.n_live,
            larger: 0,
            verified: self.n_live,
            intersect_pruned: 0,
            matched: matches.len(),
            quant,
            path: ExecutionPath::ScanFallback(reason),
        };
        self.quant_tuner.observe(&stats.quant);
        QueryOutcome {
            matches,
            served_by: ServedBy::from_path(&stats.path),
            stats,
        }
    }

    /// Answer a top-k nearest-neighbor query (paper Problem 2,
    /// Algorithm 2).
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn top_k(&self, q: &TopKQuery) -> Result<TopKOutcome> {
        self.top_k_with(q, &ExecutionConfig::serial(), &mut QueryScratch::new())
    }

    /// [`Self::top_k`] with explicit execution configuration and caller-
    /// owned scratch buffers; answers are identical for every thread
    /// count.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn top_k_with(
        &self,
        q: &TopKQuery,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> Result<TopKOutcome> {
        self.check_dim(&q.query)?;
        Ok(self.top_k_prepared(q, exec, scratch))
    }

    /// Answer a batch of top-k queries, sharded across `exec.threads`
    /// scoped worker threads. Output `i` is exactly what `top_k(&qs[i])`
    /// returns, for every thread count.
    ///
    /// Workers are panic-isolated: a query that panics mid-execution
    /// surfaces as [`PlanarError::Internal`] instead of aborting the whole
    /// batch. Use [`Self::top_k_batch_isolated`] to keep the per-query
    /// results of the queries that did succeed.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] if any query's dimensionality
    /// differs from the table's (checked up front; no partial results);
    /// [`PlanarError::Internal`] if any query panicked.
    pub fn top_k_batch(&self, qs: &[TopKQuery], exec: &ExecutionConfig) -> Result<Vec<TopKOutcome>>
    where
        S: Sync,
    {
        for q in qs {
            self.check_dim(&q.query)?;
        }
        self.top_k_batch_isolated(qs, exec).into_iter().collect()
    }

    /// [`Self::top_k_batch`] with per-query fault isolation: output `i` is
    /// `Ok(outcome)` or the typed error for query `i` alone — a poisoned
    /// query (panic) yields `Err(PlanarError::Internal)` in its slot while
    /// every other query in the batch still completes.
    pub fn top_k_batch_isolated(
        &self,
        qs: &[TopKQuery],
        exec: &ExecutionConfig,
    ) -> Vec<Result<TopKOutcome>>
    where
        S: Sync,
    {
        let guard = parallel::DeadlineGuard::new(exec.deadline);
        let mut results = self.top_k_batch_isolated_with_guard(qs, exec, &guard);
        let skipped = stamp_partial_completed(&mut results, |o| &mut o.served_by);
        parallel::record_deadline_events(skipped as u64);
        results
    }

    /// Deadline-sharing batch body; see
    /// [`Self::query_batch_isolated_with_guard`].
    pub(crate) fn top_k_batch_isolated_with_guard(
        &self,
        qs: &[TopKQuery],
        exec: &ExecutionConfig,
        guard: &parallel::DeadlineGuard,
    ) -> Vec<Result<TopKOutcome>>
    where
        S: Sync,
    {
        let (workers, inner) = parallel::batch_plan(exec, qs.len());
        if workers <= 1 {
            let mut scratch = QueryScratch::new();
            return qs
                .iter()
                .map(|q| {
                    if guard.expired() {
                        Ok(self.deadline_placeholder_top_k())
                    } else {
                        self.top_k_one_isolated(q, &inner, &mut scratch)
                    }
                })
                .collect();
        }
        let per_chunk = parallel::map_chunks(qs, workers, |chunk| {
            let mut scratch = QueryScratch::new();
            chunk
                .iter()
                .map(|q| {
                    if guard.expired() {
                        Ok(self.deadline_placeholder_top_k())
                    } else {
                        self.top_k_one_isolated(q, &inner, &mut scratch)
                    }
                })
                .collect::<Vec<_>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    fn top_k_one_isolated(
        &self,
        q: &TopKQuery,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> Result<TopKOutcome> {
        self.check_dim(&q.query)?;
        parallel::run_isolated(|| self.top_k_prepared(q, exec, scratch))
    }

    fn top_k_prepared(
        &self,
        q: &TopKQuery,
        exec: &ExecutionConfig,
        scratch: &mut QueryScratch,
    ) -> TopKOutcome {
        crate::fault::maybe_inject_query_panic(q.query.b());
        match self.prepare(&q.query) {
            Ok((effective, nq)) => {
                let eff_q = TopKQuery {
                    query: effective.unwrap_or_else(|| q.query.clone()),
                    k: q.k,
                };
                let Some((pos, shift)) = self.select_index(&nq, eff_q.query.cmp()) else {
                    return self.top_k_scan(q, ScanReason::IndexUnavailable);
                };
                let aux = if exec.intersect_pruning {
                    self.aux_filters(&nq, eff_q.query.cmp(), pos)
                } else {
                    Vec::new()
                };
                let (neighbors, stats) = self.indices[pos].top_k_with_aux(
                    &eff_q,
                    &nq,
                    shift,
                    &self.table,
                    &aux,
                    exec,
                    scratch,
                );
                TopKOutcome {
                    neighbors,
                    served_by: ServedBy::Index(pos),
                    stats,
                }
            }
            Err(reason) => self.top_k_scan(q, reason),
        }
    }

    /// [`Self::top_k`] with the Claim-3 pruning disabled (walks the entire
    /// accepting interval). Identical answers; exists for the
    /// `ablation-topk` benchmark.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn top_k_unpruned(&self, q: &TopKQuery) -> Result<TopKOutcome> {
        self.check_dim(&q.query)?;
        match self.prepare(&q.query) {
            Ok((effective, nq)) => {
                let eff_q = TopKQuery {
                    query: effective.unwrap_or_else(|| q.query.clone()),
                    k: q.k,
                };
                let Some((pos, shift)) = self.select_index(&nq, eff_q.query.cmp()) else {
                    return Ok(self.top_k_scan(q, ScanReason::IndexUnavailable));
                };
                let (neighbors, stats) =
                    self.indices[pos].top_k_unpruned(&eff_q, &nq, shift, &self.table);
                Ok(TopKOutcome {
                    neighbors,
                    served_by: ServedBy::Index(pos),
                    stats,
                })
            }
            Err(reason) => Ok(self.top_k_scan(q, reason)),
        }
    }

    /// Borrow the index at `pos` (for diagnostics and ablation benches).
    pub fn index_at(&self, pos: usize) -> Option<&SingleIndex<S>> {
        self.indices.get(pos)
    }

    /// Is the point with this id present and not tombstoned?
    pub fn is_live(&self, id: PointId) -> bool {
        (id as usize) < self.deleted.len() && !self.deleted[id as usize]
    }

    /// The best index position, interval bounds and effective comparison
    /// for a constraint, without touching any data — the planning step of
    /// the conjunction evaluator. `None` when the constraint cannot take
    /// the indexed path.
    pub(crate) fn constraint_plan(
        &self,
        q: &InequalityQuery,
    ) -> Option<(usize, crate::index::IntervalBounds, Cmp)> {
        match self.prepare(q) {
            Ok((effective, nq)) => {
                let cmp = effective.as_ref().unwrap_or(q).cmp();
                let (pos, shift) = self.select_index(&nq, cmp)?;
                let bounds = self.indices[pos].boundaries(&nq, shift, cmp);
                Some((pos, bounds, cmp))
            }
            Err(_) => None,
        }
    }

    /// The normalizer fitted to this set's octant and data (for ablation
    /// benches that drive [`SingleIndex`] directly).
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Normalize a query for this set's octant, as the indexed path would.
    ///
    /// # Errors
    ///
    /// [`PlanarError::NotFinite`] when the query cannot take the indexed
    /// path (zero coefficient or octant mismatch).
    pub fn normalize_query(
        &self,
        q: &InequalityQuery,
    ) -> Result<(InequalityQuery, NormalizedQuery)> {
        self.check_dim(q)?;
        let (effective, nq) = self.prepare(q).map_err(|_| PlanarError::NotFinite)?;
        Ok((effective.unwrap_or_else(|| q.clone()), nq))
    }

    fn top_k_scan(&self, q: &TopKQuery, reason: ScanReason) -> TopKOutcome {
        let mut buf = TopKBuffer::new(q.k);
        for (id, row) in self.table.iter() {
            if !self.deleted[id as usize] && q.query.satisfies(row) {
                buf.offer(q.query.distance(row), id);
            }
        }
        let served_by = if matches!(reason, ScanReason::IndexUnavailable) {
            ServedBy::Degraded
        } else {
            ServedBy::ScanFallback
        };
        TopKOutcome {
            neighbors: buf.into_sorted(),
            served_by,
            stats: TopKStats {
                n: self.n_live,
                intermediate: self.n_live,
                walked: 0,
                verified: self.n_live,
                intersect_pruned: 0,
            },
        }
    }

    /// Insert a new point; `O(budget · (d' + log n))` with a tree store.
    ///
    /// # Errors
    ///
    /// Table validation errors (arity, NaN).
    pub fn insert_point(&mut self, row: &[f64]) -> Result<PointId> {
        let id = self.table.push_row(row)?;
        // Growing the translation deltas only changes the query-time key
        // shift — stored keys are raw-space and unaffected (see
        // `planar_geom::translation` module docs).
        self.normalizer.absorb(row);
        // Quarantined indices are stale by definition; `rebuild_quarantined`
        // reconstructs them from the table, so mutations skip them.
        for (idx, &quar) in self.indices.iter_mut().zip(&self.quarantined) {
            if !quar {
                idx.insert_point(id, row);
            }
        }
        self.deleted.push(false);
        self.n_live += 1;
        Ok(id)
    }

    /// Update a point's feature row (paper §4.4: `O(d' log n)` per index).
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] for unknown/deleted ids, plus table
    /// validation errors.
    pub fn update_point(&mut self, id: PointId, row: &[f64]) -> Result<()> {
        self.check_live(id)?;
        let mut old = core::mem::take(&mut self.row_scratch);
        old.clear();
        old.extend_from_slice(self.table.try_row(id)?);
        if let Err(e) = self.table.update_row(id, row) {
            self.row_scratch = old;
            return Err(e);
        }
        self.normalizer.absorb(row);
        for (idx, &quar) in self.indices.iter_mut().zip(&self.quarantined) {
            if !quar {
                idx.update_point(id, &old, row);
            }
        }
        self.row_scratch = old;
        Ok(())
    }

    /// Delete a point. Its table row is tombstoned; it disappears from all
    /// indices and future query results.
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] for unknown or already-deleted ids.
    pub fn delete_point(&mut self, id: PointId) -> Result<()> {
        self.check_live(id)?;
        let mut row = core::mem::take(&mut self.row_scratch);
        row.clear();
        row.extend_from_slice(self.table.try_row(id)?);
        for (idx, &quar) in self.indices.iter_mut().zip(&self.quarantined) {
            if !quar {
                idx.remove_point(id, &row);
            }
        }
        self.row_scratch = row;
        self.deleted[id as usize] = true;
        self.n_live -= 1;
        Ok(())
    }

    /// Vacuum the set: rebuild the feature table with only live rows and
    /// reconstruct every index from it, dropping all tombstones. Point ids
    /// are *renumbered* — the returned map gives each old id its new id
    /// (`None` for tombstoned rows). Quarantined indices are rebuilt from
    /// the fresh table as a side effect and leave quarantine.
    ///
    /// The normalizer is kept as-is: its translation only ever grows (see
    /// [`Normalizer::absorb`]), so a fit over a superset of the live rows
    /// stays valid and every stored raw-space key is unchanged — compacted
    /// answers are bit-identical, minus the dead rows.
    ///
    /// Rationale: `delete_point` tombstones forever, so [`Self::add_index`]
    /// pays `O(deleted · log n)` removals and scans walk dead rows
    /// indefinitely. `O(budget · n log n)`, like a fresh build.
    pub fn compact(&mut self) -> Vec<Option<PointId>> {
        let mut remap: Vec<Option<PointId>> = vec![None; self.table.len()];
        // The dim and every retained row were validated when first added,
        // so reassembly cannot fail.
        let mut fresh = FeatureTable::with_capacity(self.table.dim(), self.n_live)
            .expect("dimension was validated at build");
        for (id, row) in self.table.iter() {
            if !self.deleted[id as usize] {
                let new_id = fresh.push_row(row).expect("row was validated when added");
                remap[id as usize] = Some(new_id);
            }
        }
        // Carry the quantization policy onto the fresh table (the mirror
        // re-encodes over the compacted blocks), then let the autotuner
        // re-evaluate: the data changed, so a previous for-band-width
        // demotion no longer binds.
        let policy = self.table.quant_policy();
        self.table = fresh;
        self.table.set_quant_policy(policy);
        self.deleted = vec![false; self.table.len()];
        self.n_live = self.table.len();
        for idx in &mut self.indices {
            idx.rebuild_from(&self.table, &self.deleted);
        }
        for flag in &mut self.quarantined {
            *flag = false;
        }
        self.quant_tuner.clear_demotion();
        self.retune_quantization(&crate::quant::QuantAutotuneConfig::default());
        remap
    }

    /// [`Self::compact`] only when the tombstone fraction
    /// `deleted / table rows` exceeds `threshold`; returns the id remap
    /// when a compaction ran.
    pub fn compact_if(&mut self, threshold: f64) -> Option<Vec<Option<PointId>>> {
        let total = self.table.len();
        let dead = total - self.n_live;
        if total == 0 || (dead as f64) / (total as f64) <= threshold {
            return None;
        }
        Some(self.compact())
    }

    /// Add one more Planar index with the given normalized-space normal;
    /// returns its position. `O(n log n)` (paper §4.4: "when we dynamically
    /// introduce a new Planar index").
    ///
    /// # Errors
    ///
    /// [`SingleIndex::build`] validation.
    pub fn add_index(&mut self, normal: Vec<f64>) -> Result<usize> {
        let mut idx = SingleIndex::build(&self.table, &self.normalizer, normal)?;
        // The bulk build indexed every table row; drop tombstoned ones.
        for (id, flag) in self.deleted.iter().enumerate() {
            if *flag {
                idx.remove_point(id as PointId, self.table.row(id as PointId));
            }
        }
        self.indices.push(idx);
        self.quarantined.push(false);
        Ok(self.indices.len() - 1)
    }

    /// Drop the index at `pos` (e.g. when the query distribution drifted
    /// away from its normal). The last index cannot be removed.
    ///
    /// # Errors
    ///
    /// [`PlanarError::InvalidBudget`] when removing the last index,
    /// [`PlanarError::PointNotFound`] never; out-of-range `pos` yields
    /// [`PlanarError::DimensionMismatch`].
    pub fn remove_index(&mut self, pos: usize) -> Result<()> {
        if self.indices.len() <= 1 {
            return Err(PlanarError::InvalidBudget);
        }
        if pos >= self.indices.len() {
            return Err(PlanarError::DimensionMismatch {
                expected: self.indices.len(),
                found: pos,
            });
        }
        self.indices.remove(pos);
        self.quarantined.remove(pos);
        Ok(())
    }

    /// Is the index at `pos` quarantined (failed verification or loaded
    /// from a corrupt snapshot section)? Out-of-range positions are not
    /// quarantined.
    pub fn is_quarantined(&self, pos: usize) -> bool {
        self.quarantined.get(pos).copied().unwrap_or(false)
    }

    /// Positions of all quarantined indices, ascending.
    pub fn quarantined_positions(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(pos, &q)| q.then_some(pos))
            .collect()
    }

    /// Manually quarantine the index at `pos`: the planner routes queries
    /// around it until [`Self::rebuild_quarantined`] restores it. With
    /// every index quarantined, queries still answer exactly via the scan
    /// path (`ServedBy::Degraded`). Out-of-range positions are ignored.
    pub fn quarantine(&mut self, pos: usize) {
        if let Some(flag) = self.quarantined.get_mut(pos) {
            *flag = true;
        }
    }

    /// Run the self-check on every index (quarantined or not) without
    /// changing any state: key order, key finiteness, id liveness, entry
    /// counts, and `key_samples` recomputed keys per index (0 skips key
    /// recomputation; see [`SingleIndex::verify`]).
    pub fn verify_all(&self, key_samples: usize) -> HealthReport {
        let indices = self
            .indices
            .iter()
            .enumerate()
            .map(|(pos, idx)| IndexHealth {
                pos,
                issues: if self.quarantined[pos] {
                    Vec::new()
                } else {
                    idx.verify(&self.table, &self.deleted, self.n_live, key_samples)
                },
            })
            .collect();
        HealthReport { indices }
    }

    /// [`Self::verify_all`], then quarantine every index that reported at
    /// least one issue. Returns the report so callers can log what failed;
    /// already-quarantined indices are left alone (their issues list is
    /// empty — they are known-bad and skipped).
    pub fn verify_and_quarantine(&mut self, key_samples: usize) -> HealthReport {
        let report = self.verify_all(key_samples);
        for health in &report.indices {
            if !health.is_healthy() {
                self.quarantined[health.pos] = true;
            }
        }
        report
    }

    /// Rebuild every quarantined index from the feature table (the core
    /// data is always intact — see the `persist` module docs) and clear its
    /// flag. Returns the positions that were rebuilt, ascending.
    /// `O(n log n)` per rebuilt index, same as [`Self::add_index`].
    pub fn rebuild_quarantined(&mut self) -> Vec<usize> {
        let mut rebuilt = Vec::new();
        for pos in 0..self.indices.len() {
            if self.quarantined[pos] {
                self.indices[pos].rebuild_from(&self.table, &self.deleted);
                self.quarantined[pos] = false;
                rebuilt.push(pos);
            }
        }
        rebuilt
    }

    /// Replace the parameter domain and resample all indices — the paper's
    /// recommended response to query drift (§7.2.2: "it is more beneficial
    /// to dynamically update our indices based on the recent queries").
    ///
    /// # Errors
    ///
    /// Same as [`Self::build`].
    pub fn rebuild_for_domain(
        &mut self,
        domain: ParameterDomain,
        config: IndexConfig,
    ) -> Result<()> {
        let rebuilt = Self::build(self.table.clone(), domain, config)?;
        let deleted = self.deleted.clone();
        *self = rebuilt;
        // Reapply tombstones.
        for (id, flag) in deleted.iter().enumerate() {
            if *flag {
                let row = self.table.row(id as PointId).to_vec();
                for idx in &mut self.indices {
                    idx.remove_point(id as PointId, &row);
                }
                self.deleted[id] = true;
                self.n_live -= 1;
            }
        }
        Ok(())
    }

    fn check_dim(&self, q: &InequalityQuery) -> Result<()> {
        if q.dim() != self.table.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: self.table.dim(),
                found: q.dim(),
            });
        }
        Ok(())
    }

    fn check_live(&self, id: PointId) -> Result<()> {
        if (id as usize) < self.deleted.len() && !self.deleted[id as usize] {
            Ok(())
        } else {
            Err(PlanarError::PointNotFound(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use rand::Rng;

    fn small_set(budget: usize) -> PlanarIndexSet {
        let table = FeatureTable::from_rows(
            2,
            vec![
                vec![1.0, 1.0],
                vec![2.0, 3.0],
                vec![4.0, 4.0],
                vec![0.5, 0.5],
                vec![3.0, 1.0],
            ],
        )
        .unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 3.0).unwrap();
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(budget)).unwrap()
    }

    #[test]
    fn build_validates() {
        let table = FeatureTable::from_rows(2, vec![vec![1.0, 1.0]]).unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 3.0).unwrap();
        assert_eq!(
            PlanarIndexSet::<VecStore>::build(
                table.clone(),
                domain.clone(),
                IndexConfig::with_budget(0)
            )
            .unwrap_err(),
            PlanarError::InvalidBudget
        );
        let bad_domain = ParameterDomain::uniform_continuous(3, 0.5, 3.0).unwrap();
        assert!(
            PlanarIndexSet::<VecStore>::build(table, bad_domain, IndexConfig::with_budget(1))
                .is_err()
        );
    }

    #[test]
    fn query_matches_scan_on_both_cmps() {
        let set = small_set(8);
        for (a, b) in [(vec![1.0, 1.0], 5.0), (vec![2.5, 0.6], 4.0)] {
            for cmp in [Cmp::Leq, Cmp::Geq] {
                let q = InequalityQuery::new(a.clone(), cmp, b).unwrap();
                let idx = set.query(&q).unwrap();
                let scan = set.query_scan(&q).unwrap();
                assert!(idx.stats.used_index(), "{:?}", idx.stats.path);
                assert_eq!(idx.sorted_ids(), scan.sorted_ids());
            }
        }
    }

    #[test]
    fn intersection_pruning_preserves_answers_and_settles_candidates() {
        // A large-ish random table so II sizes clear the pruning crossover.
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f64>> = (0..2000)
            .map(|_| vec![rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 3.0).unwrap();
        let set: PlanarIndexSet =
            PlanarIndexSet::build(table, domain, IndexConfig::with_budget(6)).unwrap();

        let on = ExecutionConfig::serial().intersect_min_candidates(1);
        let off = ExecutionConfig::serial().intersect_pruning(false);
        let mut scratch = QueryScratch::new();
        let mut settled_somewhere = false;
        for (a, b) in [
            (vec![1.0, 1.0], 9.0),
            (vec![2.5, 0.6], 11.0),
            (vec![0.7, 1.9], 14.0),
        ] {
            for cmp in [Cmp::Leq, Cmp::Geq] {
                let q = InequalityQuery::new(a.clone(), cmp, b).unwrap();
                let pruned = set.query_with(&q, &on, &mut scratch).unwrap();
                let plain = set.query_with(&q, &off, &mut scratch).unwrap();
                // Same matches in the same order — pruning only skips
                // scalar products whose outcome a sibling already proves.
                assert_eq!(pruned.matches, plain.matches, "{a:?} {cmp:?} {b}");
                assert_eq!(plain.stats.intersect_pruned, 0);
                assert_eq!(
                    pruned.stats.verified + pruned.stats.intersect_pruned,
                    plain.stats.verified,
                    "every II candidate is either settled or verified"
                );
                settled_somewhere |= pruned.stats.intersect_pruned > 0;

                let topk = TopKQuery::new(q.clone(), 7).unwrap();
                let tk_pruned = set.top_k_with(&topk, &on, &mut scratch).unwrap();
                let tk_plain = set.top_k_with(&topk, &off, &mut scratch).unwrap();
                assert_eq!(tk_pruned.neighbors, tk_plain.neighbors);
            }
        }
        assert!(
            settled_somewhere,
            "intersection pruning never settled a candidate across 6 queries"
        );
    }

    #[test]
    fn zero_coefficient_falls_back_to_scan() {
        let set = small_set(4);
        let q = InequalityQuery::leq(vec![0.0, 1.0], 2.0).unwrap();
        let out = set.query(&q).unwrap();
        assert_eq!(
            out.stats.path,
            ExecutionPath::ScanFallback(ScanReason::ZeroCoefficient)
        );
        assert_eq!(out.sorted_ids(), vec![0, 3, 4]);
    }

    #[test]
    fn octant_mismatch_negates_or_scans() {
        let set = small_set(4);
        // a = (−1, −1): negating gives (1, 1) ≥ −b — in the indexed octant.
        let q = InequalityQuery::leq(vec![-1.0, -1.0], -5.0).unwrap();
        let out = set.query(&q).unwrap();
        assert!(out.stats.used_index());
        let scan = set.query_scan(&q).unwrap();
        assert_eq!(out.sorted_ids(), scan.sorted_ids());

        // a = (1, −1): neither it nor its negation matches (+,+).
        let q = InequalityQuery::leq(vec![1.0, -1.0], 0.0).unwrap();
        let out = set.query(&q).unwrap();
        assert_eq!(
            out.stats.path,
            ExecutionPath::ScanFallback(ScanReason::OctantMismatch)
        );
        assert_eq!(out.sorted_ids(), set.query_scan(&q).unwrap().sorted_ids());
    }

    #[test]
    fn dedup_removes_parallel_normals() {
        let table = FeatureTable::from_rows(2, vec![vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        // Discrete domain with a single value per axis: every sample is the
        // same normal.
        let domain = ParameterDomain::new(vec![
            Domain::Discrete(vec![2.0]),
            Domain::Discrete(vec![3.0]),
        ])
        .unwrap();
        let set =
            PlanarIndexSet::<VecStore>::build(table, domain, IndexConfig::with_budget(10)).unwrap();
        assert_eq!(set.num_indices(), 1, "parallel normals must be deduped");
    }

    #[test]
    fn dedup_can_be_disabled() {
        let table = FeatureTable::from_rows(2, vec![vec![1.0, 1.0]]).unwrap();
        let domain = ParameterDomain::new(vec![
            Domain::Discrete(vec![2.0]),
            Domain::Discrete(vec![3.0]),
        ])
        .unwrap();
        let set = PlanarIndexSet::<VecStore>::build(
            table,
            domain,
            IndexConfig::with_budget(10).dedup(false),
        )
        .unwrap();
        assert_eq!(set.num_indices(), 10);
    }

    #[test]
    fn strategies_agree_with_scan() {
        for strategy in [
            SelectionStrategy::MinStretch,
            SelectionStrategy::MinAngle,
            SelectionStrategy::OracleCount,
        ] {
            let table = FeatureTable::from_rows(
                2,
                (0..50)
                    .map(|i| vec![(i % 7) as f64 + 1.0, (i % 11) as f64 + 1.0])
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            let domain = ParameterDomain::uniform_randomness(2, 4).unwrap();
            let set = PlanarIndexSet::<VecStore>::build(
                table,
                domain,
                IndexConfig::with_budget(6).strategy(strategy),
            )
            .unwrap();
            let q = InequalityQuery::leq(vec![2.0, 3.0], 25.0).unwrap();
            let idx = set.query(&q).unwrap();
            let scan = set.query_scan(&q).unwrap();
            assert_eq!(idx.sorted_ids(), scan.sorted_ids(), "{strategy:?}");
        }
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let mut set: DynamicPlanarIndexSet = {
            let table = FeatureTable::from_rows(2, vec![vec![1.0, 1.0], vec![5.0, 5.0]]).unwrap();
            let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
            PlanarIndexSet::build(table, domain, IndexConfig::with_budget(3)).unwrap()
        };
        let q = InequalityQuery::leq(vec![1.0, 1.0], 4.0).unwrap();
        assert_eq!(set.query(&q).unwrap().sorted_ids(), vec![0]);

        let id = set.insert_point(&[0.5, 0.5]).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.query(&q).unwrap().sorted_ids(), vec![0, id]);

        set.update_point(0, &[9.0, 9.0]).unwrap();
        assert_eq!(set.query(&q).unwrap().sorted_ids(), vec![id]);

        set.delete_point(id).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.query(&q).unwrap().sorted_ids().is_empty());
        assert_eq!(
            set.delete_point(id).unwrap_err(),
            PlanarError::PointNotFound(id)
        );
        // Scans must also skip tombstones.
        assert!(set.query_scan(&q).unwrap().sorted_ids().is_empty());
        // Top-k must also skip tombstones.
        let tk = TopKQuery::new(q.clone(), 5).unwrap();
        assert!(set.top_k(&tk).unwrap().neighbors.is_empty());
    }

    #[test]
    fn insert_outside_translation_range_stays_exact() {
        // Start with non-negative data, then insert a point with negative
        // coordinates: the normalizer deltas must grow and answers stay
        // exact. (Needs a domain octant that covers it — use a negative
        // second axis.)
        let table = FeatureTable::from_rows(2, vec![vec![1.0, -1.0], vec![2.0, -2.0]]).unwrap();
        let domain = ParameterDomain::new(vec![
            Domain::Continuous { lo: 0.5, hi: 2.0 },
            Domain::Continuous { lo: -2.0, hi: -0.5 },
        ])
        .unwrap();
        let mut set =
            PlanarIndexSet::<VecStore>::build(table, domain, IndexConfig::with_budget(4)).unwrap();
        let id = set.insert_point(&[-7.0, 5.0]).unwrap();
        for b in [-10.0, -3.0, 0.0, 3.0, 10.0] {
            let q = InequalityQuery::leq(vec![1.0, -1.0], b).unwrap();
            let idx = set.query(&q).unwrap();
            assert_eq!(
                idx.sorted_ids(),
                set.query_scan(&q).unwrap().sorted_ids(),
                "b={b}"
            );
        }
        let _ = id;
    }

    #[test]
    fn add_and_remove_index() {
        let mut set = small_set(2);
        assert_eq!(set.num_indices(), 2);
        let pos = set.add_index(vec![1.0, 1.0]).unwrap();
        assert_eq!(pos, 2);
        assert_eq!(set.num_indices(), 3);
        set.remove_index(0).unwrap();
        assert_eq!(set.num_indices(), 2);
        set.remove_index(0).unwrap();
        assert_eq!(set.remove_index(0).unwrap_err(), PlanarError::InvalidBudget);
        // Still answers correctly with one index.
        let q = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        assert_eq!(
            set.query(&q).unwrap().sorted_ids(),
            set.query_scan(&q).unwrap().sorted_ids()
        );
    }

    #[test]
    fn added_index_respects_tombstones() {
        let mut set = small_set(1);
        set.delete_point(2).unwrap();
        set.add_index(vec![1.0, 2.0]).unwrap();
        let q = InequalityQuery::geq(vec![1.0, 1.0], 0.0).unwrap(); // everything
        let ids = set.query(&q).unwrap().sorted_ids();
        assert_eq!(ids, vec![0, 1, 3, 4]);
    }

    #[test]
    fn rebuild_for_domain_preserves_tombstones() {
        let mut set = small_set(2);
        set.delete_point(1).unwrap();
        let new_domain = ParameterDomain::uniform_randomness(2, 4).unwrap();
        set.rebuild_for_domain(new_domain, IndexConfig::with_budget(5))
            .unwrap();
        assert_eq!(set.len(), 4);
        let q = InequalityQuery::geq(vec![1.0, 1.0], 0.0).unwrap();
        assert_eq!(set.query(&q).unwrap().sorted_ids(), vec![0, 2, 3, 4]);
    }

    #[test]
    fn top_k_matches_scan_top_k() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.random_range(1.0..100.0), rng.random_range(1.0..100.0)])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::uniform_randomness(2, 4).unwrap();
        let set =
            PlanarIndexSet::<VecStore>::build(table.clone(), domain, IndexConfig::with_budget(10))
                .unwrap();
        let scan = crate::scan::SeqScan::new(&table);
        for k in [1, 5, 50, 500] {
            let q =
                TopKQuery::new(InequalityQuery::leq(vec![2.0, 3.0], 300.0).unwrap(), k).unwrap();
            let got = set.top_k(&q).unwrap();
            let want = scan.top_k(&q).unwrap();
            assert_eq!(got.neighbors, want, "k={k}");
        }
    }

    #[test]
    fn memory_usage_grows_with_budget() {
        let a = small_set(1).memory_usage();
        let b = small_set(10).memory_usage();
        assert!(b > a);
    }

    #[test]
    fn stats_report_full_pruning_for_parallel_query() {
        let rows: Vec<Vec<f64>> = (1..=100)
            .map(|i| vec![i as f64, (101 - i) as f64])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::uniform_randomness(2, 2).unwrap();
        // RQ=2 in 2-d: only 4 possible normals; budget 8 covers all of them.
        let set =
            PlanarIndexSet::<VecStore>::build(table, domain, IndexConfig::with_budget(8)).unwrap();
        let q = InequalityQuery::leq(vec![2.0, 1.0], 150.0).unwrap();
        let out = set.query(&q).unwrap();
        assert!(out.stats.used_index());
        // A parallel index exists, so pruning should be (near-)total.
        assert!(
            out.stats.pruning_percentage() > 95.0,
            "pruning {}",
            out.stats.pruning_percentage()
        );
        assert_eq!(out.sorted_ids(), set.query_scan(&q).unwrap().sorted_ids());
    }

    #[test]
    fn quarantine_routes_queries_around_bad_index() {
        let mut set = small_set(4);
        let q = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        let before = set.query(&q).unwrap();
        let ServedBy::Index(best) = before.served_by else {
            panic!("expected indexed serving, got {:?}", before.served_by);
        };

        set.quarantine(best);
        assert!(set.is_quarantined(best));
        assert_eq!(set.quarantined_positions(), vec![best]);

        let after = set.query(&q).unwrap();
        match after.served_by {
            ServedBy::Index(pos) => assert_ne!(pos, best, "quarantined index still selected"),
            other => panic!("expected another index to serve, got {other:?}"),
        }
        assert_eq!(after.sorted_ids(), before.sorted_ids());
    }

    #[test]
    fn all_quarantined_degrades_to_exact_scan() {
        let mut set = small_set(4);
        for pos in 0..set.num_indices() {
            set.quarantine(pos);
        }

        let q = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        let out = set.query(&q).unwrap();
        assert_eq!(out.served_by, ServedBy::Degraded);
        assert_eq!(
            out.stats.path,
            ExecutionPath::ScanFallback(ScanReason::IndexUnavailable)
        );
        assert_eq!(out.sorted_ids(), set.query_scan(&q).unwrap().sorted_ids());

        let tk = TopKQuery::new(q.clone(), 3).unwrap();
        let top = set.top_k(&tk).unwrap();
        assert_eq!(top.served_by, ServedBy::Degraded);
        let want = crate::scan::SeqScan::new(set.table()).top_k(&tk).unwrap();
        assert_eq!(top.neighbors, want);
    }

    #[test]
    fn mutations_skip_quarantined_and_rebuild_restores() {
        let mut set = small_set(3);
        set.quarantine(0);

        // Mutations while index 0 is out of service.
        let id = set.insert_point(&[2.5, 2.5]).unwrap();
        set.update_point(id, &[2.6, 2.4]).unwrap();
        set.delete_point(0).unwrap();

        let rebuilt = set.rebuild_quarantined();
        assert_eq!(rebuilt, vec![0]);
        assert!(set.quarantined_positions().is_empty());

        // The rebuilt index reflects the mutations it missed: every index
        // now verifies clean and answers match the scan.
        let report = set.verify_all(usize::MAX);
        assert!(report.healthy(), "{:?}", report.failing_positions());
        let q = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        assert_eq!(
            set.query(&q).unwrap().sorted_ids(),
            set.query_scan(&q).unwrap().sorted_ids()
        );
    }

    #[test]
    fn verify_and_quarantine_flags_stale_index() {
        let mut set = small_set(3);
        // Stale an index by mutating while it is quarantined, then clearing
        // the flag without rebuilding (simulating silent corruption).
        set.quarantine(1);
        set.insert_point(&[2.0, 2.0]).unwrap();
        set.quarantined[1] = false;

        let report = set.verify_and_quarantine(usize::MAX);
        assert_eq!(report.failing_positions(), vec![1]);
        assert_eq!(set.quarantined_positions(), vec![1]);

        // Quarantined again → answers stay exact, and a rebuild clears it.
        let q = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        assert_eq!(
            set.query(&q).unwrap().sorted_ids(),
            set.query_scan(&q).unwrap().sorted_ids()
        );
        assert_eq!(set.rebuild_quarantined(), vec![1]);
        assert!(set.verify_all(usize::MAX).healthy());
    }

    #[test]
    fn batch_isolation_surfaces_poisoned_query_without_losing_others() {
        let set = small_set(4);
        let poison_b = 123.456_789_25;
        let qs = vec![
            InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap(),
            InequalityQuery::leq(vec![1.0, 1.0], poison_b).unwrap(),
            InequalityQuery::leq(vec![1.0, 1.0], 9.0).unwrap(),
        ];
        crate::fault::arm_query_panic(poison_b);
        let results = set.query_batch_isolated(&qs, &ExecutionConfig::serial());
        crate::fault::disarm_query_panic();

        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(PlanarError::Internal(_))));
        assert!(results[2].is_ok());

        // The all-or-nothing wrapper propagates the poisoned slot as Err.
        crate::fault::arm_query_panic(poison_b);
        let whole = set.query_batch(&qs, &ExecutionConfig::serial());
        crate::fault::disarm_query_panic();
        assert!(matches!(whole, Err(PlanarError::Internal(_))));
    }

    #[test]
    fn expired_deadline_yields_partial_placeholders() {
        use std::time::Duration;
        let set = small_set(4);
        let qs: Vec<InequalityQuery> = [3.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&b| InequalityQuery::leq(vec![1.0, 1.0], b).unwrap())
            .collect();
        for threads in [1, 3] {
            let exec = ExecutionConfig::with_threads(threads).with_deadline(Duration::ZERO);
            let events_before = parallel::deadline_events();
            let outs = set.query_batch(&qs, &exec).unwrap();
            assert!(parallel::deadline_events() >= events_before + qs.len() as u64);
            for out in &outs {
                assert_eq!(
                    out.served_by,
                    ServedBy::Partial {
                        completed: 0,
                        deadline_hit: true
                    }
                );
                assert!(out.matches.is_empty());
                assert_eq!(out.stats.verified, 0);
                assert_eq!(
                    out.stats.path,
                    ExecutionPath::ScanFallback(ScanReason::DeadlineExceeded)
                );
            }
            let tops: Vec<TopKQuery> = qs
                .iter()
                .map(|q| TopKQuery::new(q.clone(), 2).unwrap())
                .collect();
            let outs = set.top_k_batch(&tops, &exec).unwrap();
            assert!(outs.iter().all(|o| o.served_by.is_partial()
                && o.neighbors.is_empty()
                && o.stats.verified == 0));
        }
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        use std::time::Duration;
        let set = small_set(4);
        let qs: Vec<InequalityQuery> = [3.0, 5.0, 7.0]
            .iter()
            .map(|&b| InequalityQuery::leq(vec![1.0, 1.0], b).unwrap())
            .collect();
        let plain = set.query_batch(&qs, &ExecutionConfig::serial()).unwrap();
        let exec = ExecutionConfig::serial().with_deadline(Duration::from_secs(3600));
        let budgeted = set.query_batch(&qs, &exec).unwrap();
        assert_eq!(plain, budgeted);
        assert!(budgeted.iter().all(|o| !o.served_by.is_partial()));
    }
}
