//! WAL-shipping replication: primary → replica segment tailing,
//! LSN-bounded follower reads, and failover promotion.
//!
//! The per-shard, CRC-framed, LSN-ordered write-ahead log of
//! `crate::wal` is already a replication stream — this module ships it.
//! A [`Primary`] wraps a [`ConcurrentDurableShardedIndexSet`] and tails
//! its own segment files with one cursor per attached replica; a
//! [`Replica`] bootstraps by installing the primary's latest checkpoint
//! snapshot, then replays shipped frames through the same
//! `replay_record` path crash recovery uses — divergence checks
//! included — into a [`ConcurrentShardedIndexSet`], publishing an epoch
//! per applied batch and mirroring every frame into its **own** WAL so
//! it can be promoted.
//!
//! ## Protocol
//!
//! Each primary→replica link is a pair of unidirectional [`Transport`]s
//! (`down` for data, `up` for acknowledgements) carrying CRC-64-sealed
//! [`PLNRSHP1`-framed messages](self#wire-format):
//!
//! 1. **Seed** — on attach (and whenever a link falls off the retained
//!    log) the primary ships `Snapshot { term, generation, watermark,
//!    bytes }`; the replica validates the image *before* installing it
//!    atomically, lays out fresh per-shard WALs at `watermark + 1`, and
//!    acks `watermark`.
//! 2. **Tail** — the primary polls a per-link segment cursor
//!    (`WalTailer`) and ships complete frames as `Frames { term,
//!    [(shard, frame)] }`, raw on-disk encodings included, so the inner
//!    frame CRCs travel end-to-end and detect in-flight corruption.
//! 3. **Apply** — the replica stages frames by LSN (a bounded reorder
//!    buffer absorbs out-of-order delivery, duplicates are dropped by
//!    LSN), mirrors each contiguous run into its own WAL
//!    (log-then-apply, one fsync per batch), replays it into the staged
//!    set, and publishes **once per batch** — per-record publishing
//!    would cap catch-up far below the cold-replay rate.
//! 4. **Heal** — transport sends retry under capped exponential backoff
//!    with deterministic jitter ([`crate::backoff::Backoff`]); a link
//!    that stops making ack progress is rewound to its acked LSN
//!    (duplicates are cheap), and a link whose cursor precedes the
//!    oldest retained segment is re-seeded with a fresh snapshot. A
//!    replica announces itself with `Hello { term, replica, acked }` on
//!    attach and after every transport reconnect; a primary that can
//!    still serve `acked + 1` from its retained log resumes frame
//!    shipping there, and one that cannot (checkpoint truncation outran
//!    the replica) re-seeds automatically.
//! 5. **Fence** — every segment header and manifest carries a **term**.
//!    A replica that has adopted a higher term rejects lower-term
//!    traffic with `Reject { term }`; a primary that sees the rejection
//!    returns [`PlanarError::Fenced`] from every subsequent
//!    [`Primary::pump`] and must stop.
//!
//! ## Consistency contracts
//!
//! Follower reads are explicit about staleness: [`ReadConsistency::Any`]
//! serves the latest applied epoch (flagged `stale` when the replica
//! knows the primary is ahead), [`ReadConsistency::AtLeast`] returns a
//! typed [`PlanarError::ReplicaLag`] instead of a silently stale answer,
//! and [`ReadConsistency::ReadYourWrites`] bounds the read by the
//! primary's appended watermark from the last heartbeat.
//!
//! ## Failover
//!
//! The primary heartbeats `{ term, appended, acked }` on every link;
//! a replica whose lease (`FailoverConfig::lease_ms`) expires without
//! one reports `primary_alive == false`. [`elect`] picks the replica
//! with the highest **acked** (mirrored-and-fsynced) LSN — ties break to
//! the lowest index — and [`Replica::promote`] turns it into a new
//! [`Primary`] under `term + 1`: acked-on-the-old-primary mutations are
//! on the promoted replica's disk by construction (`acked ⇒ mirrored +
//! fsynced`), which the failover proptests sweep at every kill point.
//!
//! ## Wire format
//!
//! ```text
//! | "PLNRSHP1" | type u8 | body | crc64 u64 |      (integers LE)
//! type 1 Snapshot:  term u64 | generation u64 | watermark u64 | len u64 | bytes
//! type 2 Frames:    term u64 | count u32 | { shard u32 | len u32 | frame }*
//! type 3 Heartbeat: term u64 | appended u64 | acked u64
//! type 4 Ack:       term u64 | replica u32 | acked u64 | applied u64
//! type 5 Reject:    term u64
//! type 6 Hello:     term u64 | replica u32 | acked u64
//! ```
//!
//! A `shard` of `u32::MAX` marks a broadcast record (`Compact` /
//! `Checkpoint` land on every shard's log at one shared LSN); the
//! replica expands it back to every shard.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::backoff::Backoff;
use crate::concurrent::{
    ConcurrencyConfig, ConcurrentDurableShardedIndexSet, ConcurrentShardedIndexSet, Snapshot,
};
use crate::persist::{install_snapshot_bytes, SaveOptions};
use crate::shard::ShardedIndexSet;
use crate::store::{KeyStore, VecStore};
use crate::wal::{
    init_shard_wals, parse_frame, read_manifest, shard_wal_dir, snapshot_path, wal_root,
    write_manifest, DurableShardedIndexSet, Lsn, Manifest, Mutation, MutationAck, QuorumGate,
    TailedFrame, WalOptions, WalRecord, WalTailer, WalWriter,
};
use crate::{PlanarError, Result};

/// The 8-byte banner/magic of every ship-protocol message. A TCP client
/// also writes it once per connection before its first framed message,
/// which is how the serve listener's protocol sniff routes the
/// connection to replication (see `planar-serve`).
pub const SHIP_MAGIC: &[u8; 8] = b"PLNRSHP1";
const MSG_SNAPSHOT: u8 = 1;
const MSG_FRAMES: u8 = 2;
const MSG_HEARTBEAT: u8 = 3;
const MSG_ACK: u8 = 4;
const MSG_REJECT: u8 = 5;
const MSG_HELLO: u8 = 6;

/// `shard` sentinel for records broadcast to every shard's WAL
/// (`Compact`, `Checkpoint`): shipped once, expanded on apply.
const BROADCAST_SHARD: u32 = u32::MAX;

fn shiperr(msg: impl Into<String>) -> PlanarError {
    PlanarError::Persist(format!("replication: {}", msg.into()))
}

fn shipio(ctx: &str, e: std::io::Error) -> PlanarError {
    PlanarError::Persist(format!("replication: {ctx}: {e}"))
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// A unidirectional, unreliable, message-oriented byte pipe. The
/// replication protocol assumes nothing beyond "a sent message *may*
/// arrive, once, intact": loss, duplication, reordering, and corruption
/// are all detected (message CRC, frame CRCs, LSN staging) and healed
/// (retransmit from the acked watermark, snapshot re-seed) above this
/// trait.
pub trait Transport: Send + std::fmt::Debug {
    /// Enqueue one message for delivery. `Ok` means *accepted*, not
    /// *delivered*.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] when the transport cannot accept the
    /// message now (callers retry under backoff).
    fn send(&mut self, msg: Vec<u8>) -> Result<()>;

    /// Dequeue the next message, or `None` when the pipe is empty.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on transport failure.
    fn recv(&mut self) -> Result<Option<Vec<u8>>>;

    /// False once the pipe is permanently closed: the peer went away and
    /// this transport will never deliver again. [`Primary::pump`] reaps
    /// links whose transports report disconnection. In-process and spool
    /// transports never close.
    fn connected(&self) -> bool {
        true
    }

    /// A counter that advances every time the transport transparently
    /// re-established its underlying connection. A [`Replica`] watches
    /// it to re-announce itself (`Hello`) after each reconnect, since the
    /// remote end may have lost all per-connection state. Transports
    /// that never reconnect return a constant.
    fn reconnect_generation(&self) -> u64 {
        0
    }
}

/// In-process [`Transport`]: a shared FIFO. Clones address the same
/// queue, so one clone is the sending end and another the receiving end.
#[derive(Debug, Clone, Default)]
pub struct ChannelTransport {
    queue: Arc<Mutex<VecDeque<Vec<u8>>>>,
}

impl ChannelTransport {
    /// A fresh, empty pipe.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Vec<u8>>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Messages currently queued (tests and health checks).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, msg: Vec<u8>) -> Result<()> {
        self.lock().push_back(msg);
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(self.lock().pop_front())
    }
}

/// Directory-spool [`Transport`]: each message is a numbered file
/// (`msg-<seq>.bin`, temp-written then renamed, so a reader never sees a
/// half-written message), delivered in name order and deleted on
/// receive. Works across processes sharing a filesystem; the spool
/// directory is the whole wire, so every transport fault the tests
/// inject has a bytes-on-disk analogue.
#[derive(Debug)]
pub struct DirTransport {
    dir: PathBuf,
    next_seq: u64,
}

impl DirTransport {
    /// Open (creating if needed) the spool at `dir`. The send sequence
    /// resumes above any message already spooled.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] when the directory cannot be created or
    /// listed.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| shipio("create spool dir", e))?;
        let mut next_seq = 0;
        for seq in Self::spooled(&dir)? {
            next_seq = next_seq.max(seq + 1);
        }
        Ok(Self { dir, next_seq })
    }

    fn spooled(dir: &Path) -> Result<Vec<u64>> {
        let mut seqs = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| shipio("list spool dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| shipio("list spool dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(digits) = name
                .strip_prefix("msg-")
                .and_then(|n| n.strip_suffix(".bin"))
            {
                if let Ok(seq) = digits.parse() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn msg_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("msg-{seq:020}.bin"))
    }
}

impl Transport for DirTransport {
    fn send(&mut self, msg: Vec<u8>) -> Result<()> {
        let seq = self.next_seq;
        let tmp = self.dir.join(format!(".msg-{seq:020}.tmp"));
        fs::write(&tmp, &msg).map_err(|e| shipio("spool message", e))?;
        fs::rename(&tmp, self.msg_path(seq)).map_err(|e| shipio("publish message", e))?;
        self.next_seq = seq + 1;
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        let Some(&seq) = Self::spooled(&self.dir)?.first() else {
            return Ok(None);
        };
        let path = self.msg_path(seq);
        let bytes = fs::read(&path).map_err(|e| shipio("read spooled message", e))?;
        fs::remove_file(&path).map_err(|e| shipio("consume spooled message", e))?;
        Ok(Some(bytes))
    }
}

/// A [`Transport`] wrapper that perturbs sends according to the
/// process-global schedule armed with
/// [`crate::fault::arm_transport_fault`]: drop, duplicate, reorder a
/// pair, tear, or bit-flip — each exactly once, on the scheduled send.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    sends: u64,
    held: Option<Vec<u8>>,
}

#[cfg(any(test, feature = "fault-injection"))]
impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner`; behaves identically until a fault is armed.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            sends: 0,
            held: None,
        }
    }
}

#[cfg(any(test, feature = "fault-injection"))]
impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, msg: Vec<u8>) -> Result<()> {
        use crate::fault::TransportFaultKind;
        let this_send = self.sends;
        self.sends += 1;
        let action = crate::fault::transport_fault_action(this_send);
        // A message held back by ReorderPair is released *after* the
        // current send, swapping the pair's delivery order.
        let held = self.held.take();
        let out = match action {
            None => self.inner.send(msg),
            Some(TransportFaultKind::DropSend) => Ok(()),
            Some(TransportFaultKind::DuplicateSend) => {
                self.inner.send(msg.clone())?;
                self.inner.send(msg)
            }
            Some(TransportFaultKind::ReorderPair) => {
                self.held = Some(msg);
                Ok(())
            }
            Some(TransportFaultKind::Torn { keep }) => {
                let mut torn = msg;
                torn.truncate(keep.min(torn.len()));
                self.inner.send(torn)
            }
            Some(TransportFaultKind::BitFlip { offset, bit }) => {
                let mut flipped = msg;
                if let Some(byte) = flipped.get_mut(offset) {
                    *byte ^= 1u8 << (bit & 7);
                }
                self.inner.send(flipped)
            }
        };
        if let Some(held) = held {
            self.inner.send(held)?;
        }
        out
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        self.inner.recv()
    }
}

// ---------------------------------------------------------------------------
// Served endpoints (the server side of a TCP ship connection)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct EndpointShared {
    inbound: Mutex<VecDeque<Vec<u8>>>,
    outbound: Mutex<VecDeque<Vec<u8>>>,
    /// Signaled when `outbound` gains a message or the endpoint closes.
    wake: Condvar,
    closed: AtomicBool,
}

/// The replication-facing half of a served ship connection: a
/// [`Transport`] whose messages are ferried to/from the peer socket by a
/// [`ShipEndpointDriver`] on the serving side. Clones share the
/// connection, so one boxed clone serves as a link's `down` and another
/// as its `up`. Once the driver closes (socket gone), the endpoint
/// reports `connected() == false` and [`Primary::pump`] reaps the link.
#[derive(Debug, Clone)]
pub struct ShipEndpoint {
    shared: Arc<EndpointShared>,
}

impl Transport for ShipEndpoint {
    fn send(&mut self, msg: Vec<u8>) -> Result<()> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(shiperr("ship connection closed"));
        }
        self.shared
            .outbound
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(msg);
        self.shared.wake.notify_all();
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(self
            .shared
            .inbound
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front())
    }

    fn connected(&self) -> bool {
        // Drain what already arrived even after close; reap only when
        // nothing is left to read.
        !self.shared.closed.load(Ordering::Acquire)
            || !self
                .shared
                .inbound
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
    }
}

/// The socket-facing half of a served ship connection (see
/// [`ShipEndpoint`]): the connection's reader thread pushes decoded
/// messages in with [`ShipEndpointDriver::push_inbound`], its writer
/// thread drains [`ShipEndpointDriver::wait_outbound`], and either side
/// closes the pair when the socket dies.
#[derive(Debug, Clone)]
pub struct ShipEndpointDriver {
    shared: Arc<EndpointShared>,
}

impl ShipEndpointDriver {
    /// Deliver one message received from the socket.
    pub fn push_inbound(&self, msg: Vec<u8>) {
        self.shared
            .inbound
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(msg);
    }

    /// Take the next outbound message, waiting up to `timeout` for one.
    /// Returns `None` on timeout or once closed with nothing queued —
    /// check [`ShipEndpointDriver::is_closed`] to tell them apart.
    pub fn wait_outbound(&self, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        let mut queue = self
            .shared
            .outbound
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = queue.pop_front() {
                return Some(msg);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .wake
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }

    /// Mark the connection dead: senders start failing, the transport
    /// reports disconnected, and any `wait_outbound` returns.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.wake.notify_all();
    }

    /// True once [`ShipEndpointDriver::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

/// Create the two halves of a served ship connection: the
/// replication-facing [`ShipEndpoint`] (box clones of it as a link's
/// `down` and `up`) and the socket-facing [`ShipEndpointDriver`].
pub fn endpoint_pair() -> (ShipEndpoint, ShipEndpointDriver) {
    let shared = Arc::new(EndpointShared {
        inbound: Mutex::new(VecDeque::new()),
        outbound: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        closed: AtomicBool::new(false),
    });
    (
        ShipEndpoint {
            shared: Arc::clone(&shared),
        },
        ShipEndpointDriver { shared },
    )
}

// ---------------------------------------------------------------------------
// TCP transport (the client side of a TCP ship connection)
// ---------------------------------------------------------------------------

/// Timeouts and limits for a [`TcpTransport`] link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpLinkOptions {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-`recv` socket read timeout: an empty socket returns
    /// `Ok(None)` after at most this long.
    pub read_timeout: Duration,
    /// Socket write timeout for `send`.
    pub write_timeout: Duration,
    /// First reconnect delay after a connection failure.
    pub backoff_base_ms: u64,
    /// Reconnect delay ceiling.
    pub backoff_cap_ms: u64,
    /// Largest acceptable framed message (snapshot seeds dominate).
    /// An inbound length above this is treated as stream desync: the
    /// connection is reset and re-established.
    pub max_message: usize,
}

impl Default for TcpLinkOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_millis(1),
            write_timeout: Duration::from_secs(1),
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            max_message: 1 << 30,
        }
    }
}

#[derive(Debug)]
struct TcpClient {
    addr: SocketAddr,
    opts: TcpLinkOptions,
    stream: Option<TcpStream>,
    /// Partial inbound frame accumulator.
    rx: Vec<u8>,
    backoff: Backoff,
    epoch: Instant,
    /// Successful connections so far — the reconnect generation.
    connects: u64,
}

impl TcpClient {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Drop the connection (and any partial inbound frame — the peer
    /// will retransmit above the message layer) and schedule a retry.
    fn reset(&mut self) {
        self.stream = None;
        self.rx.clear();
        let now = self.now_ms();
        self.backoff.failure(now);
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream> {
        if self.stream.is_none() {
            if !self.backoff.ready(self.now_ms()) {
                return Err(shiperr("tcp link backing off before reconnect"));
            }
            let attempt = (|| -> std::io::Result<TcpStream> {
                let stream = TcpStream::connect_timeout(&self.addr, self.opts.connect_timeout)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(self.opts.read_timeout))?;
                stream.set_write_timeout(Some(self.opts.write_timeout))?;
                // The protocol banner: the serve listener sniffs these 8
                // bytes to route this connection to replication.
                let mut s = stream.try_clone()?;
                s.write_all(SHIP_MAGIC)?;
                Ok(stream)
            })();
            match attempt {
                Ok(stream) => {
                    self.stream = Some(stream);
                    self.connects += 1;
                    self.backoff.success();
                }
                Err(e) => {
                    self.reset();
                    return Err(shipio("tcp connect", e));
                }
            }
        }
        Ok(self.stream.as_mut().expect("connected above"))
    }

    fn send(&mut self, msg: Vec<u8>) -> Result<()> {
        if msg.len() > self.opts.max_message {
            return Err(shiperr(format!(
                "message of {} bytes exceeds the {} byte link cap",
                msg.len(),
                self.opts.max_message
            )));
        }
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("connected");
        let mut framed = Vec::with_capacity(4 + msg.len());
        framed.extend_from_slice(&(msg.len() as u32).to_le_bytes());
        framed.extend_from_slice(&msg);
        if let Err(e) = stream.write_all(&framed) {
            self.reset();
            return Err(shipio("tcp send", e));
        }
        Ok(())
    }

    /// Extract one complete framed message from `rx`, or detect desync.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.rx.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.rx[..4].try_into().expect("4 bytes")) as usize;
        if len < SHIP_MAGIC.len() + 1 || len > self.opts.max_message {
            self.reset();
            return Err(shiperr(format!(
                "tcp stream desynced (framed length {len}); resetting connection"
            )));
        }
        if self.rx.len() < 4 + len {
            return Ok(None);
        }
        let msg: Vec<u8> = self.rx[4..4 + len].to_vec();
        self.rx.drain(..4 + len);
        if &msg[..SHIP_MAGIC.len()] != SHIP_MAGIC {
            // Whatever this is, it is not the next ship message: the
            // byte stream lost framing (e.g. a truncated write upstream).
            // Resetting resynchronizes — retransmission heals the loss.
            self.reset();
            return Err(shiperr(
                "tcp stream desynced (bad message magic); resetting connection",
            ));
        }
        Ok(Some(msg))
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        if let Some(msg) = self.take_frame()? {
            return Ok(Some(msg));
        }
        if self.ensure_connected().is_err() {
            // Between reconnect attempts an empty link is just empty.
            return Ok(None);
        }
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let stream = self.stream.as_mut().expect("connected");
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // Orderly close (or reset made visible as EOF).
                    self.reset();
                    return Ok(None);
                }
                Ok(n) => {
                    self.rx.extend_from_slice(&chunk[..n]);
                    if let Some(msg) = self.take_frame()? {
                        return Ok(Some(msg));
                    }
                    // Keep reading: a partial frame is buffered and the
                    // socket may already hold the rest.
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => {
                    self.reset();
                    return Err(shipio("tcp recv", e));
                }
            }
        }
    }
}

/// The client (dialing) side of a TCP ship link: connects to a
/// `planar-serve` listener, announces itself with the [`SHIP_MAGIC`]
/// banner, and exchanges `u32`-length-prefixed ship messages over one
/// socket. Clones share the connection, so one boxed clone serves as a
/// [`Replica`]'s `down` and another as its `up`.
///
/// The link self-heals: connection failures reconnect under capped
/// exponential deterministic-jitter backoff, stream desync (bad framing
/// after a fault) resets the connection, and every successful connect
/// bumps [`Transport::reconnect_generation`] so the replica re-announces
/// (`Hello`) and the primary resumes or re-seeds it.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    client: Arc<Mutex<TcpClient>>,
}

impl TcpTransport {
    /// A lazily-connecting link to `addr` (nothing is dialed until the
    /// first send/recv).
    pub fn new(addr: SocketAddr, opts: TcpLinkOptions) -> Self {
        Self {
            client: Arc::new(Mutex::new(TcpClient {
                addr,
                opts,
                stream: None,
                rx: Vec::new(),
                backoff: Backoff::new(
                    opts.backoff_base_ms,
                    opts.backoff_cap_ms,
                    0xD1B5_4A32_D192_ED03 ^ u64::from(addr.port()),
                ),
                epoch: Instant::now(),
                connects: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, TcpClient> {
        self.client.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Successful connections so far (0 = never connected).
    pub fn connects(&self) -> u64 {
        self.lock().connects
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: Vec<u8>) -> Result<()> {
        self.lock().send(msg)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        self.lock().recv()
    }

    // `connected` stays `true`: the link heals by reconnecting, so the
    // peer should keep the logical link alive while it does.

    fn reconnect_generation(&self) -> u64 {
        self.lock().connects
    }
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// One protocol message (see the [module docs](self#wire-format)).
#[derive(Debug, Clone, PartialEq, Eq)]
enum ShipMessage {
    /// Bootstrap / re-seed image: a durable checkpoint snapshot.
    Snapshot {
        term: u64,
        generation: u64,
        watermark: Lsn,
        bytes: Vec<u8>,
    },
    /// A batch of raw WAL frames in LSN order.
    Frames {
        term: u64,
        frames: Vec<(u32, Vec<u8>)>,
    },
    /// Primary liveness + watermarks (drives the replica's lease and
    /// read-your-writes bound).
    Heartbeat {
        term: u64,
        appended: Lsn,
        acked: Lsn,
    },
    /// Replica progress: `acked` is mirrored-and-fsynced, `applied` is
    /// queryable.
    Ack {
        term: u64,
        replica: u32,
        acked: Lsn,
        applied: Lsn,
    },
    /// Fencing: the sender holds `term` and refuses lower-term traffic.
    Reject { term: u64 },
    /// Replica attach/re-attach announcement: "I have mirrored and
    /// fsynced up to `acked`; resume me there or re-seed me." Sent on
    /// first contact and after every transport reconnect.
    Hello { term: u64, replica: u32, acked: Lsn },
}

impl ShipMessage {
    fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(SHIP_MAGIC);
        match self {
            ShipMessage::Snapshot {
                term,
                generation,
                watermark,
                bytes,
            } => {
                buf.put_u8(MSG_SNAPSHOT);
                buf.put_u64_le(*term);
                buf.put_u64_le(*generation);
                buf.put_u64_le(*watermark);
                buf.put_u64_le(bytes.len() as u64);
                buf.put_slice(bytes);
            }
            ShipMessage::Frames { term, frames } => {
                buf.put_u8(MSG_FRAMES);
                buf.put_u64_le(*term);
                buf.put_u32_le(frames.len() as u32);
                for (shard, frame) in frames {
                    buf.put_u32_le(*shard);
                    buf.put_u32_le(frame.len() as u32);
                    buf.put_slice(frame);
                }
            }
            ShipMessage::Heartbeat {
                term,
                appended,
                acked,
            } => {
                buf.put_u8(MSG_HEARTBEAT);
                buf.put_u64_le(*term);
                buf.put_u64_le(*appended);
                buf.put_u64_le(*acked);
            }
            ShipMessage::Ack {
                term,
                replica,
                acked,
                applied,
            } => {
                buf.put_u8(MSG_ACK);
                buf.put_u64_le(*term);
                buf.put_u32_le(*replica);
                buf.put_u64_le(*acked);
                buf.put_u64_le(*applied);
            }
            ShipMessage::Reject { term } => {
                buf.put_u8(MSG_REJECT);
                buf.put_u64_le(*term);
            }
            ShipMessage::Hello {
                term,
                replica,
                acked,
            } => {
                buf.put_u8(MSG_HELLO);
                buf.put_u64_le(*term);
                buf.put_u32_le(*replica);
                buf.put_u64_le(*acked);
            }
        }
        crate::frame::seal_buf(&mut buf);
        buf.to_vec()
    }

    /// Parse and CRC-check a received message. Any deviation — short
    /// buffer, bad magic, bad CRC, inconsistent lengths — is a typed
    /// error; the caller counts it and relies on retransmission.
    fn decode(bytes: &[u8]) -> Result<ShipMessage> {
        if bytes.len() < SHIP_MAGIC.len() + 1 + 8 {
            return Err(shiperr("message truncated"));
        }
        if &bytes[..8] != SHIP_MAGIC {
            return Err(shiperr("bad message magic"));
        }
        let body_end = bytes.len() - crate::frame::CRC_LEN;
        if crate::frame::open_sealed(bytes).is_none() {
            return Err(shiperr("message failed its CRC"));
        }
        let kind = bytes[8];
        let mut buf = Bytes::copy_from_slice(&bytes[9..body_end]);
        let need = |buf: &Bytes, n: usize, what: &str| -> Result<()> {
            if buf.remaining() < n {
                return Err(shiperr(format!("{what} truncated")));
            }
            Ok(())
        };
        match kind {
            MSG_SNAPSHOT => {
                need(&buf, 32, "snapshot header")?;
                let term = buf.get_u64_le();
                let generation = buf.get_u64_le();
                let watermark = buf.get_u64_le();
                let len = buf.get_u64_le() as usize;
                if buf.remaining() != len {
                    return Err(shiperr("snapshot length mismatch"));
                }
                Ok(ShipMessage::Snapshot {
                    term,
                    generation,
                    watermark,
                    bytes: buf.to_vec(),
                })
            }
            MSG_FRAMES => {
                need(&buf, 12, "frames header")?;
                let term = buf.get_u64_le();
                let count = buf.get_u32_le() as usize;
                let mut frames = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    need(&buf, 8, "frame header")?;
                    let shard = buf.get_u32_le();
                    let len = buf.get_u32_le() as usize;
                    need(&buf, len, "frame body")?;
                    let mut frame = vec![0u8; len];
                    buf.copy_to_slice(&mut frame);
                    frames.push((shard, frame));
                }
                if buf.has_remaining() {
                    return Err(shiperr("trailing bytes after frames"));
                }
                Ok(ShipMessage::Frames { term, frames })
            }
            MSG_HEARTBEAT => {
                need(&buf, 24, "heartbeat")?;
                Ok(ShipMessage::Heartbeat {
                    term: buf.get_u64_le(),
                    appended: buf.get_u64_le(),
                    acked: buf.get_u64_le(),
                })
            }
            MSG_ACK => {
                need(&buf, 28, "ack")?;
                Ok(ShipMessage::Ack {
                    term: buf.get_u64_le(),
                    replica: buf.get_u32_le(),
                    acked: buf.get_u64_le(),
                    applied: buf.get_u64_le(),
                })
            }
            MSG_REJECT => {
                need(&buf, 8, "reject")?;
                Ok(ShipMessage::Reject {
                    term: buf.get_u64_le(),
                })
            }
            MSG_HELLO => {
                need(&buf, 20, "hello")?;
                Ok(ShipMessage::Hello {
                    term: buf.get_u64_le(),
                    replica: buf.get_u32_le(),
                    acked: buf.get_u64_le(),
                })
            }
            other => Err(shiperr(format!("unknown message type {other}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded tailing
// ---------------------------------------------------------------------------

/// One shipped frame: the raw on-disk encoding plus its routing.
#[derive(Debug, Clone)]
struct ShippedFrame {
    shard: u32,
    lsn: Lsn,
    bytes: Vec<u8>,
}

/// Merges the per-shard [`WalTailer`] streams of one durable directory
/// into a single contiguous-LSN stream. Broadcast records (`Compact`,
/// `Checkpoint` — same LSN on every shard's log) are emitted **once**
/// with [`BROADCAST_SHARD`]; stale copies surfacing later on other
/// shards are dropped.
#[derive(Debug)]
struct ShardedTailer {
    tailers: Vec<WalTailer>,
    queues: Vec<VecDeque<TailedFrame>>,
    next_lsn: Lsn,
}

impl ShardedTailer {
    fn new(dir: &Path, shards: usize, next_lsn: Lsn) -> Self {
        Self {
            tailers: (0..shards)
                .map(|s| WalTailer::new(shard_wal_dir(dir, s), next_lsn))
                .collect(),
            queues: vec![VecDeque::new(); shards],
            next_lsn,
        }
    }

    fn reset(&mut self, next_lsn: Lsn) {
        for t in &mut self.tailers {
            t.reset(next_lsn);
        }
        for q in &mut self.queues {
            q.clear();
        }
        self.next_lsn = next_lsn;
    }

    /// All complete frames appended since the last poll, in global LSN
    /// order, stopping at the first LSN not yet on any disk (an append
    /// or flush in flight).
    fn poll(&mut self) -> Result<Vec<ShippedFrame>> {
        for (t, q) in self.tailers.iter_mut().zip(&mut self.queues) {
            for f in t.poll()? {
                q.push_back(f);
            }
        }
        let mut out = Vec::new();
        loop {
            // Drop stale broadcast copies (LSN already emitted via
            // another shard's log).
            for q in &mut self.queues {
                while q.front().is_some_and(|f| f.lsn < self.next_lsn) {
                    q.pop_front();
                }
            }
            let Some(shard) = self
                .queues
                .iter()
                .position(|q| q.front().is_some_and(|f| f.lsn == self.next_lsn))
            else {
                return Ok(out);
            };
            let frame = self.queues[shard].pop_front().expect("front checked");
            let Some((_, _, rec)) = parse_frame(&frame.bytes) else {
                return Err(shiperr(format!(
                    "tailed frame at lsn {} no longer parses",
                    frame.lsn
                )));
            };
            let broadcast = matches!(
                rec,
                WalRecord::Compact { .. } | WalRecord::Checkpoint { .. }
            );
            out.push(ShippedFrame {
                shard: if broadcast {
                    BROADCAST_SHARD
                } else {
                    shard as u32
                },
                lsn: frame.lsn,
                bytes: frame.bytes,
            });
            self.next_lsn = frame.lsn + 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration, stats, health
// ---------------------------------------------------------------------------

/// Replication timing knobs. All times are caller-supplied milliseconds
/// (both [`Primary::pump`] and [`Replica::poll`] take an explicit
/// `now_ms`, so tests and the failover sweep drive time
/// deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Heartbeat period on every link.
    pub heartbeat_ms: u64,
    /// A replica that misses heartbeats for this long reports the
    /// primary dead ([`Replica::primary_alive`]).
    pub lease_ms: u64,
    /// A link with shipped-but-unacked frames and no ack progress for
    /// this long is rewound to its acked LSN and re-shipped.
    pub retransmit_ms: u64,
    /// First retry delay after a transport error.
    pub backoff_base_ms: u64,
    /// Retry delay ceiling.
    pub backoff_cap_ms: u64,
    /// Replica reorder-buffer bound (staged frames): overflowing it is a
    /// loud divergence error, never silent loss.
    pub reorder_cap: usize,
    /// How long a quorum-gated acknowledgement waits for replica
    /// confirmations before failing typed with
    /// [`PlanarError::QuorumTimeout`] (see [`AckPolicy::Quorum`]).
    pub quorum_timeout_ms: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self {
            heartbeat_ms: 100,
            lease_ms: 500,
            retransmit_ms: 250,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            reorder_cap: 4_096,
            quorum_timeout_ms: 2_000,
        }
    }
}

/// When a write on the [`Primary`] is acknowledged to its caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckPolicy {
    /// Local durability only (the `FsyncPolicy` contract as before);
    /// replication proceeds in the background.
    #[default]
    Async,
    /// The group-commit acknowledgement of a write is additionally held
    /// until at least `n` replicas confirm (mirror + fsync) the covering
    /// LSN, or fails typed with [`PlanarError::QuorumTimeout`] after
    /// [`FailoverConfig::quorum_timeout_ms`]. Gating applies to the
    /// `FsyncPolicy::Always` acknowledgement path and to
    /// [`Primary::write_quorum`].
    Quorum(usize),
}

/// Counters for one replication endpoint (primary or replica).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Frames shipped to (primary) / applied by (replica) the peer.
    pub shipped_frames: u64,
    /// Bytes of frame payload shipped.
    pub shipped_bytes: u64,
    /// Frames applied into the replica set.
    pub applied_frames: u64,
    /// Frames dropped as already-applied duplicates.
    pub duplicate_frames: u64,
    /// Frames staged out of LSN order before applying.
    pub reordered_frames: u64,
    /// Messages discarded for CRC/format violations.
    pub corrupt_messages: u64,
    /// Individual frames discarded for CRC violations.
    pub corrupt_frames: u64,
    /// Transport send failures (retried under backoff).
    pub retries: u64,
    /// Lower-term messages refused with `Reject`.
    pub rejects: u64,
    /// Snapshot seeds shipped (primary) / installed (replica).
    pub snapshots: u64,
    /// Links rewound to their acked LSN after an ack stall.
    pub rewinds: u64,
    /// Quorum-gated acknowledgements that timed out typed.
    pub quorum_timeouts: u64,
    /// Links reaped because their transport disconnected permanently.
    pub link_drops: u64,
}

/// Point-in-time replication health, as stamped into
/// [`crate::StatsAggregator::snapshot`] via
/// [`crate::StatsAggregator::record_replication`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationHealth {
    /// The primary's current term.
    pub term: u64,
    /// The primary's appended LSN.
    pub appended_lsn: Lsn,
    /// Attached replicas.
    pub replicas: usize,
    /// Lowest replica acked LSN — the durable replication frontier.
    pub min_acked_lsn: Lsn,
    /// Largest per-replica lag (`appended − acked`).
    pub max_lag: u64,
    /// Highest LSN the quorum has confirmed (0 when [`AckPolicy::Async`]
    /// or no quorum yet).
    pub quorum_frontier: Lsn,
}

/// One attached replica as the primary sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// Link id assigned by [`Primary::add_replica`].
    pub id: u32,
    /// Highest LSN the replica has mirrored and fsynced.
    pub acked_lsn: Lsn,
    /// Highest LSN the replica serves reads at.
    pub applied_lsn: Lsn,
    /// `now` of the last ack, in the caller's pump clock.
    pub last_progress_ms: u64,
}

// ---------------------------------------------------------------------------
// Primary
// ---------------------------------------------------------------------------

struct Link {
    id: u32,
    down: Box<dyn Transport>,
    up: Box<dyn Transport>,
    tailer: ShardedTailer,
    outbox: VecDeque<Vec<u8>>,
    backoff: Backoff,
    acked: Lsn,
    applied: Lsn,
    acked_any: bool,
    shipped: Lsn,
    last_progress_ms: u64,
    needs_seed: bool,
    /// Ship nothing but heartbeats until the replica's `Hello` arrives
    /// and tells us whether to resume its frame stream or re-seed it.
    awaiting_hello: bool,
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("id", &self.id)
            .field("acked", &self.acked)
            .field("applied", &self.applied)
            .field("shipped", &self.shipped)
            .field("needs_seed", &self.needs_seed)
            .field("awaiting_hello", &self.awaiting_hello)
            .finish_non_exhaustive()
    }
}

/// The write side of a replication group: a
/// [`ConcurrentDurableShardedIndexSet`] plus per-replica shipping state.
/// Mutate and query through [`Primary::store`]; call [`Primary::pump`]
/// periodically (or after write bursts) to ship, heartbeat, and drain
/// acks.
#[derive(Debug)]
pub struct Primary<S: KeyStore + Clone = VecStore> {
    store: Arc<ConcurrentDurableShardedIndexSet<S>>,
    cfg: FailoverConfig,
    links: Vec<Link>,
    next_link_id: u32,
    last_heartbeat_ms: u64,
    fenced: Option<u64>,
    stats: ReplicationStats,
    ack_policy: AckPolicy,
    gate: Option<QuorumGate>,
}

impl<S: KeyStore + Clone> Primary<S> {
    /// Wrap `store` for replication. No replicas are attached yet.
    pub fn new(store: ConcurrentDurableShardedIndexSet<S>, cfg: FailoverConfig) -> Self {
        Self::from_shared(Arc::new(store), cfg)
    }

    /// Wrap an already-shared store — the same `Arc` can simultaneously
    /// serve queries (e.g. through `planar-serve`, whose `Engine` is
    /// implemented for `Arc<ConcurrentDurableShardedIndexSet<_>>` via
    /// deref) while this primary replicates it.
    pub fn from_shared(
        store: Arc<ConcurrentDurableShardedIndexSet<S>>,
        cfg: FailoverConfig,
    ) -> Self {
        Self {
            store,
            cfg,
            links: Vec::new(),
            next_link_id: 0,
            last_heartbeat_ms: 0,
            fenced: None,
            stats: ReplicationStats::default(),
            ack_policy: AckPolicy::Async,
            gate: None,
        }
    }

    /// The underlying store: mutations, reads, and stats go through it
    /// directly. Checkpoint through [`Primary::checkpoint`], not
    /// `store().checkpoint()` — the latter truncates segments under the
    /// link cursors, which heals (automatic re-seed) but costs every
    /// lagging replica a snapshot reinstall.
    pub fn store(&self) -> &ConcurrentDurableShardedIndexSet<S> {
        &self.store
    }

    /// A shared handle to the store, for serving reads/writes from other
    /// threads while this primary pumps replication.
    pub fn shared_store(&self) -> Arc<ConcurrentDurableShardedIndexSet<S>> {
        Arc::clone(&self.store)
    }

    /// Consume the wrapper and return the (possibly still shared) store.
    /// Any installed quorum gate is removed first — without a pump
    /// publishing confirmations it could only time out.
    pub fn into_store(self) -> Arc<ConcurrentDurableShardedIndexSet<S>> {
        self.store.clear_quorum_gate();
        self.store
    }

    /// The current acknowledgement policy.
    pub fn ack_policy(&self) -> AckPolicy {
        self.ack_policy
    }

    /// Switch the acknowledgement policy. [`AckPolicy::Quorum`] installs
    /// a [`QuorumGate`] on every shard commit queue: from then on,
    /// `FsyncPolicy::Always` acknowledgements through the store are
    /// released only after the quorum confirms the covering LSN (the
    /// caller must keep [`Primary::pump`] running on some thread, or
    /// those acks fail typed with [`PlanarError::QuorumTimeout`] —
    /// that is the contract, not a deadlock). [`AckPolicy::Async`]
    /// removes the gate.
    pub fn set_ack_policy(&mut self, policy: AckPolicy) {
        self.ack_policy = policy;
        match policy {
            AckPolicy::Async => {
                self.gate = None;
                self.store.clear_quorum_gate();
            }
            AckPolicy::Quorum(n) => {
                let gate = QuorumGate::new(n, self.cfg.quorum_timeout_ms);
                self.store.install_quorum_gate(gate.clone());
                self.gate = Some(gate);
            }
        }
    }

    /// True once the quorum has confirmed `lsn` (always false under
    /// [`AckPolicy::Async`]).
    pub fn quorum_confirmed(&self, lsn: Lsn) -> bool {
        self.gate.as_ref().is_some_and(|g| g.confirmed(lsn))
    }

    /// Highest quorum-confirmed LSN (0 under [`AckPolicy::Async`]).
    pub fn quorum_frontier(&self) -> Lsn {
        self.gate.as_ref().map_or(0, |g| g.frontier())
    }

    /// Apply one mutation and block until the quorum confirms it,
    /// pumping replication inline — the single-threaded way to issue a
    /// synchronously-replicated write (servers with a dedicated pump
    /// thread can instead rely on the gated store acknowledgements).
    ///
    /// `now_ms` anchors the pump clock; the wait advances it by real
    /// elapsed time, so transports with real latency (TCP) work and the
    /// deterministic tests stay off wall clocks everywhere else.
    ///
    /// # Errors
    ///
    /// [`PlanarError::QuorumTimeout`] after
    /// [`FailoverConfig::quorum_timeout_ms`] without confirmation (the
    /// write **is** applied and locally durable), any store error from
    /// the apply, [`PlanarError::Fenced`] if a pump observes deposition,
    /// or [`PlanarError::Persist`] when the policy is not
    /// [`AckPolicy::Quorum`].
    pub fn write_quorum(&mut self, m: &Mutation, now_ms: u64) -> Result<MutationAck> {
        let AckPolicy::Quorum(required) = self.ack_policy else {
            return Err(shiperr("write_quorum requires AckPolicy::Quorum"));
        };
        let ack = match m {
            Mutation::Insert { row } => MutationAck::Inserted(self.store.insert_point(row)?),
            Mutation::Update { id, row } => {
                self.store.update_point(*id, row)?;
                MutationAck::Updated
            }
            Mutation::Delete { id } => {
                self.store.delete_point(*id)?;
                MutationAck::Deleted
            }
        };
        // Quorum-acked writes are locally durable before the wait: the
        // tailer only ships fsynced records, and the timeout contract
        // promises "applied and durable on this node".
        self.store.sync()?;
        let lsn = self.store.wal_health().appended_lsn;
        let started = Instant::now();
        loop {
            let elapsed = started.elapsed().as_millis() as u64;
            self.pump(now_ms + elapsed)?;
            if self.quorum_confirmed(lsn) {
                return Ok(ack);
            }
            if elapsed >= self.cfg.quorum_timeout_ms {
                self.stats.quorum_timeouts += 1;
                return Err(PlanarError::QuorumTimeout {
                    lsn,
                    required,
                    frontier: self.quorum_frontier(),
                });
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Attach a replica over a transport pair (`down` carries data to
    /// the replica, `up` returns acks). The replica is seeded with the
    /// latest durable snapshot on the next [`Primary::pump`]. Returns
    /// the link id.
    pub fn add_replica(&mut self, down: Box<dyn Transport>, up: Box<dyn Transport>) -> u32 {
        self.attach(down, up, false)
    }

    /// Attach a replica whose durable state is unknown — a network peer
    /// that just (re)connected. Nothing but heartbeats is shipped until
    /// its `Hello { acked }` arrives; then the primary either resumes
    /// its frame stream at `acked + 1` (still retained) or re-seeds it
    /// (checkpoint truncation outran it). Returns the link id.
    pub fn add_replica_pending(&mut self, down: Box<dyn Transport>, up: Box<dyn Transport>) -> u32 {
        self.attach(down, up, true)
    }

    fn attach(&mut self, down: Box<dyn Transport>, up: Box<dyn Transport>, pending: bool) -> u32 {
        let id = self.next_link_id;
        self.next_link_id += 1;
        let shards = self.store.num_queues();
        self.links.push(Link {
            id,
            down,
            up,
            tailer: ShardedTailer::new(self.store.dir(), shards, 1),
            outbox: VecDeque::new(),
            backoff: Backoff::new(
                self.cfg.backoff_base_ms,
                self.cfg.backoff_cap_ms,
                0x9E37_79B9_7F4A_7C15 ^ u64::from(id),
            ),
            acked: 0,
            applied: 0,
            acked_any: false,
            shipped: 0,
            last_progress_ms: 0,
            needs_seed: !pending,
            awaiting_hello: pending,
        });
        id
    }

    /// Checkpoint the store and rebase every link cursor past the
    /// truncation point. Links that had not shipped up to the watermark
    /// re-seed automatically (their history is gone).
    ///
    /// # Errors
    ///
    /// See [`ConcurrentDurableShardedIndexSet::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<Lsn> {
        let watermark = self.store.checkpoint()?;
        for link in &mut self.links {
            if link.tailer.next_lsn > watermark {
                // Already past the truncation point; segments it still
                // needs were recreated at watermark + 1.
                continue;
            }
            link.needs_seed = true;
        }
        Ok(watermark)
    }

    /// Current term (highest across the shard WAL writers).
    pub fn term(&self) -> u64 {
        self.store.term()
    }

    /// True once every attached replica has acked `lsn` — the
    /// semi-synchronous replication bound the failover sweep uses.
    pub fn replication_acked(&self, lsn: Lsn) -> bool {
        !self.links.is_empty() && self.links.iter().all(|l| l.acked >= lsn)
    }

    /// Per-replica progress.
    pub fn replica_health(&self) -> Vec<ReplicaHealth> {
        self.links
            .iter()
            .map(|l| ReplicaHealth {
                id: l.id,
                acked_lsn: l.acked,
                applied_lsn: l.applied,
                last_progress_ms: l.last_progress_ms,
            })
            .collect()
    }

    /// Group-level health for [`crate::StatsAggregator`].
    pub fn health(&self) -> ReplicationHealth {
        let appended = self.store.wal_health().appended_lsn;
        ReplicationHealth {
            term: self.term(),
            appended_lsn: appended,
            replicas: self.links.len(),
            min_acked_lsn: self.links.iter().map(|l| l.acked).min().unwrap_or(appended),
            max_lag: self
                .links
                .iter()
                .map(|l| appended.saturating_sub(l.acked))
                .max()
                .unwrap_or(0),
            quorum_frontier: self.quorum_frontier(),
        }
    }

    /// Endpoint counters. `quorum_timeouts` folds in waits that expired
    /// inside gated store acknowledgements on other threads.
    pub fn stats(&self) -> ReplicationStats {
        let mut stats = self.stats;
        if let Some(gate) = &self.gate {
            stats.quorum_timeouts += gate.timeouts();
        }
        stats
    }

    /// One replication turn: drain acks, detect fencing, ship new
    /// frames, heartbeat, and flush per-link outboxes under backoff.
    /// Call it periodically; `now_ms` is any monotonic millisecond
    /// clock (tests pass a counter).
    ///
    /// # Errors
    ///
    /// [`PlanarError::Fenced`] once a peer with a higher term has
    /// rejected this primary — every subsequent pump fails the same way
    /// and the caller must stop writing. Transport errors are absorbed
    /// into backoff, not returned.
    pub fn pump(&mut self, now_ms: u64) -> Result<()> {
        let before = self.links.len();
        self.links
            .retain(|l| l.down.connected() && l.up.connected());
        self.stats.link_drops += (before - self.links.len()) as u64;
        self.drain_acks(now_ms);
        if let Some(observed) = self.fenced {
            return Err(PlanarError::Fenced {
                term: self.term(),
                observed,
            });
        }
        let term = self.term();
        let heartbeat_due = now_ms.saturating_sub(self.last_heartbeat_ms) >= self.cfg.heartbeat_ms
            || self.last_heartbeat_ms == 0;
        if heartbeat_due {
            self.last_heartbeat_ms = now_ms;
        }
        let health = self.store.wal_health();
        for link in &mut self.links {
            if link.awaiting_hello {
                // Heartbeats only: the replica's Hello decides between
                // resume and re-seed.
            } else if link.needs_seed {
                if link.backoff.ready(now_ms) {
                    match seed_link(&self.store, link, term) {
                        Ok(()) => {
                            link.needs_seed = false;
                            link.last_progress_ms = now_ms;
                            self.stats.snapshots += 1;
                        }
                        Err(_) => {
                            self.stats.retries += 1;
                            link.backoff.failure(now_ms);
                        }
                    }
                }
            } else {
                // Ack stall: rewind to the acked frontier (duplicates
                // are cheap — the replica drops them by LSN). A link
                // that never acked is still waiting on its seed; ship
                // a fresh one instead of frames it cannot apply.
                let stalled = link.shipped > link.acked
                    && now_ms.saturating_sub(link.last_progress_ms) >= self.cfg.retransmit_ms;
                if stalled {
                    link.last_progress_ms = now_ms;
                    link.outbox.clear();
                    if link.acked_any {
                        link.tailer.reset(link.acked + 1);
                        link.shipped = link.acked;
                        self.stats.rewinds += 1;
                    } else {
                        link.needs_seed = true;
                        continue;
                    }
                }
                match link.tailer.poll() {
                    Ok(frames) if !frames.is_empty() => {
                        let last = frames.last().expect("non-empty").lsn;
                        self.stats.shipped_frames += frames.len() as u64;
                        self.stats.shipped_bytes +=
                            frames.iter().map(|f| f.bytes.len() as u64).sum::<u64>();
                        let msg = ShipMessage::Frames {
                            term,
                            frames: frames.into_iter().map(|f| (f.shard, f.bytes)).collect(),
                        };
                        link.outbox.push_back(msg.encode());
                        link.shipped = last;
                    }
                    Ok(_) => {}
                    Err(_) => {
                        // The cursor fell off the retained log
                        // (checkpoint truncation) or the directory
                        // changed shape: re-seed.
                        link.needs_seed = true;
                    }
                }
            }
            if heartbeat_due && (link.awaiting_hello || !link.needs_seed) {
                link.outbox.push_back(
                    ShipMessage::Heartbeat {
                        term,
                        appended: health.appended_lsn,
                        acked: health.acked_lsn,
                    }
                    .encode(),
                );
            }
            while let Some(front) = link.outbox.front() {
                if !link.backoff.ready(now_ms) {
                    break;
                }
                match link.down.send(front.clone()) {
                    Ok(()) => {
                        link.outbox.pop_front();
                        link.backoff.success();
                    }
                    Err(_) => {
                        self.stats.retries += 1;
                        link.backoff.failure(now_ms);
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    fn drain_acks(&mut self, now_ms: u64) {
        let my_term = self.term();
        let dir = self.store.dir().to_path_buf();
        for link in &mut self.links {
            loop {
                let raw = match link.up.recv() {
                    Ok(Some(raw)) => raw,
                    Ok(None) => break,
                    Err(_) => {
                        self.stats.retries += 1;
                        break;
                    }
                };
                match ShipMessage::decode(&raw) {
                    Ok(ShipMessage::Ack {
                        term,
                        acked,
                        applied,
                        ..
                    }) => {
                        if term > my_term {
                            self.fenced = Some(term);
                            continue;
                        }
                        if acked > link.acked || applied > link.applied {
                            link.last_progress_ms = now_ms;
                        }
                        link.acked = link.acked.max(acked);
                        link.applied = link.applied.max(applied);
                        link.acked_any = true;
                    }
                    Ok(ShipMessage::Reject { term }) => {
                        if term > my_term {
                            self.fenced = Some(term);
                        }
                    }
                    Ok(ShipMessage::Hello { term, acked, .. }) => {
                        if term > my_term {
                            self.fenced = Some(term);
                            continue;
                        }
                        link.awaiting_hello = false;
                        link.last_progress_ms = now_ms;
                        // Resume the frame stream at acked + 1 when the
                        // retained log still covers it; otherwise the
                        // checkpoint truncation outran this replica and
                        // only a fresh seed can catch it up.
                        let resumable =
                            acked > 0 && read_manifest(&dir).is_ok_and(|m| acked >= m.watermark);
                        if resumable {
                            link.outbox.clear();
                            link.tailer.reset(acked + 1);
                            link.shipped = acked;
                            link.acked = link.acked.max(acked);
                            link.acked_any = true;
                            link.needs_seed = false;
                        } else {
                            link.needs_seed = true;
                        }
                    }
                    Ok(_) => {}
                    Err(_) => self.stats.corrupt_messages += 1,
                }
            }
        }
        if let Some(gate) = &self.gate {
            // The n-th most caught-up replica's acked LSN is the
            // quorum-confirmed frontier.
            let required = gate.required();
            if self.links.len() >= required {
                let mut acked: Vec<Lsn> = self.links.iter().map(|l| l.acked).collect();
                acked.sort_unstable_by(|a, b| b.cmp(a));
                gate.publish(acked[required - 1]);
            }
        }
    }
}

/// Ship the latest durable snapshot down a link and rebase its cursor
/// past the snapshot watermark.
fn seed_link<S: KeyStore + Clone>(
    store: &ConcurrentDurableShardedIndexSet<S>,
    link: &mut Link,
    term: u64,
) -> Result<()> {
    let manifest = read_manifest(store.dir())?;
    let bytes = fs::read(snapshot_path(store.dir(), manifest.generation))
        .map_err(|e| shipio("read checkpoint snapshot", e))?;
    let msg = ShipMessage::Snapshot {
        term: term.max(manifest.term),
        generation: manifest.generation,
        watermark: manifest.watermark,
        bytes,
    };
    link.outbox.clear();
    link.outbox.push_back(msg.encode());
    link.tailer.reset(manifest.watermark + 1);
    link.shipped = manifest.watermark;
    Ok(())
}

// ---------------------------------------------------------------------------
// Follower reads
// ---------------------------------------------------------------------------

/// Staleness contract for a follower read (see
/// [`Replica::follower_read`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadConsistency {
    /// Serve whatever is applied; the result carries a `stale` flag when
    /// the replica knows the primary is ahead.
    Any,
    /// Serve only if the replica has applied at least this LSN;
    /// otherwise a typed [`PlanarError::ReplicaLag`].
    AtLeast(Lsn),
    /// Serve only if the replica has caught up to the primary's
    /// appended watermark as of the last heartbeat — a client that just
    /// wrote to the primary sees its write or a typed error, never a
    /// silently stale answer.
    ReadYourWrites,
}

/// A consistency-checked follower read: a pinned epoch snapshot plus the
/// provenance needed to interpret it.
#[derive(Debug)]
pub struct FollowerRead<S: KeyStore + Clone = VecStore> {
    /// The pinned epoch — query it directly; it is frozen even while the
    /// replica keeps applying.
    pub snapshot: Snapshot<ShardedIndexSet<S>>,
    /// The LSN this snapshot reflects.
    pub applied_lsn: Lsn,
    /// True when the primary was known (via heartbeat) to be ahead of
    /// `applied_lsn` at read time.
    pub stale: bool,
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

struct ReplicaState<S: KeyStore + Clone> {
    set: ConcurrentShardedIndexSet<S>,
    wals: Vec<WalWriter>,
}

impl<S: KeyStore + Clone> std::fmt::Debug for ReplicaState<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaState")
            .field("wals", &self.wals.len())
            .finish_non_exhaustive()
    }
}

/// The read side of a replication link: installs the primary's snapshot,
/// tails its WAL, mirrors every frame into its own durable directory,
/// and serves [`FollowerRead`]s with explicit staleness contracts. Can
/// be [promoted](Replica::promote) to a [`Primary`] after the old
/// primary dies.
#[derive(Debug)]
pub struct Replica<S: KeyStore + Clone = VecStore> {
    dir: PathBuf,
    id: u32,
    down: Box<dyn Transport>,
    up: Box<dyn Transport>,
    opts: WalOptions,
    cfg: FailoverConfig,
    save_opts: SaveOptions,
    state: Option<ReplicaState<S>>,
    reorder: BTreeMap<Lsn, (u32, Vec<u8>)>,
    term: u64,
    generation: u64,
    snapshot_watermark: Lsn,
    applied: Lsn,
    acked: Lsn,
    hb_appended: Lsn,
    hb_at_ms: Option<u64>,
    diverged: Option<String>,
    stats: ReplicationStats,
    /// The transport reconnect generation our last `Hello` announced;
    /// `None` before the first. A mismatch (first poll, or the transport
    /// reconnected underneath us) re-announces.
    hello_gen: Option<u64>,
}

impl<S: KeyStore + Clone> Replica<S> {
    /// A replica that will keep its durable mirror in `dir` (created on
    /// snapshot install) and speak to the primary over `down`/`up`.
    /// `id` must be unique within the replication group.
    pub fn new(
        dir: impl Into<PathBuf>,
        id: u32,
        down: Box<dyn Transport>,
        up: Box<dyn Transport>,
        opts: WalOptions,
        cfg: FailoverConfig,
    ) -> Self {
        Self {
            dir: dir.into(),
            id,
            down,
            up,
            opts,
            cfg,
            save_opts: SaveOptions::default(),
            state: None,
            reorder: BTreeMap::new(),
            term: 0,
            generation: 0,
            snapshot_watermark: 0,
            applied: 0,
            acked: 0,
            hb_appended: 0,
            hb_at_ms: None,
            diverged: None,
            stats: ReplicationStats::default(),
            hello_gen: None,
        }
    }

    /// Replace this replica's transports — the reconnect path for
    /// network links whose connection object cannot heal in place (e.g.
    /// a fresh server-side ship connection after a failover promotion).
    /// All replication state (applied/acked watermarks, mirror, term) is
    /// kept; the next [`Replica::poll`] re-announces with `Hello` so the
    /// new primary resumes or re-seeds as needed.
    pub fn rewire(&mut self, down: Box<dyn Transport>, up: Box<dyn Transport>) {
        self.down = down;
        self.up = up;
        self.hello_gen = None;
    }

    /// True once a snapshot has been installed and reads can be served.
    pub fn is_seeded(&self) -> bool {
        self.state.is_some()
    }

    /// Highest LSN applied to the queryable set.
    pub fn applied_lsn(&self) -> Lsn {
        self.applied
    }

    /// Highest LSN mirrored into this replica's own WAL **and** fsynced
    /// — what this replica can guarantee after promotion, and what
    /// [`elect`] ranks by.
    pub fn acked_lsn(&self) -> Lsn {
        self.acked
    }

    /// The replication term this replica has adopted.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Endpoint counters.
    pub fn stats(&self) -> ReplicationStats {
        self.stats
    }

    /// The divergence provenance, if this replica has failed loudly.
    pub fn divergence(&self) -> Option<&str> {
        self.diverged.as_deref()
    }

    /// True while the primary's lease holds: a heartbeat arrived within
    /// [`FailoverConfig::lease_ms`] of `now_ms`. A never-heartbeated
    /// replica reports `false`.
    pub fn primary_alive(&self, now_ms: u64) -> bool {
        self.hb_at_ms
            .is_some_and(|at| now_ms.saturating_sub(at) <= self.cfg.lease_ms)
    }

    /// One replication turn: drain the down pipe, stage/apply frames,
    /// and ack progress. Returns the number of frames applied.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] once the replica has **diverged** (a
    /// replay divergence check fired, or the reorder buffer overflowed):
    /// the error carries the provenance, every subsequent poll fails the
    /// same way, and the replica never serves from the diverged state —
    /// [`Replica::follower_read`] fails too.
    pub fn poll(&mut self, now_ms: u64) -> Result<usize> {
        self.check_diverged()?;
        // (Re-)announce on first poll and after every transport
        // reconnect: the primary-side connection state is gone, and the
        // Hello tells the new one where to resume (or that we need a
        // seed).
        let gen = self
            .down
            .reconnect_generation()
            .max(self.up.reconnect_generation());
        if self.hello_gen != Some(gen) {
            let hello = ShipMessage::Hello {
                term: self.term,
                replica: self.id,
                acked: if self.state.is_some() { self.acked } else { 0 },
            };
            if self.up.send(hello.encode()).is_ok() {
                self.hello_gen = Some(gen);
            } else {
                self.stats.retries += 1;
            }
        }
        let mut progressed = false;
        loop {
            let raw = match self.down.recv() {
                Ok(Some(raw)) => raw,
                Ok(None) => break,
                Err(_) => {
                    self.stats.retries += 1;
                    break;
                }
            };
            let msg = match ShipMessage::decode(&raw) {
                Ok(msg) => msg,
                Err(_) => {
                    // Torn or bit-flipped in flight: drop it and let the
                    // ack-stall retransmit heal the gap.
                    self.stats.corrupt_messages += 1;
                    continue;
                }
            };
            match msg {
                ShipMessage::Snapshot {
                    term,
                    generation,
                    watermark,
                    bytes,
                } => {
                    if self.reject_stale_term(term) {
                        continue;
                    }
                    self.adopt_term(term)?;
                    if self.state.is_some() && watermark <= self.applied {
                        // A re-seed we outran; nothing to do.
                        continue;
                    }
                    match self.install_snapshot(generation, watermark, &bytes) {
                        Ok(()) => {
                            progressed = true;
                            self.stats.snapshots += 1;
                        }
                        Err(_) => self.stats.corrupt_messages += 1,
                    }
                }
                ShipMessage::Frames { term, frames } => {
                    if self.reject_stale_term(term) {
                        continue;
                    }
                    self.adopt_term(term)?;
                    for (shard, bytes) in frames {
                        self.stage(shard, bytes)?;
                    }
                }
                ShipMessage::Heartbeat { term, appended, .. } => {
                    if self.reject_stale_term(term) {
                        continue;
                    }
                    self.adopt_term(term)?;
                    self.hb_appended = self.hb_appended.max(appended);
                    self.hb_at_ms = Some(now_ms);
                    progressed = true;
                }
                ShipMessage::Ack { .. }
                | ShipMessage::Reject { .. }
                | ShipMessage::Hello { .. } => {
                    // Upstream-only message on the down pipe: a wiring
                    // bug or corruption that still passed the CRC.
                    self.stats.corrupt_messages += 1;
                }
            }
        }
        let applied = self.apply_ready()?;
        if applied > 0 {
            progressed = true;
        }
        if progressed && self.state.is_some() {
            let ack = ShipMessage::Ack {
                term: self.term,
                replica: self.id,
                acked: self.acked,
                applied: self.applied,
            };
            if self.up.send(ack.encode()).is_err() {
                self.stats.retries += 1;
            }
        }
        Ok(applied)
    }

    /// Consistency-checked read against the latest applied epoch.
    ///
    /// # Errors
    ///
    /// [`PlanarError::ReplicaLag`] when the requested bound is not yet
    /// applied, [`PlanarError::Persist`] when unseeded or diverged.
    pub fn follower_read(&self, consistency: ReadConsistency) -> Result<FollowerRead<S>> {
        self.check_diverged()?;
        let state = self
            .state
            .as_ref()
            .ok_or_else(|| shiperr("replica has not installed a snapshot yet"))?;
        let required = match consistency {
            ReadConsistency::Any => None,
            ReadConsistency::AtLeast(lsn) => Some(lsn),
            ReadConsistency::ReadYourWrites => Some(self.hb_appended),
        };
        if let Some(required) = required {
            if self.applied < required {
                return Err(PlanarError::ReplicaLag {
                    required,
                    applied: self.applied,
                });
            }
        }
        Ok(FollowerRead {
            snapshot: state.set.snapshot(),
            applied_lsn: self.applied,
            stale: self.applied < self.hb_appended,
        })
    }

    /// Promote this replica to a primary under `term + 1`: fsync the
    /// mirrored WALs, stamp the new term into the manifest and future
    /// segments, and reassemble a writable
    /// [`ConcurrentDurableShardedIndexSet`] over the same directory.
    /// Frames still in the reorder buffer (beyond the contiguous applied
    /// prefix) are discarded — they were never acked.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] when unseeded, diverged, or the final
    /// fsync/manifest write fails.
    pub fn promote(mut self, ccfg: ConcurrencyConfig) -> Result<Primary<S>> {
        self.check_diverged()?;
        let mut state = self
            .state
            .take()
            .ok_or_else(|| shiperr("cannot promote a replica that was never seeded"))?;
        let new_term = self.term + 1;
        for wal in &mut state.wals {
            wal.set_term(new_term);
            wal.sync()?;
        }
        write_manifest(
            &self.dir,
            Manifest {
                generation: self.generation,
                watermark: self.snapshot_watermark,
                term: new_term,
            },
        )?;
        let durable = DurableShardedIndexSet::from_parts(
            state.set.into_staged(),
            state.wals,
            self.dir,
            self.generation,
            self.applied + 1,
            self.save_opts,
        );
        let store = ConcurrentDurableShardedIndexSet::from_durable(durable, ccfg);
        Ok(Primary::new(store, self.cfg))
    }

    fn check_diverged(&self) -> Result<()> {
        match &self.diverged {
            Some(provenance) => Err(shiperr(format!("replica diverged: {provenance}"))),
            None => Ok(()),
        }
    }

    /// True (after sending `Reject`) when `term` is below ours — the
    /// sender is a deposed primary and must be fenced.
    fn reject_stale_term(&mut self, term: u64) -> bool {
        if term >= self.term {
            return false;
        }
        self.stats.rejects += 1;
        let reject = ShipMessage::Reject { term: self.term };
        if self.up.send(reject.encode()).is_err() {
            self.stats.retries += 1;
        }
        true
    }

    fn adopt_term(&mut self, term: u64) -> Result<()> {
        if term > self.term {
            self.term = term;
            if let Some(state) = &mut self.state {
                for wal in &mut state.wals {
                    wal.set_term(term);
                }
            }
        }
        Ok(())
    }

    fn install_snapshot(&mut self, generation: u64, watermark: Lsn, bytes: &[u8]) -> Result<()> {
        // Validate before anything touches disk: a bit-flipped image
        // must never land.
        let set = ShardedIndexSet::<S>::from_bytes(bytes)?;
        let shards = set.num_shards();
        fs::create_dir_all(&self.dir).map_err(|e| shipio("create replica dir", e))?;
        install_snapshot_bytes(
            &snapshot_path(&self.dir, generation),
            bytes,
            &self.save_opts,
        )?;
        write_manifest(
            &self.dir,
            Manifest {
                generation,
                watermark,
                term: self.term,
            },
        )?;
        // Reset the WAL subtree: a re-seed supersedes any mirrored
        // history (the snapshot covers it).
        let old_state = self.state.take();
        drop(old_state);
        let root = wal_root(&self.dir);
        if root.exists() {
            fs::remove_dir_all(&root).map_err(|e| shipio("reset replica wal", e))?;
        }
        init_shard_wals(&self.dir, shards, watermark + 1, self.term)?;
        let mut wals = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (wal, _) = WalWriter::open_repair(&shard_wal_dir(&self.dir, shard), self.opts)?;
            wals.push(wal);
        }
        self.state = Some(ReplicaState {
            set: ConcurrentShardedIndexSet::new(set, ConcurrencyConfig::default()),
            wals,
        });
        self.generation = generation;
        self.snapshot_watermark = watermark;
        self.applied = watermark;
        self.acked = watermark;
        self.reorder = self.reorder.split_off(&(watermark + 1));
        Ok(())
    }

    /// Stage one shipped frame by LSN. Duplicates are dropped; gaps park
    /// in the bounded reorder buffer; overflow is loud divergence.
    fn stage(&mut self, shard: u32, bytes: Vec<u8>) -> Result<()> {
        let Some((consumed, lsn, _)) = parse_frame(&bytes) else {
            self.stats.corrupt_frames += 1;
            return Ok(());
        };
        if consumed != bytes.len() {
            self.stats.corrupt_frames += 1;
            return Ok(());
        }
        if lsn <= self.applied {
            self.stats.duplicate_frames += 1;
            return Ok(());
        }
        if lsn != self.applied + 1 + self.reorder.len() as Lsn {
            self.stats.reordered_frames += 1;
        }
        if self.reorder.insert(lsn, (shard, bytes)).is_some() {
            self.stats.duplicate_frames += 1;
        }
        if self.reorder.len() > self.cfg.reorder_cap {
            let provenance = format!(
                "reorder buffer overflowed ({} staged frames, cap {}) waiting for lsn {}; \
                 shipped stream has an unhealed gap",
                self.reorder.len(),
                self.cfg.reorder_cap,
                self.applied + 1
            );
            self.diverged = Some(provenance.clone());
            return Err(shiperr(format!("replica diverged: {provenance}")));
        }
        Ok(())
    }

    /// Mirror and apply the contiguous staged run starting at
    /// `applied + 1`: log-then-apply into this replica's own WAL (one
    /// fsync per touched shard per batch), then replay into the set and
    /// publish one epoch.
    fn apply_ready(&mut self) -> Result<usize> {
        let Some(state) = &mut self.state else {
            return Ok(0);
        };
        let mut batch: Vec<(u32, Lsn, WalRecord)> = Vec::new();
        while let Some(entry) = self.reorder.first_entry() {
            let lsn = *entry.key();
            if lsn != self.applied + batch.len() as Lsn + 1 {
                break;
            }
            let (shard, bytes) = entry.remove();
            let Some((_, _, rec)) = parse_frame(&bytes) else {
                // Staged frames were parse-checked; an unparseable one
                // here is memory corruption — fail loudly.
                let provenance = format!("staged frame at lsn {lsn} no longer parses");
                self.diverged = Some(provenance.clone());
                return Err(shiperr(format!("replica diverged: {provenance}")));
            };
            batch.push((shard, lsn, rec));
        }
        if batch.is_empty() {
            return Ok(0);
        }
        let shards = state.wals.len();
        let mut touched = vec![false; shards];
        let mut applies: Vec<(usize, Lsn, WalRecord)> = Vec::with_capacity(batch.len());
        for (shard, lsn, rec) in &batch {
            if *shard == BROADCAST_SHARD {
                for (s, wal) in state.wals.iter_mut().enumerate() {
                    wal.append_frame(*lsn, rec)?;
                    touched[s] = true;
                    applies.push((s, *lsn, rec.clone()));
                }
            } else {
                let s = *shard as usize;
                if s >= shards {
                    let provenance = format!("frame at lsn {lsn} routed to unknown shard {shard}");
                    self.diverged = Some(provenance.clone());
                    return Err(shiperr(format!("replica diverged: {provenance}")));
                }
                state.wals[s].append_frame(*lsn, rec)?;
                touched[s] = true;
                applies.push((s, *lsn, rec.clone()));
            }
        }
        for (s, wal) in state.wals.iter_mut().enumerate() {
            if touched[s] {
                wal.sync()?;
            }
        }
        if let Err(e) = state.set.replay_replicated(&applies) {
            // The same divergence checks recovery runs: two logs
            // claiming one id, a gap placeholder filled twice. The
            // replica must stop, loudly, with the provenance.
            let provenance = format!("replay divergence: {e}");
            self.diverged = Some(provenance.clone());
            return Err(shiperr(format!("replica diverged: {provenance}")));
        }
        let applied_now = batch.len();
        self.applied += applied_now as Lsn;
        self.acked = self.applied;
        self.stats.applied_frames += applies.len() as u64;
        Ok(applied_now)
    }
}

/// Pick the replica to promote: highest acked (mirrored + fsynced) LSN
/// wins, ties break to the lowest index. Diverged and never-seeded
/// replicas are not electable. Returns `None` when nothing is
/// electable.
pub fn elect<S: KeyStore + Clone>(replicas: &[Replica<S>]) -> Option<usize> {
    replicas
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_seeded() && r.divergence().is_none())
        .max_by_key(|(i, r)| (r.acked_lsn(), std::cmp::Reverse(*i)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::ConcurrencyConfig;
    use crate::domain::ParameterDomain;
    use crate::fault::TempDir;
    use crate::multi::IndexConfig;
    use crate::query::{Cmp, InequalityQuery};
    use crate::shard::ShardConfig;
    use crate::table::FeatureTable;
    use crate::wal::FsyncPolicy;
    use crate::VecStore;
    use std::sync::Mutex;

    /// WAL + transport fault triggers are process-global; replication
    /// tests serialize like the wal tests do.
    static LOCK: Mutex<()> = Mutex::new(());

    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn build_sharded(n: usize) -> ShardedIndexSet<VecStore> {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![1.0 + (i % 11) as f64, 1.0 + (i % 6) as f64])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
        ShardedIndexSet::build(
            table,
            domain,
            IndexConfig::with_budget(3),
            ShardConfig::round_robin(3),
        )
        .unwrap()
    }

    fn probes() -> Vec<InequalityQuery> {
        [10.0, 14.0, 18.0]
            .iter()
            .map(|&b| InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, b).unwrap())
            .collect()
    }

    fn pipe() -> (Box<dyn Transport>, Box<dyn Transport>) {
        let t = ChannelTransport::new();
        (Box::new(t.clone()), Box::new(t))
    }

    /// A primary over a fresh temp dir plus one attached replica over
    /// in-process channels.
    fn primary_replica(n: usize) -> (TempDir, TempDir, Primary<VecStore>, Replica<VecStore>) {
        let pdir = TempDir::new("repl_primary").unwrap();
        let rdir = TempDir::new("repl_replica").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
        let store = ConcurrentDurableShardedIndexSet::create(
            pdir.path(),
            build_sharded(n),
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap();
        let mut primary = Primary::new(store, FailoverConfig::default());
        let (down_tx, down_rx) = pipe();
        let (up_tx, up_rx) = pipe();
        primary.add_replica(down_tx, up_rx);
        let replica = Replica::new(
            rdir.path().join("r0"),
            0,
            down_rx,
            up_tx,
            opts,
            FailoverConfig::default(),
        );
        (pdir, rdir, primary, replica)
    }

    /// Pump/poll both ends until quiescent. Flushes the primary's
    /// queues first: the tailer only ships what has reached the log.
    fn settle(primary: &mut Primary<VecStore>, replica: &mut Replica<VecStore>, now: &mut u64) {
        primary.store().sync().unwrap();
        for _ in 0..64 {
            *now += 200;
            primary.pump(*now).unwrap();
            let applied = replica.poll(*now).unwrap();
            primary.pump(*now).unwrap();
            if applied == 0 && replica.is_seeded() {
                let appended = primary.store().wal_health().appended_lsn;
                if replica.applied_lsn() >= appended {
                    break;
                }
            }
        }
    }

    #[test]
    fn message_codec_roundtrips_and_rejects_corruption() {
        let msgs = vec![
            ShipMessage::Snapshot {
                term: 3,
                generation: 7,
                watermark: 41,
                bytes: vec![1, 2, 3, 4, 5],
            },
            ShipMessage::Frames {
                term: 2,
                frames: vec![(0, vec![9; 12]), (BROADCAST_SHARD, vec![7; 3])],
            },
            ShipMessage::Heartbeat {
                term: 1,
                appended: 99,
                acked: 90,
            },
            ShipMessage::Ack {
                term: 1,
                replica: 4,
                acked: 88,
                applied: 87,
            },
            ShipMessage::Reject { term: 12 },
            ShipMessage::Hello {
                term: 5,
                replica: 2,
                acked: 77,
            },
        ];
        for msg in msgs {
            let enc = msg.encode();
            assert_eq!(ShipMessage::decode(&enc).unwrap(), msg);
            // Any single bit flip is detected.
            for offset in [0, 8, 9, enc.len() / 2, enc.len() - 1] {
                let mut bad = enc.clone();
                bad[offset] ^= 0x10;
                assert!(ShipMessage::decode(&bad).is_err(), "flip at {offset}");
            }
            // Truncation is detected.
            assert!(ShipMessage::decode(&enc[..enc.len() - 3]).is_err());
        }
    }

    #[test]
    fn write_quorum_confirms_and_times_out_typed() {
        let _g = serialized();
        let (_pd, _rd, mut primary, mut replica) = primary_replica(40);
        let mut now = 0u64;
        settle(&mut primary, &mut replica, &mut now);
        assert!(replica.is_seeded());

        primary.set_ack_policy(AckPolicy::Quorum(1));
        assert_eq!(primary.quorum_frontier(), 0);

        // A quorum write with a responsive replica confirms: poll the
        // replica on a sidecar thread while write_quorum pumps inline.
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let worker = {
            let mut replica = replica;
            std::thread::spawn(move || {
                let mut now = 1_000_000u64;
                while !stop2.load(Ordering::Acquire) {
                    now += 5;
                    let _ = replica.poll(now);
                    std::thread::sleep(Duration::from_millis(1));
                }
                replica
            })
        };
        let ack = primary
            .write_quorum(
                &Mutation::Insert {
                    row: vec![5.0, 5.0],
                },
                now,
            )
            .unwrap();
        assert!(matches!(ack, MutationAck::Inserted(_)));
        let lsn = primary.store().wal_health().appended_lsn;
        assert!(primary.quorum_confirmed(lsn));
        assert!(primary.health().quorum_frontier >= lsn);
        stop.store(true, Ordering::Release);
        let mut replica = worker.join().unwrap();

        // With the replica unresponsive the same write fails typed —
        // and IS still applied and durable locally (no third state).
        let before = primary.store().snapshot().len();
        primary.cfg = FailoverConfig {
            quorum_timeout_ms: 50,
            ..Default::default()
        };
        primary.set_ack_policy(AckPolicy::Quorum(1));
        let err = primary
            .write_quorum(
                &Mutation::Insert {
                    row: vec![6.0, 6.0],
                },
                now,
            )
            .unwrap_err();
        match err {
            PlanarError::QuorumTimeout { lsn, required, .. } => {
                assert_eq!(required, 1);
                assert!(lsn > 0);
            }
            other => panic!("expected QuorumTimeout, got {other}"),
        }
        assert_eq!(primary.store().snapshot().len(), before + 1);
        assert!(primary.stats().quorum_timeouts >= 1);

        // The replica catches up later; reads heal to identical answers.
        primary.cfg = FailoverConfig::default();
        let mut now2 = 2_000_000u64;
        settle(&mut primary, &mut replica, &mut now2);
        let follower = replica.follower_read(ReadConsistency::Any).unwrap();
        for q in probes() {
            assert_eq!(
                primary.store().snapshot().query(&q).unwrap().sorted_ids(),
                follower.snapshot.query(&q).unwrap().sorted_ids()
            );
        }
    }

    #[test]
    fn quorum_two_replicas_gate_on_slowest_of_quorum() {
        let _g = serialized();
        let pdir = TempDir::new("repl_quorum2").unwrap();
        let rdir = TempDir::new("repl_quorum2_r").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
        let store = ConcurrentDurableShardedIndexSet::create(
            pdir.path(),
            build_sharded(30),
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap();
        let mut primary = Primary::new(store, FailoverConfig::default());
        let mut replicas = Vec::new();
        for i in 0..2u32 {
            let (down_tx, down_rx) = pipe();
            let (up_tx, up_rx) = pipe();
            primary.add_replica(down_tx, up_rx);
            replicas.push(Replica::<VecStore>::new(
                rdir.path().join(format!("r{i}")),
                i,
                down_rx,
                up_tx,
                opts,
                FailoverConfig::default(),
            ));
        }
        primary.set_ack_policy(AckPolicy::Quorum(2));
        let mut now = 0u64;
        for _ in 0..64 {
            now += 200;
            primary.pump(now).unwrap();
            for r in &mut replicas {
                r.poll(now).unwrap();
            }
        }
        primary.store().insert_point(&[9.0, 9.0]).unwrap();
        primary.store().sync().unwrap();
        let lsn = primary.store().wal_health().appended_lsn;
        // Only replica 0 polls: a quorum of 2 must NOT confirm.
        for _ in 0..8 {
            now += 200;
            primary.pump(now).unwrap();
            replicas[0].poll(now).unwrap();
            primary.pump(now).unwrap();
        }
        assert!(!primary.quorum_confirmed(lsn));
        // Replica 1 catches up: now it confirms.
        for _ in 0..8 {
            now += 200;
            primary.pump(now).unwrap();
            replicas[1].poll(now).unwrap();
            primary.pump(now).unwrap();
        }
        assert!(primary.quorum_confirmed(lsn));
        assert_eq!(primary.quorum_frontier(), lsn);
    }

    #[test]
    fn hello_resumes_stream_without_reseed_and_reseeds_after_truncation() {
        let _g = serialized();
        let (_pd, rd, mut primary, mut replica) = primary_replica(40);
        let mut now = 0u64;
        settle(&mut primary, &mut replica, &mut now);
        let seeds_before = primary.stats().snapshots;

        for _ in 0..10 {
            primary.store().insert_point(&[3.0, 3.0]).unwrap();
        }
        settle(&mut primary, &mut replica, &mut now);
        let acked = replica.acked_lsn();

        // Simulate a network reconnect: fresh pipes on both sides, the
        // primary attaches the link pending and the replica re-wires.
        let (down_tx, down_rx) = pipe();
        let (up_tx, up_rx) = pipe();
        primary.links.clear();
        primary.add_replica_pending(down_tx, up_rx);
        replica.rewire(down_rx, up_tx);

        for _ in 0..4 {
            primary.store().insert_point(&[4.0, 4.0]).unwrap();
        }
        settle(&mut primary, &mut replica, &mut now);
        assert_eq!(
            primary.stats().snapshots,
            seeds_before,
            "a resumable replica must not be re-seeded"
        );
        assert!(replica.acked_lsn() > acked);

        // Now truncate history past the replica's watermark: the Hello
        // can no longer resume and a re-seed must happen automatically.
        let (down_tx, down_rx) = pipe();
        let (up_tx, up_rx) = pipe();
        primary.links.clear();
        for _ in 0..6 {
            primary.store().insert_point(&[5.0, 5.0]).unwrap();
        }
        primary.checkpoint().unwrap();
        primary.add_replica_pending(down_tx, up_rx);
        let stale = Replica::<VecStore>::new(
            rd.path().join("stale"),
            7,
            down_rx,
            up_tx,
            WalOptions::default().fsync(FsyncPolicy::EveryN(4)),
            FailoverConfig::default(),
        );
        let mut stale = stale;
        settle(&mut primary, &mut stale, &mut now);
        assert!(stale.is_seeded());
        assert!(primary.stats().snapshots > seeds_before);
        let follower = stale.follower_read(ReadConsistency::Any).unwrap();
        for q in probes() {
            assert_eq!(
                primary.store().snapshot().query(&q).unwrap().sorted_ids(),
                follower.snapshot.query(&q).unwrap().sorted_ids()
            );
        }
    }

    #[test]
    fn disconnected_links_are_reaped() {
        let _g = serialized();
        let (_pd, _rd, mut primary, mut replica) = primary_replica(20);
        let mut now = 0u64;
        settle(&mut primary, &mut replica, &mut now);
        assert_eq!(primary.replica_health().len(), 1);

        let (endpoint, driver) = endpoint_pair();
        primary.add_replica_pending(Box::new(endpoint.clone()), Box::new(endpoint));
        assert_eq!(primary.replica_health().len(), 2);
        driver.close();
        now += 200;
        primary.pump(now).unwrap();
        assert_eq!(primary.replica_health().len(), 1);
        assert_eq!(primary.stats().link_drops, 1);
    }

    #[test]
    fn channel_and_dir_transports_are_fifo() {
        let mut c = ChannelTransport::new();
        c.send(vec![1]).unwrap();
        c.send(vec![2]).unwrap();
        assert_eq!(c.recv().unwrap(), Some(vec![1]));
        assert_eq!(c.recv().unwrap(), Some(vec![2]));
        assert_eq!(c.recv().unwrap(), None);

        let tmp = TempDir::new("repl_dir_transport").unwrap();
        let mut tx = DirTransport::new(tmp.path()).unwrap();
        let mut rx = DirTransport::new(tmp.path()).unwrap();
        tx.send(vec![7; 100]).unwrap();
        tx.send(vec![8]).unwrap();
        assert_eq!(rx.recv().unwrap(), Some(vec![7; 100]));
        // A transport opened later resumes the sequence.
        let mut tx2 = DirTransport::new(tmp.path()).unwrap();
        tx2.send(vec![9]).unwrap();
        assert_eq!(rx.recv().unwrap(), Some(vec![8]));
        assert_eq!(rx.recv().unwrap(), Some(vec![9]));
        assert_eq!(rx.recv().unwrap(), None);
    }

    #[test]
    fn replica_bootstraps_and_follows() {
        let _g = serialized();
        let (_pd, _rd, mut primary, mut replica) = primary_replica(60);
        let mut now = 0u64;
        settle(&mut primary, &mut replica, &mut now);
        assert!(replica.is_seeded());

        for i in 0..25 {
            primary
                .store()
                .insert_point(&[2.0 + (i % 5) as f64, 3.0])
                .unwrap();
        }
        primary.store().update_point(3, &[4.0, 4.0]).unwrap();
        primary.store().delete_point(5).unwrap();
        settle(&mut primary, &mut replica, &mut now);

        let appended = primary.store().wal_health().appended_lsn;
        assert_eq!(replica.applied_lsn(), appended);
        assert!(primary.replication_acked(appended));

        // Follower reads are bit-identical to primary reads at the same
        // LSN.
        let read = replica
            .follower_read(ReadConsistency::AtLeast(appended))
            .unwrap();
        let psnap = primary.store().snapshot();
        for q in probes() {
            assert_eq!(
                read.snapshot.query(&q).unwrap().sorted_ids(),
                psnap.query(&q).unwrap().sorted_ids()
            );
        }

        // An unmet bound is a typed error, not a stale answer.
        let err = replica
            .follower_read(ReadConsistency::AtLeast(appended + 10))
            .unwrap_err();
        assert!(matches!(
            err,
            PlanarError::ReplicaLag { required, applied }
                if required == appended + 10 && applied == appended
        ));

        // Health is coherent from one snapshot.
        let health = primary.health();
        assert_eq!(health.replicas, 1);
        assert_eq!(health.min_acked_lsn, appended);
        assert_eq!(health.max_lag, 0);
        let mut agg = crate::stats::StatsAggregator::new();
        agg.record_replication(&health);
        agg.record_durable_sharded(primary.store());
        let snap = agg.snapshot();
        assert_eq!(snap.replication_lag, 0);
        assert_eq!(snap.replication_min_acked_lsn, appended);
        assert_eq!(snap.wal_ack_lag, snap.wal_appended_lsn - snap.wal_acked_lsn);
    }

    #[test]
    fn broadcast_compact_replicates() {
        let _g = serialized();
        let (_pd, _rd, mut primary, mut replica) = primary_replica(40);
        let mut now = 0u64;
        settle(&mut primary, &mut replica, &mut now);
        for id in [1u32, 2, 4, 7] {
            primary.store().delete_point(id).unwrap();
        }
        primary.store().compact(0.01).unwrap();
        settle(&mut primary, &mut replica, &mut now);
        let read = replica.follower_read(ReadConsistency::Any).unwrap();
        let psnap = primary.store().snapshot();
        assert_eq!(read.snapshot.len(), psnap.len());
        for q in probes() {
            assert_eq!(
                read.snapshot.query(&q).unwrap().sorted_ids(),
                psnap.query(&q).unwrap().sorted_ids()
            );
        }
    }

    #[test]
    fn checkpoint_truncation_reseeds_lagging_replica() {
        let _g = serialized();
        let (_pd, _rd, mut primary, mut replica) = primary_replica(40);
        let mut now = 0u64;
        settle(&mut primary, &mut replica, &mut now);
        // Mutate while the replica is not polling, then checkpoint: the
        // shipped-but-unacked frames vanish with the truncated segments.
        for i in 0..10 {
            primary
                .store()
                .insert_point(&[2.0 + i as f64, 3.0])
                .unwrap();
        }
        primary.checkpoint().unwrap();
        for i in 0..5 {
            primary
                .store()
                .insert_point(&[3.0 + i as f64, 2.0])
                .unwrap();
        }
        settle(&mut primary, &mut replica, &mut now);
        let appended = primary.store().wal_health().appended_lsn;
        assert_eq!(replica.applied_lsn(), appended);
        let read = replica.follower_read(ReadConsistency::Any).unwrap();
        let psnap = primary.store().snapshot();
        assert_eq!(read.snapshot.len(), psnap.len());
    }

    #[test]
    fn promotion_fences_the_old_primary() {
        let _g = serialized();
        let (_pd, _rd, mut primary, mut replica) = primary_replica(40);
        let mut now = 0u64;
        settle(&mut primary, &mut replica, &mut now);
        for i in 0..8 {
            primary
                .store()
                .insert_point(&[2.0 + i as f64, 3.0])
                .unwrap();
        }
        settle(&mut primary, &mut replica, &mut now);
        let old_term = primary.term();
        assert!(!replica.primary_alive(now + 10_000), "lease must expire");

        let acked = replica.acked_lsn();
        let promoted = replica.promote(ConcurrencyConfig::default()).unwrap();
        assert_eq!(promoted.term(), old_term + 1);
        assert_eq!(promoted.store().wal_health().appended_lsn, acked);

        // The promoted store keeps accepting writes under the new term.
        promoted.store().insert_point(&[9.0, 9.0]).unwrap();

        // The old primary's next ship is rejected by the promoted
        // replica's peer... simulate with a fresh replica that adopted
        // the new term via a heartbeat from the promoted primary.
        let mut promoted = promoted;
        let (down_tx, down_rx) = pipe();
        let (up_tx, up_rx) = pipe();
        promoted.add_replica(down_tx, up_rx);
        let mut r2: Replica<VecStore> = Replica::new(
            _rd.path().join("r2"),
            2,
            down_rx,
            up_tx,
            WalOptions::default().fsync(FsyncPolicy::EveryN(4)),
            FailoverConfig::default(),
        );
        settle(&mut promoted, &mut r2, &mut now);
        assert_eq!(r2.term(), old_term + 1);

        // Rewire the old primary to r2: its stale-term traffic draws a
        // Reject, and the old primary fences itself.
        let (down_tx, down_rx) = pipe();
        let (up_tx, up_rx) = pipe();
        primary.add_replica(down_tx, up_rx);
        let mut old_link_replica = r2;
        old_link_replica.down = down_rx;
        old_link_replica.up = up_tx;
        primary.store().insert_point(&[8.0, 8.0]).unwrap();
        let mut fenced = None;
        for _ in 0..32 {
            now += 200;
            match primary.pump(now) {
                Ok(()) => {}
                Err(e) => {
                    fenced = Some(e);
                    break;
                }
            }
            let _ = old_link_replica.poll(now);
        }
        match fenced {
            Some(PlanarError::Fenced { term, observed }) => {
                assert_eq!(term, old_term);
                assert_eq!(observed, old_term + 1);
            }
            other => panic!("expected Fenced, got {other:?}"),
        }
    }

    #[test]
    fn elect_prefers_highest_acked_then_lowest_index() {
        let _g = serialized();
        let rdir = TempDir::new("repl_elect").unwrap();
        let mk = |i: u32| -> Replica<VecStore> {
            let (down, _) = pipe();
            let (up, _) = pipe();
            Replica::new(
                rdir.path().join(format!("r{i}")),
                i,
                down,
                up,
                WalOptions::default(),
                FailoverConfig::default(),
            )
        };
        let replicas: Vec<Replica<VecStore>> = (0..3).map(mk).collect();
        // None seeded: nothing electable.
        assert_eq!(elect(&replicas), None);
    }

    #[test]
    fn promoted_replica_serves_identically_and_accepts_reopen() {
        let _g = serialized();
        let (_pd, _rd, mut primary, mut replica) = primary_replica(50);
        let mut now = 0u64;
        settle(&mut primary, &mut replica, &mut now);
        for i in 0..12 {
            primary
                .store()
                .insert_point(&[2.0 + i as f64, 3.0])
                .unwrap();
        }
        settle(&mut primary, &mut replica, &mut now);
        let expected: Vec<Vec<u32>> = {
            let snap = primary.store().snapshot();
            probes()
                .iter()
                .map(|q| snap.query(q).unwrap().sorted_ids())
                .collect()
        };
        let promoted = replica.promote(ConcurrencyConfig::default()).unwrap();
        let snap = promoted.store().snapshot();
        for (q, want) in probes().iter().zip(&expected) {
            assert_eq!(&snap.query(q).unwrap().sorted_ids(), want);
        }
        // The promoted store is a fully working durable set.
        promoted.store().insert_point(&[6.0, 6.0]).unwrap();
        promoted.store().reopen_wal().unwrap();
    }
}
