//! Heap-size accounting.
//!
//! The paper's Figure 13b reports the memory consumption of the index
//! structure as the number of indices and the data dimensionality vary.
//! Rather than measuring RSS (noisy, allocator-dependent), every structure
//! in this workspace reports the exact number of heap bytes it owns.

/// Structures that can report the heap bytes they own (excluding the size of
/// the value itself, i.e. `size_of::<Self>()` is *not* included).
pub trait HeapSize {
    /// Number of heap-allocated bytes owned by `self`.
    fn heap_size(&self) -> usize;

    /// Heap bytes plus the inline size of the value itself.
    fn total_size(&self) -> usize
    where
        Self: Sized,
    {
        self.heap_size() + core::mem::size_of::<Self>()
    }
}

impl<T: Copy> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * core::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_heap_size_counts_capacity() {
        let v: Vec<f64> = Vec::with_capacity(10);
        assert_eq!(v.heap_size(), 80);
        let w: Vec<u32> = vec![1, 2, 3];
        assert!(w.heap_size() >= 12);
    }

    #[test]
    fn total_size_adds_inline_part() {
        let v: Vec<u8> = Vec::new();
        assert_eq!(v.total_size(), core::mem::size_of::<Vec<u8>>());
    }
}
