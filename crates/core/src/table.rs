//! Flat storage for the feature images `φ(x)` of all data points: a
//! row-major table plus an interleaved-block columnar mirror.
//!
//! The Planar index never needs the original points `x` — only their images
//! under the application-specific feature map `φ` (and applications usually
//! keep `x` themselves). `FeatureTable` therefore stores exactly the `n × d'`
//! matrix of feature values, contiguously, so that sequential verification
//! scans are cache-friendly and the memory accounting of Fig. 13b is exact.
//!
//! Alongside the row-major buffer the table maintains a [`ColumnMajorRows`]
//! mirror: rows grouped into blocks of [`planar_geom::BLOCK_ROWS`] lanes,
//! dimension-major within each block, in one contiguous 64-byte-aligned
//! allocation. The SIMD verification kernels of `planar_geom::kernels` read
//! through this layout (see [`crate::parallel`] and [`crate::scan`]); the
//! row-major buffer remains the source of truth for single-row access.

use crate::memory::HeapSize;
use crate::quant::{QuantPolicy, QuantTier, QuantizedColumns};
use crate::{PlanarError, Result};
use planar_geom::BLOCK_ROWS;

/// Identifier of a data point: its row position in the [`FeatureTable`].
pub type PointId = u32;

/// An `n × d'` row-major table of feature values, with an always-in-sync
/// columnar mirror for blocked verification (see [`Self::columns`]) and an
/// optional quantized mirror for the fixed-point filter tier (see
/// [`Self::set_quant_policy`]).
#[derive(Debug, Clone)]
pub struct FeatureTable {
    dim: usize,
    data: Vec<f64>,
    cols: ColumnMajorRows,
    /// Quantized filter tier, present iff the active policy is not `Off`.
    /// Kept in sync by `push_row`/`update_row`; derived state, excluded
    /// from equality.
    quant: Option<QuantizedColumns>,
}

impl PartialEq for FeatureTable {
    /// Logical equality: same feature values. The quantized mirror is a
    /// cache of `(data, policy)` — two tables holding identical rows are
    /// equal even when their (possibly autotuner-chosen) tiers differ.
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.data == other.data && self.cols == other.cols
    }
}

/// Interleaved-block columnar ("SoA") layout of the same `n × d'` matrix.
///
/// Rows are grouped into blocks of [`BLOCK_ROWS`] *lanes*; within a block,
/// coordinate `j` of all lanes is contiguous. Element `(row r, dim j)` lives
/// at `block(r / BLOCK_ROWS)[j · BLOCK_ROWS + (r mod BLOCK_ROWS)]`. The
/// whole structure is a single allocation whose data region starts on a
/// 64-byte boundary (each per-dimension run is then 512 bytes = 8 cache
/// lines, also 64-byte aligned, since `BLOCK_ROWS` doubles as the lane
/// stride). The trailing partial block is allocated full-size and
/// zero-padded so kernels can always assume a `BLOCK_ROWS` stride.
///
/// Built by transposing at index-build time ([`FeatureTable::from_rows`])
/// and kept in sync by `push_row`/`update_row`; it is a *mirror* — the
/// row-major buffer stays authoritative — at the cost of 2× feature memory,
/// which [`HeapSize`] reports honestly.
#[derive(Debug)]
pub struct ColumnMajorRows {
    dim: usize,
    len: usize,
    /// Over-allocated backing buffer; the data region is `buf[start..]`.
    buf: Vec<f64>,
    /// Element offset of the 64-byte-aligned data region within `buf`.
    start: usize,
}

/// Worst-case elements needed to reach a 64-byte boundary from an 8-byte
/// aligned `Vec<f64>` base pointer.
const ALIGN_SLACK: usize = 8;

impl ColumnMajorRows {
    fn new(dim: usize) -> Self {
        Self {
            dim,
            len: 0,
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Elements per block: `dim` runs of `BLOCK_ROWS` lanes.
    #[inline]
    fn block_elems(&self) -> usize {
        self.dim * BLOCK_ROWS
    }

    /// Number of rows mirrored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are mirrored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Feature dimensionality `d'`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The lane stride of every block (`BLOCK_ROWS`).
    #[inline]
    pub fn stride(&self) -> usize {
        BLOCK_ROWS
    }

    /// True when the data region starts on a 64-byte boundary (always holds
    /// for a non-empty mirror; exposed for tests and diagnostics).
    pub fn alignment_ok(&self) -> bool {
        self.buf.is_empty() || (self.buf[self.start..].as_ptr() as usize).is_multiple_of(64)
    }

    fn offset_of(&self, row: usize, j: usize) -> usize {
        let b = row / BLOCK_ROWS;
        self.start + b * self.block_elems() + j * BLOCK_ROWS + (row % BLOCK_ROWS)
    }

    /// Append one zeroed block, preserving the 64-byte alignment of the data
    /// region across reallocation.
    fn grow_block(&mut self) {
        let blk = self.block_elems();
        if self.buf.len() + blk > self.buf.capacity() {
            let data = self.buf.len() - self.start;
            let new_cap = (data + blk).max(data * 2) + ALIGN_SLACK;
            let mut fresh: Vec<f64> = Vec::with_capacity(new_cap);
            let new_start = Self::align_offset(fresh.as_ptr());
            fresh.resize(new_start, 0.0);
            fresh.extend_from_slice(&self.buf[self.start..]);
            self.buf = fresh;
            self.start = new_start;
        }
        // Capacity is now sufficient: this resize cannot reallocate, so the
        // alignment established above survives.
        self.buf.resize(self.buf.len() + blk, 0.0);
    }

    fn reserve_rows(&mut self, additional: usize) {
        let blocks_needed = (self.len + additional).div_ceil(BLOCK_ROWS);
        let have = (self.buf.len() - self.start) / self.block_elems().max(1);
        if blocks_needed > have {
            self.buf
                .reserve((blocks_needed - have) * self.block_elems() + ALIGN_SLACK);
        }
    }

    fn align_offset(ptr: *const f64) -> usize {
        // A Vec<f64> base pointer is 8-byte aligned, so the byte distance to
        // the next 64-byte boundary is a multiple of 8.
        ((64 - (ptr as usize) % 64) % 64) / 8
    }

    /// Mirror an appended row (validation already done by the table).
    fn push_row(&mut self, row: &[f64]) {
        if self.len.is_multiple_of(BLOCK_ROWS) {
            self.grow_block();
        }
        let r = self.len;
        for (j, &v) in row.iter().enumerate() {
            let at = self.offset_of(r, j);
            self.buf[at] = v;
        }
        self.len += 1;
    }

    /// Mirror an in-place row update.
    fn update_row(&mut self, row_idx: usize, row: &[f64]) {
        for (j, &v) in row.iter().enumerate() {
            let at = self.offset_of(row_idx, j);
            self.buf[at] = v;
        }
    }

    /// Copy row `r` out of the columnar layout (tests / diagnostics).
    pub fn gather_row(&self, r: usize, out: &mut [f64]) {
        assert!(r < self.len, "row {r} out of range");
        for (j, o) in out.iter_mut().enumerate().take(self.dim) {
            *o = self.buf[self.offset_of(r, j)];
        }
    }

    /// Iterate the maximal per-block segments covering rows `[from, to)`.
    ///
    /// Each [`ColSegment`] is directly consumable by
    /// [`planar_geom::dot_block_cols`] / [`planar_geom::dot_cmp_block`]:
    /// `cols` is the block's storage shifted to the segment's first lane,
    /// with lane stride [`BLOCK_ROWS`].
    ///
    /// # Panics
    ///
    /// Panics if `to > len` or `from > to`.
    pub fn segments(&self, from: PointId, to: PointId) -> ColSegments<'_> {
        let (from, to) = (from as usize, to as usize);
        assert!(from <= to && to <= self.len, "segment range out of bounds");
        ColSegments {
            cols: self,
            cur: from,
            end: to,
        }
    }
}

impl Clone for ColumnMajorRows {
    /// Clones re-establish 64-byte alignment for the new allocation (a
    /// derived clone would copy the old `start`, which is only correct for
    /// the old base pointer).
    fn clone(&self) -> Self {
        let data = self.buf.len() - self.start;
        let mut fresh: Vec<f64> = Vec::with_capacity(data + ALIGN_SLACK);
        let new_start = Self::align_offset(fresh.as_ptr());
        fresh.resize(new_start, 0.0);
        fresh.extend_from_slice(&self.buf[self.start..]);
        Self {
            dim: self.dim,
            len: self.len,
            buf: fresh,
            start: new_start,
        }
    }
}

impl PartialEq for ColumnMajorRows {
    /// Logical equality: same shape and same mirrored values. Compares the
    /// data regions directly — zero padding is an invariant, and `start`
    /// is allocation-specific, so it is excluded.
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim
            && self.len == other.len
            && self.buf[self.start..] == other.buf[other.start..]
    }
}

impl HeapSize for ColumnMajorRows {
    fn heap_size(&self) -> usize {
        self.buf.heap_size()
    }
}

/// One per-block run of lanes yielded by [`ColumnMajorRows::segments`].
#[derive(Debug, Clone, Copy)]
pub struct ColSegment<'a> {
    /// Row id of the segment's first lane.
    pub first: PointId,
    /// Number of lanes (rows) in this segment — at most [`BLOCK_ROWS`].
    pub lanes: usize,
    /// Block storage shifted to the first lane: coordinate `j` of lane `l`
    /// is `cols[j * BLOCK_ROWS + l]`.
    pub cols: &'a [f64],
}

/// Iterator over the per-block segments of a row range.
pub struct ColSegments<'a> {
    cols: &'a ColumnMajorRows,
    cur: usize,
    end: usize,
}

impl<'a> Iterator for ColSegments<'a> {
    type Item = ColSegment<'a>;

    fn next(&mut self) -> Option<ColSegment<'a>> {
        if self.cur >= self.end {
            return None;
        }
        let c = self.cols;
        let b = self.cur / BLOCK_ROWS;
        let lane_lo = self.cur % BLOCK_ROWS;
        let lane_hi = (self.end - b * BLOCK_ROWS).min(BLOCK_ROWS);
        let block_start = c.start + b * c.block_elems();
        let lo = block_start + lane_lo;
        let hi = block_start + (c.dim - 1) * BLOCK_ROWS + lane_hi;
        let seg = ColSegment {
            first: self.cur as PointId,
            lanes: lane_hi - lane_lo,
            cols: &c.buf[lo..hi],
        };
        self.cur += seg.lanes;
        Some(seg)
    }
}

impl FeatureTable {
    /// An empty table for `dim`-dimensional features.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(PlanarError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        Ok(Self {
            dim,
            data: Vec::new(),
            cols: ColumnMajorRows::new(dim),
            quant: None,
        })
    }

    /// An empty table with room for `capacity` rows.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] if `dim == 0`.
    pub fn with_capacity(dim: usize, capacity: usize) -> Result<Self> {
        let mut t = Self::new(dim)?;
        t.data.reserve(capacity * dim);
        t.cols.reserve_rows(capacity);
        Ok(t)
    }

    /// Build a table from explicit rows.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on ragged input or `dim == 0`,
    /// [`PlanarError::NotFinite`] on NaN/∞ values.
    pub fn from_rows(dim: usize, rows: impl IntoIterator<Item = Vec<f64>>) -> Result<Self> {
        let mut t = Self::new(dim)?;
        for row in rows {
            t.push_row(&row)?;
        }
        Ok(t)
    }

    /// Append a row, returning its [`PointId`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on wrong arity,
    /// [`PlanarError::NotFinite`] on NaN/∞ values.
    pub fn push_row(&mut self, row: &[f64]) -> Result<PointId> {
        self.validate(row)?;
        let id = self.len() as PointId;
        self.data.extend_from_slice(row);
        self.cols.push_row(row);
        if let Some(q) = &mut self.quant {
            q.sync(&self.cols);
        }
        Ok(id)
    }

    /// Replace the row of point `id` in place.
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] for an out-of-range id, plus the
    /// validation errors of [`Self::push_row`].
    pub fn update_row(&mut self, id: PointId, row: &[f64]) -> Result<()> {
        self.validate(row)?;
        let start = self.offset_of(id)?;
        self.data[start..start + self.dim].copy_from_slice(row);
        self.cols.update_row(id as usize, row);
        if let Some(q) = &mut self.quant {
            q.reencode_row_block(&self.cols, id);
        }
        Ok(())
    }

    /// The feature row of point `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range — table rows are never removed, so an
    /// out-of-range id is a logic error in the caller.
    #[inline]
    pub fn row(&self, id: PointId) -> &[f64] {
        let start = id as usize * self.dim;
        &self.data[start..start + self.dim]
    }

    /// The contiguous row-major storage of the row range `[from, to)` —
    /// the input shape of `planar_geom::dot_block`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `from > to`.
    #[inline]
    pub fn rows_between(&self, from: PointId, to: PointId) -> &[f64] {
        &self.data[from as usize * self.dim..to as usize * self.dim]
    }

    /// The interleaved-block columnar mirror of this table — the read path
    /// of the SIMD verification kernels.
    #[inline]
    pub fn columns(&self) -> &ColumnMajorRows {
        &self.cols
    }

    /// The quantized filter mirror, when a tier is active.
    #[inline]
    pub fn quant(&self) -> Option<&QuantizedColumns> {
        self.quant.as_ref()
    }

    /// The active quantization tier (`Off` when no mirror is held).
    #[inline]
    pub fn quant_tier(&self) -> QuantTier {
        self.quant.as_ref().map_or(QuantTier::Off, |q| q.tier())
    }

    /// The active quantization policy (tier + error-bound slack).
    pub fn quant_policy(&self) -> QuantPolicy {
        match &self.quant {
            None => QuantPolicy::off(),
            Some(q) => QuantPolicy {
                tier: q.tier(),
                slack: q.slack(),
            },
        }
    }

    /// Install (or remove, for `Off`) the quantized filter mirror. A tier
    /// or slack change re-encodes the whole table — `O(n · d')` — so
    /// callers batch this behind build, load, and compaction boundaries.
    /// A no-op when `policy` already matches the active mirror.
    pub fn set_quant_policy(&mut self, policy: QuantPolicy) {
        let slack = policy.slack.max(1.0);
        match policy.tier {
            QuantTier::Off => self.quant = None,
            tier => {
                let matches = self.quant.as_ref().is_some_and(|q| {
                    q.tier() == tier && q.slack() == slack && q.len() == self.len()
                });
                if !matches {
                    self.quant = Some(QuantizedColumns::encode(&self.cols, tier, slack));
                }
            }
        }
    }

    /// Fallible row access.
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] for an out-of-range id.
    pub fn try_row(&self, id: PointId) -> Result<&[f64]> {
        let start = self.offset_of(id)?;
        Ok(&self.data[start..start + self.dim])
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the table holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Feature dimensionality `d'`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Iterate over `(id, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.data
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(i, r)| (i as PointId, r))
    }

    /// Per-dimension maxima — `max(i)` in the paper's Eq. 18 query template.
    ///
    /// Returns an empty vector for an empty table.
    pub fn max_per_dim(&self) -> Vec<f64> {
        self.fold_per_dim(f64::NEG_INFINITY, f64::max)
    }

    /// Per-dimension minima.
    pub fn min_per_dim(&self) -> Vec<f64> {
        self.fold_per_dim(f64::INFINITY, f64::min)
    }

    fn fold_per_dim(&self, init: f64, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut acc = vec![init; self.dim];
        for row in self.data.chunks_exact(self.dim) {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a = f(*a, v);
            }
        }
        acc
    }

    fn validate(&self, row: &[f64]) -> Result<()> {
        if row.len() != self.dim {
            return Err(PlanarError::DimensionMismatch {
                expected: self.dim,
                found: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(PlanarError::NotFinite);
        }
        Ok(())
    }

    fn offset_of(&self, id: PointId) -> Result<usize> {
        let start = id as usize * self.dim;
        if start + self.dim > self.data.len() {
            return Err(PlanarError::PointNotFound(id));
        }
        Ok(start)
    }
}

impl HeapSize for FeatureTable {
    fn heap_size(&self) -> usize {
        // Row-major source of truth plus the columnar mirror (the 2× cost
        // of the SoA layout is reported, not hidden) plus the quantized
        // mirror when a tier is active.
        self.data.heap_size()
            + self.cols.heap_size()
            + self.quant.as_ref().map_or(0, HeapSize::heap_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3x2() -> FeatureTable {
        FeatureTable::from_rows(2, vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 0.5]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = table3x2();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dim(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(t.try_row(2).unwrap(), &[5.0, 0.5]);
        assert_eq!(t.try_row(3), Err(PlanarError::PointNotFound(3)));
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(FeatureTable::new(0).is_err());
    }

    #[test]
    fn ragged_and_nonfinite_rows_rejected() {
        let mut t = FeatureTable::new(2).unwrap();
        assert_eq!(
            t.push_row(&[1.0]),
            Err(PlanarError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        );
        assert_eq!(t.push_row(&[1.0, f64::NAN]), Err(PlanarError::NotFinite));
        assert_eq!(
            t.push_row(&[1.0, f64::INFINITY]),
            Err(PlanarError::NotFinite)
        );
        assert_eq!(t.push_row(&[1.0, 2.0]), Ok(0));
        assert_eq!(t.push_row(&[3.0, 4.0]), Ok(1));
    }

    #[test]
    fn update_row_in_place() {
        let mut t = table3x2();
        t.update_row(1, &[9.0, 9.5]).unwrap();
        assert_eq!(t.row(1), &[9.0, 9.5]);
        assert_eq!(
            t.update_row(7, &[0.0, 0.0]),
            Err(PlanarError::PointNotFound(7))
        );
    }

    #[test]
    fn per_dim_extremes() {
        let t = table3x2();
        assert_eq!(t.max_per_dim(), vec![5.0, 4.0]);
        assert_eq!(t.min_per_dim(), vec![1.0, 0.5]);
        assert!(FeatureTable::new(3).unwrap().max_per_dim().is_empty());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let t = table3x2();
        let ids: Vec<u32> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let (_, row) = t.iter().nth(2).unwrap();
        assert_eq!(row, &[5.0, 0.5]);
    }

    #[test]
    fn columnar_mirror_matches_rows() {
        // Cross a block boundary: 150 rows of dim 3.
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|r| (0..3).map(|j| (r * 3 + j) as f64 * 0.25 - 10.0).collect())
            .collect();
        let mut t = FeatureTable::from_rows(3, rows).unwrap();
        t.update_row(70, &[-1.0, -2.0, -3.0]).unwrap();
        let cols = t.columns();
        assert_eq!(cols.len(), t.len());
        assert_eq!(cols.dim(), 3);
        assert!(cols.alignment_ok());
        let mut buf = [0.0; 3];
        for (id, row) in t.iter() {
            cols.gather_row(id as usize, &mut buf);
            assert_eq!(&buf[..], row);
        }
    }

    #[test]
    fn columnar_segments_split_at_block_boundaries() {
        let n = 2 * planar_geom::BLOCK_ROWS + 17;
        let rows: Vec<Vec<f64>> = (0..n).map(|r| vec![r as f64, -(r as f64)]).collect();
        let t = FeatureTable::from_rows(2, rows).unwrap();
        // A range crossing two block boundaries yields three segments whose
        // lane counts cover it exactly, in order.
        let from = 30u32;
        let to = (2 * planar_geom::BLOCK_ROWS + 9) as u32;
        let segs: Vec<_> = t.columns().segments(from, to).collect();
        assert_eq!(segs.len(), 3);
        let mut at = from;
        for seg in &segs {
            assert_eq!(seg.first, at);
            assert!(seg.lanes <= planar_geom::BLOCK_ROWS);
            at += seg.lanes as u32;
        }
        assert_eq!(at, to);
        // Kernel consumption: dots from segments match per-row dot_slices.
        let a = [0.5, 2.0];
        for seg in &segs {
            let mut dots = vec![f64::NAN; seg.lanes];
            planar_geom::dot_block_cols(&a, seg.cols, t.columns().stride(), &mut dots);
            for (off, d) in dots.iter().enumerate() {
                let want = planar_geom::dot_slices(&a, t.row(seg.first + off as u32));
                assert_eq!(d.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn columnar_clone_stays_aligned_and_equal() {
        let rows: Vec<Vec<f64>> = (0..70).map(|r| vec![r as f64]).collect();
        let t = FeatureTable::from_rows(1, rows).unwrap();
        let c = t.clone();
        assert_eq!(t, c);
        assert!(c.columns().alignment_ok());
        assert_eq!(t.columns(), c.columns());
    }

    #[test]
    fn empty_segments_range_is_empty() {
        let t = table3x2();
        assert_eq!(t.columns().segments(2, 2).count(), 0);
    }

    #[test]
    fn heap_size_tracks_data() {
        let t = table3x2();
        assert!(t.heap_size() >= 6 * 8);
    }
}
