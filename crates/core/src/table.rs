//! Flat, row-major storage for the feature images `φ(x)` of all data points.
//!
//! The Planar index never needs the original points `x` — only their images
//! under the application-specific feature map `φ` (and applications usually
//! keep `x` themselves). `FeatureTable` therefore stores exactly the `n × d'`
//! matrix of feature values, contiguously, so that sequential verification
//! scans are cache-friendly and the memory accounting of Fig. 13b is exact.

use crate::memory::HeapSize;
use crate::{PlanarError, Result};

/// Identifier of a data point: its row position in the [`FeatureTable`].
pub type PointId = u32;

/// An `n × d'` row-major table of feature values.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureTable {
    dim: usize,
    data: Vec<f64>,
}

impl FeatureTable {
    /// An empty table for `dim`-dimensional features.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(PlanarError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        Ok(Self {
            dim,
            data: Vec::new(),
        })
    }

    /// An empty table with room for `capacity` rows.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] if `dim == 0`.
    pub fn with_capacity(dim: usize, capacity: usize) -> Result<Self> {
        let mut t = Self::new(dim)?;
        t.data.reserve(capacity * dim);
        Ok(t)
    }

    /// Build a table from explicit rows.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on ragged input or `dim == 0`,
    /// [`PlanarError::NotFinite`] on NaN/∞ values.
    pub fn from_rows(dim: usize, rows: impl IntoIterator<Item = Vec<f64>>) -> Result<Self> {
        let mut t = Self::new(dim)?;
        for row in rows {
            t.push_row(&row)?;
        }
        Ok(t)
    }

    /// Append a row, returning its [`PointId`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on wrong arity,
    /// [`PlanarError::NotFinite`] on NaN/∞ values.
    pub fn push_row(&mut self, row: &[f64]) -> Result<PointId> {
        self.validate(row)?;
        let id = self.len() as PointId;
        self.data.extend_from_slice(row);
        Ok(id)
    }

    /// Replace the row of point `id` in place.
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] for an out-of-range id, plus the
    /// validation errors of [`Self::push_row`].
    pub fn update_row(&mut self, id: PointId, row: &[f64]) -> Result<()> {
        self.validate(row)?;
        let start = self.offset_of(id)?;
        self.data[start..start + self.dim].copy_from_slice(row);
        Ok(())
    }

    /// The feature row of point `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range — table rows are never removed, so an
    /// out-of-range id is a logic error in the caller.
    #[inline]
    pub fn row(&self, id: PointId) -> &[f64] {
        let start = id as usize * self.dim;
        &self.data[start..start + self.dim]
    }

    /// The contiguous row-major storage of the row range `[from, to)` —
    /// the input shape of `planar_geom::dot_block`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `from > to`.
    #[inline]
    pub fn rows_between(&self, from: PointId, to: PointId) -> &[f64] {
        &self.data[from as usize * self.dim..to as usize * self.dim]
    }

    /// Fallible row access.
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] for an out-of-range id.
    pub fn try_row(&self, id: PointId) -> Result<&[f64]> {
        let start = self.offset_of(id)?;
        Ok(&self.data[start..start + self.dim])
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the table holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Feature dimensionality `d'`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Iterate over `(id, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.data
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(i, r)| (i as PointId, r))
    }

    /// Per-dimension maxima — `max(i)` in the paper's Eq. 18 query template.
    ///
    /// Returns an empty vector for an empty table.
    pub fn max_per_dim(&self) -> Vec<f64> {
        self.fold_per_dim(f64::NEG_INFINITY, f64::max)
    }

    /// Per-dimension minima.
    pub fn min_per_dim(&self) -> Vec<f64> {
        self.fold_per_dim(f64::INFINITY, f64::min)
    }

    fn fold_per_dim(&self, init: f64, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut acc = vec![init; self.dim];
        for row in self.data.chunks_exact(self.dim) {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a = f(*a, v);
            }
        }
        acc
    }

    fn validate(&self, row: &[f64]) -> Result<()> {
        if row.len() != self.dim {
            return Err(PlanarError::DimensionMismatch {
                expected: self.dim,
                found: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(PlanarError::NotFinite);
        }
        Ok(())
    }

    fn offset_of(&self, id: PointId) -> Result<usize> {
        let start = id as usize * self.dim;
        if start + self.dim > self.data.len() {
            return Err(PlanarError::PointNotFound(id));
        }
        Ok(start)
    }
}

impl HeapSize for FeatureTable {
    fn heap_size(&self) -> usize {
        self.data.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3x2() -> FeatureTable {
        FeatureTable::from_rows(2, vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 0.5]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = table3x2();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dim(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(t.try_row(2).unwrap(), &[5.0, 0.5]);
        assert_eq!(t.try_row(3), Err(PlanarError::PointNotFound(3)));
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(FeatureTable::new(0).is_err());
    }

    #[test]
    fn ragged_and_nonfinite_rows_rejected() {
        let mut t = FeatureTable::new(2).unwrap();
        assert_eq!(
            t.push_row(&[1.0]),
            Err(PlanarError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        );
        assert_eq!(t.push_row(&[1.0, f64::NAN]), Err(PlanarError::NotFinite));
        assert_eq!(
            t.push_row(&[1.0, f64::INFINITY]),
            Err(PlanarError::NotFinite)
        );
        assert_eq!(t.push_row(&[1.0, 2.0]), Ok(0));
        assert_eq!(t.push_row(&[3.0, 4.0]), Ok(1));
    }

    #[test]
    fn update_row_in_place() {
        let mut t = table3x2();
        t.update_row(1, &[9.0, 9.5]).unwrap();
        assert_eq!(t.row(1), &[9.0, 9.5]);
        assert_eq!(
            t.update_row(7, &[0.0, 0.0]),
            Err(PlanarError::PointNotFound(7))
        );
    }

    #[test]
    fn per_dim_extremes() {
        let t = table3x2();
        assert_eq!(t.max_per_dim(), vec![5.0, 4.0]);
        assert_eq!(t.min_per_dim(), vec![1.0, 0.5]);
        assert!(FeatureTable::new(3).unwrap().max_per_dim().is_empty());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let t = table3x2();
        let ids: Vec<u32> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let (_, row) = t.iter().nth(2).unwrap();
        assert_eq!(row, &[5.0, 0.5]);
    }

    #[test]
    fn heap_size_tracks_data() {
        let t = table3x2();
        assert!(t.heap_size() >= 6 * 8);
    }
}
