//! Shared CRC-64 framing helpers.
//!
//! Every durable or wire format in this crate seals its bytes the same
//! way: a body, then the CRC-64/XZ of everything before it, little-endian.
//! The WAL frames (`crate::wal`), the `PLNRIDX2`/`PLNRSHD1` snapshot
//! sections (`crate::persist`), the `PLNRSHP1` replication messages
//! (`crate::replicate`), and the `PLNRQRY1` query-service protocol
//! (`planar-serve`) all share the helpers here instead of hand-rolling
//! the trailer arithmetic per format — one place to get the length
//! bounds and the checksum right.

use bytes::BufMut;

/// CRC-64/XZ (reflected ECMA-182) of `data` — the integrity checksum every
/// framed format in this workspace uses.
pub fn crc64(data: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42; // reflected ECMA-182
    let mut crc = !0u64;
    for &byte in data {
        crc ^= byte as u64;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Number of bytes a CRC-64 seal appends.
pub const CRC_LEN: usize = 8;

/// Seal a byte buffer in place: append the little-endian CRC-64 of its
/// current contents. The result round-trips through [`open_sealed`].
pub fn seal_vec(buf: &mut Vec<u8>) {
    let crc = crc64(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Seal a [`bytes::BytesMut`]-style builder in place (same trailer as
/// [`seal_vec`], for call sites that build with `BufMut`).
pub fn seal_buf<B: BufMut + AsRef<[u8]>>(buf: &mut B) {
    let crc = crc64(buf.as_ref());
    buf.put_u64_le(crc);
}

/// Verify a sealed region and return its body, or `None` when the region
/// is too short to hold a seal or its trailing CRC does not match the
/// body. The caller decides whether `None` means "torn tail", "corrupt
/// section", or "drop the message".
pub fn open_sealed(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < CRC_LEN {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - CRC_LEN);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    (crc64(body) == stored).then_some(body)
}

/// Length-bounded end offset of a sealed region that starts at `start`
/// and carries `body_len` body bytes inside a buffer of `total` bytes:
/// `Some(end_of_seal)` only when `start + body_len + CRC_LEN` fits with
/// no overflow. A corrupted length field can therefore never index past
/// the buffer or wrap `usize`.
pub fn sealed_end(start: usize, body_len: usize, total: usize) -> Option<usize> {
    let end = start.checked_add(body_len)?.checked_add(CRC_LEN)?;
    (end <= total).then_some(end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn seal_then_open_round_trips() {
        let mut buf = b"planar".to_vec();
        seal_vec(&mut buf);
        assert_eq!(buf.len(), 6 + CRC_LEN);
        assert_eq!(open_sealed(&buf), Some(&b"planar"[..]));
    }

    #[test]
    fn seal_buf_matches_seal_vec() {
        let mut v = b"same bytes".to_vec();
        seal_vec(&mut v);
        let mut b = bytes::BytesMut::new();
        b.put_slice(b"same bytes");
        seal_buf(&mut b);
        assert_eq!(v.as_slice(), b.as_ref());
    }

    #[test]
    fn open_rejects_any_flip() {
        let mut buf = b"payload".to_vec();
        seal_vec(&mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(open_sealed(&bad).is_none(), "flip at {i} accepted");
        }
        assert!(open_sealed(&buf[..CRC_LEN - 1]).is_none(), "short buffer");
    }

    #[test]
    fn empty_body_seals() {
        let mut buf = Vec::new();
        seal_vec(&mut buf);
        assert_eq!(open_sealed(&buf), Some(&[][..]));
    }

    #[test]
    fn sealed_end_bounds() {
        assert_eq!(sealed_end(4, 10, 22), Some(22));
        assert_eq!(sealed_end(4, 10, 21), None, "one byte short");
        assert_eq!(sealed_end(usize::MAX, 1, usize::MAX), None, "overflow");
        assert_eq!(sealed_end(0, usize::MAX, usize::MAX), None, "overflow");
    }
}
