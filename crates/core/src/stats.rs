//! Per-query execution statistics.
//!
//! The paper's Figures 9 and 10 report the *pruning percentage* — the share
//! of points accepted or rejected without computing their scalar product.
//! Every query in this crate returns a [`QueryStats`] carrying exactly the
//! quantities those figures plot, plus which execution path was taken.

/// How a query was executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionPath {
    /// Served by the Planar index number `index` of the set.
    Index {
        /// Position of the chosen index within the [`crate::PlanarIndexSet`].
        index: usize,
    },
    /// Fell back to a sequential scan, with the reason.
    ScanFallback(ScanReason),
}

/// Why a query could not use the indexed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanReason {
    /// Some query coefficient is zero: the query hyperplane never meets
    /// that axis, so interval pruning on a full-dimensional index would be
    /// unsound (§4.1 tells us to drop the axis — which needs an index built
    /// without it).
    ZeroCoefficient,
    /// The coefficient signs do not match the octant the set was built for
    /// (§4.5: the octant is fixed by the parameter domains).
    OctantMismatch,
    /// The caller explicitly requested a scan.
    Requested,
    /// Every Planar index in the set is quarantined (see `crate::health`):
    /// the scan keeps answers exact while the indices are rebuilt.
    IndexUnavailable,
    /// The batch's [`crate::ExecutionConfig::deadline`] expired before
    /// this query started: nothing ran at all — no scan, no index. The
    /// outcome is an empty placeholder with [`ServedBy::Partial`]
    /// provenance.
    DeadlineExceeded,
}

impl core::fmt::Display for ScanReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScanReason::ZeroCoefficient => write!(f, "zero query coefficient"),
            ScanReason::OctantMismatch => write!(f, "coefficient signs outside indexed octant"),
            ScanReason::Requested => write!(f, "scan requested"),
            ScanReason::IndexUnavailable => write!(f, "all indices quarantined"),
            ScanReason::DeadlineExceeded => write!(f, "batch deadline expired before execution"),
        }
    }
}

/// Provenance of a query answer: which component of the set actually served
/// it. Carried on [`crate::QueryOutcome`] / [`crate::TopKOutcome`] so
/// operators can distinguish a healthy indexed answer from degraded-mode
/// serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Served by the Planar index at this position in the set.
    Index(usize),
    /// Served by the exact sequential scan for a query-shape reason (zero
    /// coefficient, octant mismatch, or an explicit scan request).
    ScanFallback,
    /// Served by the exact sequential scan because no healthy index was
    /// available (all quarantined) — correct answers at scan latency.
    Degraded,
    /// **Not served**: the batch's wall-clock deadline expired before this
    /// query started, so its slot holds an empty placeholder instead of
    /// stalling the batch. `completed` is the number of queries in the
    /// batch that did finish before the budget ran out.
    Partial {
        /// Queries of the batch that completed before the deadline.
        completed: usize,
        /// Always `true` today: the only partial-result source is an
        /// expired [`crate::ExecutionConfig::deadline`].
        deadline_hit: bool,
    },
}

impl ServedBy {
    /// The provenance implied by an execution path.
    pub fn from_path(path: &ExecutionPath) -> Self {
        match path {
            ExecutionPath::Index { index } => ServedBy::Index(*index),
            ExecutionPath::ScanFallback(ScanReason::IndexUnavailable) => ServedBy::Degraded,
            ExecutionPath::ScanFallback(ScanReason::DeadlineExceeded) => ServedBy::Partial {
                completed: 0,
                deadline_hit: true,
            },
            ExecutionPath::ScanFallback(_) => ServedBy::ScanFallback,
        }
    }

    /// True when the answer came from degraded-mode serving.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ServedBy::Degraded)
    }

    /// True when the slot is a deadline placeholder, not an answer.
    pub fn is_partial(&self) -> bool {
        matches!(self, ServedBy::Partial { .. })
    }
}

/// Counters describing one query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Total points in the dataset.
    pub n: usize,
    /// Points in the smaller interval (accepted or rejected wholesale).
    pub smaller: usize,
    /// Points in the intermediate interval (each verified exactly).
    pub intermediate: usize,
    /// Points in the larger interval (accepted or rejected wholesale).
    pub larger: usize,
    /// Scalar products actually computed.
    pub verified: usize,
    /// Intermediate-interval candidates settled by multi-index intersection
    /// pruning — accepted or rejected via a sibling index's interval proof
    /// instead of a scalar product. Always `intermediate - verified` on the
    /// indexed path.
    pub intersect_pruned: usize,
    /// Points in the answer set (`t` in the paper's complexity bounds).
    pub matched: usize,
    /// What the quantized filter tier did during verification (all zeros
    /// when the tier is off — see [`crate::QuantFilterStats`]).
    pub quant: crate::quant::QuantFilterStats,
    /// Execution path taken.
    pub path: ExecutionPath,
}

impl QueryStats {
    /// A stats record for a pure sequential scan.
    pub fn scan(n: usize, matched: usize, reason: ScanReason) -> Self {
        Self {
            n,
            smaller: 0,
            intermediate: n,
            larger: 0,
            verified: n,
            intersect_pruned: 0,
            matched,
            quant: crate::quant::QuantFilterStats::default(),
            path: ExecutionPath::ScanFallback(reason),
        }
    }

    /// Fraction of points pruned (accepted/rejected without a scalar
    /// product): `(smaller + larger + intersect_pruned) / n`. This is the
    /// quantity of Figures 9 and 10, as a value in `[0, 1]`, extended with
    /// the candidates the multi-index intersection settled.
    pub fn pruned_fraction(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        (self.smaller + self.larger + self.intersect_pruned) as f64 / self.n as f64
    }

    /// Pruning percentage in `[0, 100]` (the paper's y-axis).
    pub fn pruning_percentage(&self) -> f64 {
        100.0 * self.pruned_fraction()
    }

    /// Was the indexed path used?
    pub fn used_index(&self) -> bool {
        matches!(self.path, ExecutionPath::Index { .. })
    }

    /// Merge per-shard stats of one sharded query into one logical record:
    /// every counter is summed across shards (so `pruned_fraction` is the
    /// global fraction over the whole dataset). The merged `path` is the
    /// first shard's indexed path when any shard used an index — the shard
    /// layer has no single "the" index, so the path is representative, not
    /// authoritative; per-shard provenance lives on the sharded outcome —
    /// and the first shard's fallback reason when none did.
    pub fn merged(per_shard: &[QueryStats]) -> QueryStats {
        let path = per_shard
            .iter()
            .find(|s| s.used_index())
            .or_else(|| per_shard.first())
            .map(|s| s.path.clone())
            .unwrap_or(ExecutionPath::ScanFallback(ScanReason::Requested));
        let mut merged = QueryStats {
            n: 0,
            smaller: 0,
            intermediate: 0,
            larger: 0,
            verified: 0,
            intersect_pruned: 0,
            matched: 0,
            quant: crate::quant::QuantFilterStats::default(),
            path,
        };
        for s in per_shard {
            merged.n += s.n;
            merged.smaller += s.smaller;
            merged.intermediate += s.intermediate;
            merged.larger += s.larger;
            merged.verified += s.verified;
            merged.intersect_pruned += s.intersect_pruned;
            merged.matched += s.matched;
            merged.quant.merge(&s.quant);
        }
        merged
    }
}

/// Aggregates [`QueryStats`] across a workload (the paper reports averages
/// over 100 runs).
#[derive(Debug, Clone, Default)]
pub struct StatsAggregator {
    count: usize,
    pruned_sum: f64,
    verified_sum: usize,
    matched_sum: usize,
    intermediate_sum: usize,
    intersect_pruned_sum: usize,
    index_hits: usize,
    scan_fallbacks: usize,
    degraded: usize,
    quarantine_events: usize,
    deadline_hits: usize,
    wal_recorded: bool,
    wal_segments: usize,
    wal_unsynced_records: u64,
    wal_last_lsn: u64,
    wal_appended_lsn: u64,
    wal_acked_lsn: u64,
    quant_sum: crate::quant::QuantFilterStats,
    epoch_recorded: bool,
    epoch: u64,
    epochs_published: u64,
    epochs_retired_live: usize,
    epochs_reclaimed: u64,
    epoch_clones: u64,
    epoch_clone_bytes: u64,
    epoch_clone_micros: u64,
    gc_recorded: bool,
    gc_fsyncs: u64,
    gc_committed_records: u64,
    gc_max_group: u64,
    repl_recorded: bool,
    repl_term: u64,
    repl_replicas: usize,
    repl_min_acked_lsn: u64,
    repl_lag: u64,
    repl_quorum_frontier: u64,
    repl_quorum_timeouts: u64,
    repl_link_drops: u64,
    repl_link_acked: Vec<(u32, u64)>,
}

impl StatsAggregator {
    /// Fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one query's stats.
    pub fn add(&mut self, s: &QueryStats) {
        self.count += 1;
        self.pruned_sum += s.pruned_fraction();
        self.verified_sum += s.verified;
        self.matched_sum += s.matched;
        self.intermediate_sum += s.intermediate;
        self.intersect_pruned_sum += s.intersect_pruned;
        self.quant_sum.merge(&s.quant);
        if matches!(
            s.path,
            ExecutionPath::ScanFallback(ScanReason::DeadlineExceeded)
        ) {
            // A deadline placeholder was never executed: it is neither an
            // index hit nor a scan — count it separately.
            self.deadline_hits += 1;
        } else if s.used_index() {
            self.index_hits += 1;
        } else {
            self.scan_fallbacks += 1;
            if matches!(
                s.path,
                ExecutionPath::ScanFallback(ScanReason::IndexUnavailable)
            ) {
                self.degraded += 1;
            }
        }
    }

    /// Fold in one *sharded* query's per-shard stats as a single logical
    /// query (see [`QueryStats::merged`]): the aggregate's query count
    /// advances by one, not by the shard count.
    pub fn add_sharded(&mut self, per_shard: &[QueryStats]) {
        self.add(&QueryStats::merged(per_shard));
    }

    /// Record an index-quarantine event (see `crate::health`). Quarantines
    /// are lifecycle events, not per-query stats, so callers report them
    /// explicitly.
    pub fn record_quarantine(&mut self) {
        self.quarantine_events += 1;
    }

    /// Stamp the latest write-ahead-log health (see [`crate::WalHealth`])
    /// into the aggregate. Like quarantines, WAL state is a lifecycle
    /// property, not a per-query stat: the most recent recording wins and
    /// is surfaced verbatim by [`Self::snapshot`].
    pub fn record_wal(&mut self, health: &crate::wal::WalHealth) {
        self.wal_recorded = true;
        self.wal_segments = health.segments;
        self.wal_unsynced_records = health.unsynced_records;
        self.wal_last_lsn = health.last_lsn;
        self.wal_appended_lsn = health.appended_lsn;
        self.wal_acked_lsn = health.acked_lsn;
    }

    /// Stamp the latest epoch bookkeeping (see [`crate::EpochStats`]) into
    /// the aggregate. Point-in-time like [`Self::record_wal`]: the most
    /// recent recording wins.
    pub fn record_epoch(&mut self, stats: &crate::concurrent::EpochStats) {
        self.epoch_recorded = true;
        self.epoch = stats.epoch;
        self.epochs_published = stats.published;
        self.epochs_retired_live = stats.retired_live;
        self.epochs_reclaimed = stats.reclaimed;
        self.epoch_clones = stats.clones;
        self.epoch_clone_bytes = stats.clone_bytes;
        self.epoch_clone_micros = stats.clone_micros;
    }

    /// Stamp the latest group-commit counters (see
    /// [`crate::GroupCommitStats`]) into the aggregate. Point-in-time like
    /// [`Self::record_wal`]: the most recent recording wins.
    pub fn record_group_commit(&mut self, stats: &crate::wal::GroupCommitStats) {
        self.gc_recorded = true;
        self.gc_fsyncs = stats.fsyncs;
        self.gc_committed_records = stats.committed_records;
        self.gc_max_group = stats.max_group;
    }

    /// Stamp a durable sharded wrapper's **entire** lifecycle state in
    /// one call: WAL health (including the group-commit
    /// `appended`/`acked` watermarks), epoch ledger, and group-commit
    /// counters. Before this existed callers stamped the three pieces
    /// individually and durable *sharded* wrappers routinely missed one,
    /// so replication lag could not be computed from a single
    /// [`Self::snapshot`]; now `wal_ack_lag` and the epoch reclaim
    /// counters are always coherent — they come from the same recording.
    pub fn record_durable_sharded<S>(&mut self, set: &crate::ConcurrentDurableShardedIndexSet<S>)
    where
        S: crate::KeyStore + Clone,
    {
        self.record_wal(&set.wal_health());
        self.record_epoch(&set.epoch_stats());
        self.record_group_commit(&set.group_commit_stats());
    }

    /// Stamp the latest replication health (see
    /// [`crate::replicate::ReplicationHealth`]) into the aggregate.
    /// Point-in-time like [`Self::record_wal`]: the most recent recording
    /// wins.
    pub fn record_replication(&mut self, h: &crate::replicate::ReplicationHealth) {
        self.repl_recorded = true;
        self.repl_term = h.term;
        self.repl_replicas = h.replicas;
        self.repl_min_acked_lsn = h.min_acked_lsn;
        self.repl_lag = h.max_lag;
        self.repl_quorum_frontier = h.quorum_frontier;
    }

    /// Stamp the primary's endpoint counters that matter for quorum
    /// health monitoring (see [`crate::replicate::ReplicationStats`]).
    /// Point-in-time: the most recent recording wins.
    pub fn record_replication_stats(&mut self, s: &crate::replicate::ReplicationStats) {
        self.repl_recorded = true;
        self.repl_quorum_timeouts = s.quorum_timeouts;
        self.repl_link_drops = s.link_drops;
    }

    /// Stamp the per-link acked-LSN watermarks (see
    /// [`crate::replicate::Primary::replica_health`]). Point-in-time: the
    /// most recent recording wins; the snapshot carries them as
    /// `(link id, acked LSN)` pairs so `/metrics` can expose which
    /// replica is behind, not just the worst lag.
    pub fn record_replica_links(&mut self, links: &[crate::replicate::ReplicaHealth]) {
        self.repl_recorded = true;
        self.repl_link_acked = links.iter().map(|l| (l.id, l.acked_lsn)).collect();
    }

    /// Fold another aggregator into this one — equivalent to having
    /// [`Self::add`]ed all of `other`'s queries here. Lets parallel batch
    /// workers aggregate locally and combine at the end.
    pub fn merge(&mut self, other: &StatsAggregator) {
        self.count += other.count;
        self.pruned_sum += other.pruned_sum;
        self.verified_sum += other.verified_sum;
        self.matched_sum += other.matched_sum;
        self.intermediate_sum += other.intermediate_sum;
        self.intersect_pruned_sum += other.intersect_pruned_sum;
        self.quant_sum.merge(&other.quant_sum);
        self.index_hits += other.index_hits;
        self.scan_fallbacks += other.scan_fallbacks;
        self.degraded += other.degraded;
        self.quarantine_events += other.quarantine_events;
        self.deadline_hits += other.deadline_hits;
        // WAL health is point-in-time, not additive: prefer the other
        // aggregator's recording when it has one (merge order follows
        // recording order in every current caller).
        if other.wal_recorded {
            self.wal_recorded = true;
            self.wal_segments = other.wal_segments;
            self.wal_unsynced_records = other.wal_unsynced_records;
            self.wal_last_lsn = other.wal_last_lsn;
            self.wal_appended_lsn = other.wal_appended_lsn;
            self.wal_acked_lsn = other.wal_acked_lsn;
        }
        if other.epoch_recorded {
            self.epoch_recorded = true;
            self.epoch = other.epoch;
            self.epochs_published = other.epochs_published;
            self.epochs_retired_live = other.epochs_retired_live;
            self.epochs_reclaimed = other.epochs_reclaimed;
            self.epoch_clones = other.epoch_clones;
            self.epoch_clone_bytes = other.epoch_clone_bytes;
            self.epoch_clone_micros = other.epoch_clone_micros;
        }
        if other.gc_recorded {
            self.gc_recorded = true;
            self.gc_fsyncs = other.gc_fsyncs;
            self.gc_committed_records = other.gc_committed_records;
            self.gc_max_group = other.gc_max_group;
        }
        if other.repl_recorded {
            self.repl_recorded = true;
            self.repl_term = other.repl_term;
            self.repl_replicas = other.repl_replicas;
            self.repl_min_acked_lsn = other.repl_min_acked_lsn;
            self.repl_lag = other.repl_lag;
            self.repl_quorum_frontier = other.repl_quorum_frontier;
            self.repl_quorum_timeouts = other.repl_quorum_timeouts;
            self.repl_link_drops = other.repl_link_drops;
            self.repl_link_acked = other.repl_link_acked.clone();
        }
    }

    /// Number of queries aggregated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean pruning percentage.
    pub fn mean_pruning_percentage(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        100.0 * self.pruned_sum / self.count as f64
    }

    /// Mean number of verified points per query.
    pub fn mean_verified(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.verified_sum as f64 / self.count as f64
    }

    /// Mean intermediate-interval size per query.
    pub fn mean_intermediate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.intermediate_sum as f64 / self.count as f64
    }

    /// Mean answer-set size per query.
    pub fn mean_matched(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.matched_sum as f64 / self.count as f64
    }

    /// Fraction of queries that used the indexed path.
    pub fn index_hit_rate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.index_hits as f64 / self.count as f64
    }

    /// Number of queries that fell back to a sequential scan (any reason).
    pub fn scan_fallback_count(&self) -> usize {
        self.scan_fallbacks
    }

    /// Number of queries served in degraded mode (scan because every index
    /// was quarantined).
    pub fn degraded_count(&self) -> usize {
        self.degraded
    }

    /// Mean number of II candidates settled by intersection pruning per
    /// query.
    pub fn mean_intersect_pruned(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.intersect_pruned_sum as f64 / self.count as f64
    }

    /// Number of quarantine events reported via [`Self::record_quarantine`].
    pub fn quarantine_event_count(&self) -> usize {
        self.quarantine_events
    }

    /// Number of query slots skipped because the batch deadline expired.
    pub fn deadline_hit_count(&self) -> usize {
        self.deadline_hits
    }

    /// Point-in-time snapshot of the aggregate counters, stamped with the
    /// runtime code paths (kernel dispatch, FMA availability, thread-clamp
    /// events) that produced them. Benchmarks serialize this into their
    /// JSON output so a result is traceable to the code path that made it.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            count: self.count,
            mean_pruning_percentage: self.mean_pruning_percentage(),
            mean_verified: self.mean_verified(),
            mean_intermediate: self.mean_intermediate(),
            mean_matched: self.mean_matched(),
            mean_intersect_pruned: self.mean_intersect_pruned(),
            index_hit_rate: self.index_hit_rate(),
            scan_fallbacks: self.scan_fallbacks,
            degraded: self.degraded,
            quarantine_events: self.quarantine_events,
            deadline_hits: self.deadline_hits,
            wal_segments: self.wal_segments,
            wal_unsynced_records: self.wal_unsynced_records,
            wal_last_lsn: self.wal_last_lsn,
            wal_appended_lsn: self.wal_appended_lsn,
            wal_acked_lsn: self.wal_acked_lsn,
            wal_ack_lag: self.wal_appended_lsn.saturating_sub(self.wal_acked_lsn),
            quant_lanes: self.quant_sum.lanes,
            quant_accepted: self.quant_sum.accepted,
            quant_rejected: self.quant_sum.rejected,
            quant_reverified: self.quant_sum.reverified,
            quant_fallback: self.quant_sum.fallback,
            quant_kernel: self.quant_sum.tier.kernel_name(),
            epoch: self.epoch,
            epochs_published: self.epochs_published,
            epochs_retired_live: self.epochs_retired_live,
            epochs_reclaimed: self.epochs_reclaimed,
            epoch_clones: self.epoch_clones,
            epoch_clone_bytes: self.epoch_clone_bytes,
            epoch_clone_micros: self.epoch_clone_micros,
            group_commit_fsyncs: self.gc_fsyncs,
            group_commit_records: self.gc_committed_records,
            group_commit_max_group: self.gc_max_group,
            replication_term: self.repl_term,
            replication_replicas: self.repl_replicas,
            replication_min_acked_lsn: self.repl_min_acked_lsn,
            replication_lag: self.repl_lag,
            replication_quorum_frontier: self.repl_quorum_frontier,
            replication_quorum_timeouts: self.repl_quorum_timeouts,
            replication_link_drops: self.repl_link_drops,
            replication_link_acked: self.repl_link_acked.clone(),
            kernel: planar_geom::kernel_name(),
            fma_available: planar_geom::host_has_fma(),
            thread_clamp_events: crate::parallel::thread_clamp_events(),
        }
    }
}

/// A [`StatsAggregator`] snapshot plus execution-environment provenance.
///
/// `kernel` and `fma_available` record which scalar-product implementation
/// the process dispatched to (see `planar_geom::kernels`);
/// `thread_clamp_events` is the process-wide clamp counter at snapshot
/// time. Together they make a benchmark JSON self-describing: the same
/// workload measured under `PLANAR_FORCE_PORTABLE=1` and under AVX2 differs
/// only in these fields and the timings.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Queries aggregated.
    pub count: usize,
    /// Mean pruning percentage (paper Figures 9/10 y-axis).
    pub mean_pruning_percentage: f64,
    /// Mean scalar products per query.
    pub mean_verified: f64,
    /// Mean intermediate-interval size per query.
    pub mean_intermediate: f64,
    /// Mean answer-set size per query.
    pub mean_matched: f64,
    /// Mean II candidates settled by multi-index intersection pruning.
    pub mean_intersect_pruned: f64,
    /// Fraction of queries served by the indexed path.
    pub index_hit_rate: f64,
    /// Queries that fell back to a sequential scan.
    pub scan_fallbacks: usize,
    /// Queries served in degraded mode.
    pub degraded: usize,
    /// Quarantine events reported.
    pub quarantine_events: usize,
    /// Query slots skipped because the batch deadline expired.
    pub deadline_hits: usize,
    /// WAL segment files at the last [`StatsAggregator::record_wal`]
    /// (0 when never recorded).
    pub wal_segments: usize,
    /// Appended-but-unsynced WAL records at the last recording.
    pub wal_unsynced_records: u64,
    /// Highest LSN appended to the WAL at the last recording.
    pub wal_last_lsn: u64,
    /// Highest LSN appended at the last recording (group-commit view;
    /// equals `wal_last_lsn`).
    pub wal_appended_lsn: u64,
    /// Highest fsync-covered LSN at the last recording;
    /// `wal_appended_lsn − wal_acked_lsn` is the observable group-commit
    /// lag.
    pub wal_acked_lsn: u64,
    /// `wal_appended_lsn − wal_acked_lsn` precomputed (saturating), so
    /// replication lag math needs no field arithmetic at call sites.
    pub wal_ack_lag: u64,
    /// Candidate lanes that entered the quantized filter (sum over all
    /// aggregated queries; 0 when the tier never ran).
    pub quant_lanes: usize,
    /// Lanes the quantized filter proved satisfying without touching `f64`
    /// rows.
    pub quant_accepted: usize,
    /// Lanes the quantized filter proved failing.
    pub quant_rejected: usize,
    /// Lanes inside the uncertainty band, re-verified at full precision.
    pub quant_reverified: usize,
    /// Lanes classified by the exact fallback (unsound blocks / overflow
    /// guards).
    pub quant_fallback: usize,
    /// Dispatched quantized kernel for the most recent non-off tier
    /// observed (`"avx2-i8"`, `"portable-i16"`, …; `"off"` when the tier
    /// never ran).
    pub quant_kernel: &'static str,
    /// Published epoch at the last [`StatsAggregator::record_epoch`]
    /// (0 when never recorded).
    pub epoch: u64,
    /// Epochs published over the recorded cell's lifetime.
    pub epochs_published: u64,
    /// Retired epochs still in their grace period at the last recording.
    pub epochs_retired_live: usize,
    /// Retired epochs reclaimed after their grace period ended.
    pub epochs_reclaimed: u64,
    /// Copy-on-publish set clones over the recorded cell's lifetime — the
    /// write-path ceiling ROADMAP item 1 names.
    pub epoch_clones: u64,
    /// Bytes deep-copied by those clones (heap footprint of the cloned
    /// sets at clone time).
    pub epoch_clone_bytes: u64,
    /// Wall-clock microseconds spent inside those clones.
    pub epoch_clone_micros: u64,
    /// Commit-group leader fsyncs at the last
    /// [`StatsAggregator::record_group_commit`] (0 when never recorded).
    pub group_commit_fsyncs: u64,
    /// Records made durable through those fsyncs.
    pub group_commit_records: u64,
    /// Largest single commit group observed.
    pub group_commit_max_group: u64,
    /// Replication term at the last
    /// [`StatsAggregator::record_replication`] (0 when never recorded).
    pub replication_term: u64,
    /// Attached replicas at the last recording.
    pub replication_replicas: usize,
    /// Lowest replica acked LSN at the last recording — the durable
    /// replication frontier.
    pub replication_min_acked_lsn: u64,
    /// Largest per-replica lag (primary appended − replica acked) at the
    /// last recording.
    pub replication_lag: u64,
    /// Highest quorum-confirmed LSN at the last recording (0 under
    /// `AckPolicy::Async` or before any quorum forms).
    pub replication_quorum_frontier: u64,
    /// Quorum-gated acknowledgements that expired typed at the last
    /// [`StatsAggregator::record_replication_stats`].
    pub replication_quorum_timeouts: u64,
    /// Links reaped after their transport disconnected permanently.
    pub replication_link_drops: u64,
    /// Per-link `(id, acked LSN)` watermarks at the last
    /// [`StatsAggregator::record_replica_links`] — which replica is
    /// behind, not just the worst lag.
    pub replication_link_acked: Vec<(u32, u64)>,
    /// Dispatched scalar-product kernel (`"avx2"` or `"portable"`).
    pub kernel: &'static str,
    /// Whether the host advertises FMA (never used by the kernels — see the
    /// determinism contract — but recorded so a future FMA variant can be
    /// distinguished in archived results).
    pub fma_available: bool,
    /// Process-wide thread-clamp counter at snapshot time.
    pub thread_clamp_events: u64,
}

/// A minimal serde-free JSON object builder: flat or nested objects with
/// string, number, and boolean fields, correct escaping, and `null` for
/// non-finite floats (JSON has no NaN/∞). The `/metrics` endpoint and the
/// benchmark JSON writers compose their documents from this instead of a
/// serialization framework the workspace cannot depend on.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str("\":");
    }

    /// Add an unsigned integer field.
    pub fn field_u64(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a `usize` field.
    pub fn field_usize(self, key: &str, v: usize) -> Self {
        self.field_u64(key, v as u64)
    }

    /// Add a float field (`null` when not finite — JSON has no NaN/∞).
    pub fn field_f64(mut self, key: &str, v: f64) -> Self {
        self.key(key);
        self.buf.push_str(&json_f64(v));
        self
    }

    /// Add a boolean field.
    pub fn field_bool(mut self, key: &str, v: bool) -> Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&json_escape(v));
        self.buf.push('"');
        self
    }

    /// Add a pre-rendered JSON value verbatim (a nested object or array
    /// the caller already built).
    pub fn field_raw(mut self, key: &str, raw: &str) -> Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escape a string for a JSON string literal (quotes, backslashes, and
/// control characters; everything else passes through as UTF-8).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a float as a JSON number: Rust's shortest round-trip `Display`
/// form for finite values, `null` otherwise.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

impl StatsSnapshot {
    /// Serialize the snapshot as a flat JSON object — the `/metrics`
    /// payload of `planar-serve` and the provenance block of the
    /// benchmark JSON files. Hand-rolled (no serde in this workspace):
    /// every field is a number, boolean, or string; field names match the
    /// struct fields exactly.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .field_usize("count", self.count)
            .field_f64("mean_pruning_percentage", self.mean_pruning_percentage)
            .field_f64("mean_verified", self.mean_verified)
            .field_f64("mean_intermediate", self.mean_intermediate)
            .field_f64("mean_matched", self.mean_matched)
            .field_f64("mean_intersect_pruned", self.mean_intersect_pruned)
            .field_f64("index_hit_rate", self.index_hit_rate)
            .field_usize("scan_fallbacks", self.scan_fallbacks)
            .field_usize("degraded", self.degraded)
            .field_usize("quarantine_events", self.quarantine_events)
            .field_usize("deadline_hits", self.deadline_hits)
            .field_usize("wal_segments", self.wal_segments)
            .field_u64("wal_unsynced_records", self.wal_unsynced_records)
            .field_u64("wal_last_lsn", self.wal_last_lsn)
            .field_u64("wal_appended_lsn", self.wal_appended_lsn)
            .field_u64("wal_acked_lsn", self.wal_acked_lsn)
            .field_u64("wal_ack_lag", self.wal_ack_lag)
            .field_usize("quant_lanes", self.quant_lanes)
            .field_usize("quant_accepted", self.quant_accepted)
            .field_usize("quant_rejected", self.quant_rejected)
            .field_usize("quant_reverified", self.quant_reverified)
            .field_usize("quant_fallback", self.quant_fallback)
            .field_str("quant_kernel", self.quant_kernel)
            .field_u64("epoch", self.epoch)
            .field_u64("epochs_published", self.epochs_published)
            .field_usize("epochs_retired_live", self.epochs_retired_live)
            .field_u64("epochs_reclaimed", self.epochs_reclaimed)
            .field_u64("epoch_clones", self.epoch_clones)
            .field_u64("epoch_clone_bytes", self.epoch_clone_bytes)
            .field_u64("epoch_clone_micros", self.epoch_clone_micros)
            .field_u64("group_commit_fsyncs", self.group_commit_fsyncs)
            .field_u64("group_commit_records", self.group_commit_records)
            .field_u64("group_commit_max_group", self.group_commit_max_group)
            .field_u64("replication_term", self.replication_term)
            .field_usize("replication_replicas", self.replication_replicas)
            .field_u64("replication_min_acked_lsn", self.replication_min_acked_lsn)
            .field_u64("replication_lag", self.replication_lag)
            .field_u64(
                "replication_quorum_frontier",
                self.replication_quorum_frontier,
            )
            .field_u64(
                "replication_quorum_timeouts",
                self.replication_quorum_timeouts,
            )
            .field_u64("replication_link_drops", self.replication_link_drops)
            .field_raw("replication_link_acked", &{
                let mut arr = String::from("[");
                for (i, (id, acked)) in self.replication_link_acked.iter().enumerate() {
                    if i > 0 {
                        arr.push(',');
                    }
                    arr.push_str(&format!("{{\"id\":{id},\"acked_lsn\":{acked}}}"));
                }
                arr.push(']');
                arr
            })
            .field_str("kernel", self.kernel)
            .field_bool("fma_available", self.fma_available)
            .field_u64("thread_clamp_events", self.thread_clamp_events)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indexed(n: usize, s: usize, i: usize, l: usize, matched: usize) -> QueryStats {
        QueryStats {
            n,
            smaller: s,
            intermediate: i,
            larger: l,
            verified: i,
            intersect_pruned: 0,
            matched,
            quant: crate::quant::QuantFilterStats::default(),
            path: ExecutionPath::Index { index: 0 },
        }
    }

    #[test]
    fn pruning_fraction() {
        let s = indexed(100, 30, 20, 50, 35);
        assert_eq!(s.pruned_fraction(), 0.8);
        assert_eq!(s.pruning_percentage(), 80.0);
        assert!(s.used_index());
    }

    #[test]
    fn scan_stats_have_zero_pruning() {
        let s = QueryStats::scan(50, 10, ScanReason::Requested);
        assert_eq!(s.pruned_fraction(), 0.0);
        assert!(!s.used_index());
        assert_eq!(s.verified, 50);
    }

    #[test]
    fn empty_dataset_counts_as_fully_pruned() {
        let s = indexed(0, 0, 0, 0, 0);
        assert_eq!(s.pruned_fraction(), 1.0);
    }

    #[test]
    fn aggregator_means() {
        let mut agg = StatsAggregator::new();
        agg.add(&indexed(100, 50, 0, 50, 50));
        agg.add(&QueryStats::scan(100, 10, ScanReason::ZeroCoefficient));
        assert_eq!(agg.count(), 2);
        assert_eq!(agg.mean_pruning_percentage(), 50.0);
        assert_eq!(agg.mean_verified(), 50.0);
        assert_eq!(agg.mean_matched(), 30.0);
        assert_eq!(agg.index_hit_rate(), 0.5);
    }

    #[test]
    fn merge_equals_sequential_adds() {
        let stats = [
            indexed(100, 50, 0, 50, 50),
            QueryStats::scan(100, 10, ScanReason::ZeroCoefficient),
            indexed(200, 20, 100, 80, 60),
        ];
        let mut sequential = StatsAggregator::new();
        for s in &stats {
            sequential.add(s);
        }
        let mut left = StatsAggregator::new();
        left.add(&stats[0]);
        let mut right = StatsAggregator::new();
        right.add(&stats[1]);
        right.add(&stats[2]);
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert_eq!(
            left.mean_pruning_percentage(),
            sequential.mean_pruning_percentage()
        );
        assert_eq!(left.mean_verified(), sequential.mean_verified());
        assert_eq!(left.mean_matched(), sequential.mean_matched());
        assert_eq!(left.mean_intermediate(), sequential.mean_intermediate());
        assert_eq!(left.index_hit_rate(), sequential.index_hit_rate());
    }

    #[test]
    fn fallback_and_degraded_are_counted() {
        let mut agg = StatsAggregator::new();
        agg.add(&indexed(10, 5, 0, 5, 5));
        agg.add(&QueryStats::scan(10, 1, ScanReason::OctantMismatch));
        agg.add(&QueryStats::scan(10, 1, ScanReason::IndexUnavailable));
        agg.record_quarantine();
        assert_eq!(agg.scan_fallback_count(), 2);
        assert_eq!(agg.degraded_count(), 1);
        assert_eq!(agg.quarantine_event_count(), 1);
        let mut other = StatsAggregator::new();
        other.add(&QueryStats::scan(10, 0, ScanReason::IndexUnavailable));
        other.record_quarantine();
        agg.merge(&other);
        assert_eq!(agg.scan_fallback_count(), 3);
        assert_eq!(agg.degraded_count(), 2);
        assert_eq!(agg.quarantine_event_count(), 2);
    }

    #[test]
    fn served_by_derives_from_path() {
        assert_eq!(
            ServedBy::from_path(&ExecutionPath::Index { index: 3 }),
            ServedBy::Index(3)
        );
        assert_eq!(
            ServedBy::from_path(&ExecutionPath::ScanFallback(ScanReason::Requested)),
            ServedBy::ScanFallback
        );
        let degraded =
            ServedBy::from_path(&ExecutionPath::ScanFallback(ScanReason::IndexUnavailable));
        assert_eq!(degraded, ServedBy::Degraded);
        assert!(degraded.is_degraded());
        assert!(!ServedBy::ScanFallback.is_degraded());
    }

    #[test]
    fn snapshot_records_kernel_provenance() {
        let mut agg = StatsAggregator::new();
        let mut s = indexed(100, 40, 20, 40, 30);
        s.verified = 12;
        s.intersect_pruned = 8;
        agg.add(&s);
        let snap = agg.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.mean_intersect_pruned, 8.0);
        assert_eq!(snap.mean_verified, 12.0);
        // 40 + 40 wholesale + 8 intersect-pruned of 100.
        assert_eq!(snap.mean_pruning_percentage, 88.0);
        assert_eq!(snap.kernel, planar_geom::kernel_name());
        assert!(snap.kernel == "avx2" || snap.kernel == "portable");
        assert_eq!(snap.fma_available, planar_geom::host_has_fma());
    }

    #[test]
    fn aggregator_empty_is_zero() {
        let agg = StatsAggregator::new();
        assert_eq!(agg.mean_pruning_percentage(), 0.0);
        assert_eq!(agg.mean_verified(), 0.0);
        assert_eq!(agg.index_hit_rate(), 0.0);
    }

    #[test]
    fn deadline_placeholders_are_counted_separately() {
        let mut agg = StatsAggregator::new();
        agg.add(&indexed(10, 5, 0, 5, 5));
        agg.add(&QueryStats::scan(10, 0, ScanReason::DeadlineExceeded));
        assert_eq!(agg.deadline_hit_count(), 1);
        // A skipped slot is neither an index hit nor a scan fallback.
        assert_eq!(agg.scan_fallback_count(), 0);
        assert_eq!(agg.index_hit_rate(), 0.5);
        let mut other = StatsAggregator::new();
        other.add(&QueryStats::scan(10, 0, ScanReason::DeadlineExceeded));
        agg.merge(&other);
        assert_eq!(agg.deadline_hit_count(), 2);
        assert_eq!(agg.snapshot().deadline_hits, 2);
        let partial =
            ServedBy::from_path(&ExecutionPath::ScanFallback(ScanReason::DeadlineExceeded));
        assert!(partial.is_partial());
        assert!(!ServedBy::ScanFallback.is_partial());
    }

    #[test]
    fn json_object_builder_escapes_and_nests() {
        let inner = JsonObject::new().field_u64("x", 7).finish();
        let doc = JsonObject::new()
            .field_str("name", "a \"quoted\"\\\n\tpath\u{1}")
            .field_f64("pi", 3.5)
            .field_f64("nan", f64::NAN)
            .field_f64("inf", f64::INFINITY)
            .field_bool("on", true)
            .field_raw("inner", &inner)
            .finish();
        assert_eq!(
            doc,
            "{\"name\":\"a \\\"quoted\\\"\\\\\\n\\tpath\\u0001\",\
             \"pi\":3.5,\"nan\":null,\"inf\":null,\"on\":true,\
             \"inner\":{\"x\":7}}"
        );
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn snapshot_json_is_complete_and_balanced() {
        let mut agg = StatsAggregator::new();
        agg.add(&indexed(100, 40, 20, 40, 30));
        agg.add(&QueryStats::scan(100, 10, ScanReason::DeadlineExceeded));
        agg.record_wal(&crate::wal::WalHealth {
            segments: 2,
            unsynced_records: 1,
            last_lsn: 9,
            appended_lsn: 9,
            acked_lsn: 7,
        });
        let snap = agg.snapshot();
        let json = snap.to_json();
        // Structurally an object, no trailing comma, balanced quotes.
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains(",}"));
        assert_eq!(json.matches('"').count() % 2, 0);
        // Every counter the aggregator computed is present verbatim.
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"deadline_hits\":1"));
        assert!(json.contains("\"wal_segments\":2"));
        assert!(json.contains("\"wal_ack_lag\":2"));
        assert!(json.contains(&format!("\"index_hit_rate\":{}", snap.index_hit_rate)));
        assert!(json.contains(&format!("\"kernel\":\"{}\"", snap.kernel)));
        assert!(json.contains(&format!(
            "\"fma_available\":{}",
            if snap.fma_available { "true" } else { "false" }
        )));
        // No links recorded: the per-link array renders empty.
        assert!(json.contains("\"replication_link_acked\":[]"));
        // Field count matches the struct: one "key": per field.
        let fields = json.matches("\":").count();
        assert_eq!(fields, 44, "snapshot JSON should carry all 44 fields");
    }

    #[test]
    fn replication_link_and_quorum_fields_render_and_merge() {
        let mut agg = StatsAggregator::new();
        agg.record_replication(&crate::replicate::ReplicationHealth {
            term: 3,
            appended_lsn: 20,
            replicas: 2,
            min_acked_lsn: 12,
            max_lag: 8,
            quorum_frontier: 15,
        });
        agg.record_replica_links(&[
            crate::replicate::ReplicaHealth {
                id: 0,
                acked_lsn: 15,
                applied_lsn: 15,
                last_progress_ms: 100,
            },
            crate::replicate::ReplicaHealth {
                id: 1,
                acked_lsn: 12,
                applied_lsn: 11,
                last_progress_ms: 80,
            },
        ]);
        let stats = crate::replicate::ReplicationStats {
            quorum_timeouts: 2,
            link_drops: 1,
            ..Default::default()
        };
        agg.record_replication_stats(&stats);

        let snap = agg.snapshot();
        assert_eq!(snap.replication_quorum_frontier, 15);
        assert_eq!(snap.replication_quorum_timeouts, 2);
        assert_eq!(snap.replication_link_drops, 1);
        assert_eq!(snap.replication_link_acked, vec![(0, 15), (1, 12)]);
        let json = snap.to_json();
        assert!(json.contains(
            "\"replication_link_acked\":[{\"id\":0,\"acked_lsn\":15},{\"id\":1,\"acked_lsn\":12}]"
        ));
        assert!(json.contains("\"replication_quorum_frontier\":15"));

        // Merge is latest-recording-wins, link vec included.
        let mut other = StatsAggregator::new();
        other.merge(&agg);
        assert_eq!(
            other.snapshot().replication_link_acked,
            vec![(0, 15), (1, 12)]
        );
    }

    #[test]
    fn wal_health_is_latest_wins() {
        let mut agg = StatsAggregator::new();
        let snap = agg.snapshot();
        assert_eq!(snap.wal_segments, 0);
        assert_eq!(snap.wal_last_lsn, 0);
        agg.record_wal(&crate::wal::WalHealth {
            segments: 2,
            unsynced_records: 3,
            last_lsn: 40,
            appended_lsn: 40,
            acked_lsn: 37,
        });
        agg.record_wal(&crate::wal::WalHealth {
            segments: 1,
            unsynced_records: 0,
            last_lsn: 57,
            appended_lsn: 57,
            acked_lsn: 57,
        });
        let snap = agg.snapshot();
        assert_eq!(snap.wal_segments, 1);
        assert_eq!(snap.wal_unsynced_records, 0);
        assert_eq!(snap.wal_last_lsn, 57);
        assert_eq!(snap.wal_appended_lsn, 57);
        assert_eq!(snap.wal_acked_lsn, 57);
        // Merging an aggregator that never recorded keeps ours.
        agg.merge(&StatsAggregator::new());
        assert_eq!(agg.snapshot().wal_last_lsn, 57);
        // Merging one that did record adopts its (later) view.
        let mut other = StatsAggregator::new();
        other.record_wal(&crate::wal::WalHealth {
            segments: 4,
            unsynced_records: 7,
            last_lsn: 99,
            appended_lsn: 99,
            acked_lsn: 92,
        });
        agg.merge(&other);
        assert_eq!(agg.snapshot().wal_last_lsn, 99);
        assert_eq!(agg.snapshot().wal_acked_lsn, 92);
    }

    #[test]
    fn epoch_and_group_commit_are_latest_wins() {
        let mut agg = StatsAggregator::new();
        let snap = agg.snapshot();
        assert_eq!(snap.epoch, 0);
        assert_eq!(snap.group_commit_fsyncs, 0);
        agg.record_epoch(&crate::concurrent::EpochStats {
            epoch: 3,
            published: 2,
            retired_live: 1,
            reclaimed: 1,
            clones: 2,
            clone_bytes: 4096,
            clone_micros: 17,
        });
        agg.record_group_commit(&crate::wal::GroupCommitStats {
            fsyncs: 4,
            committed_records: 32,
            max_group: 12,
        });
        let snap = agg.snapshot();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.epochs_published, 2);
        assert_eq!(snap.epochs_retired_live, 1);
        assert_eq!(snap.epochs_reclaimed, 1);
        assert_eq!(snap.epoch_clones, 2);
        assert_eq!(snap.epoch_clone_bytes, 4096);
        assert_eq!(snap.epoch_clone_micros, 17);
        assert_eq!(snap.group_commit_fsyncs, 4);
        assert_eq!(snap.group_commit_records, 32);
        assert_eq!(snap.group_commit_max_group, 12);
        // Merging a never-recorded aggregator keeps ours…
        agg.merge(&StatsAggregator::new());
        assert_eq!(agg.snapshot().epoch, 3);
        // …and a recorded one wins.
        let mut other = StatsAggregator::new();
        other.record_epoch(&crate::concurrent::EpochStats {
            epoch: 9,
            published: 8,
            retired_live: 0,
            reclaimed: 8,
            clones: 8,
            clone_bytes: 1 << 20,
            clone_micros: 400,
        });
        agg.merge(&other);
        let snap = agg.snapshot();
        assert_eq!(snap.epoch, 9);
        assert_eq!(snap.group_commit_fsyncs, 4, "gc recording survives");
    }
}
