//! The application-specific feature map `φ : R^d → R^{d'}`.
//!
//! `φ` is the part of a scalar product query that is known ahead of time and
//! can therefore be indexed — e.g. the paper's Example 1 maps a household's
//! `(active, reactive, voltage, current)` to `(active, voltage·current)`,
//! and Example 2 maps a pair of moving objects to the seven monomials
//! `X₁…X₇` of their squared-distance polynomial.

use crate::table::FeatureTable;
use crate::{PlanarError, Result};

/// A fixed, known-apriori map from raw points to feature space.
pub trait FeatureMap {
    /// Dimensionality `d` of the raw input points.
    fn input_dim(&self) -> usize;

    /// Dimensionality `d'` of the feature space the index lives in.
    fn output_dim(&self) -> usize;

    /// Compute `φ(x)` into `out` (which has length `output_dim()`).
    fn apply(&self, x: &[f64], out: &mut [f64]);

    /// Convenience: materialize `φ(x)` as a fresh vector.
    fn map(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.output_dim()];
        self.apply(x, &mut out);
        out
    }

    /// Apply the map to a whole dataset, producing the [`FeatureTable`] the
    /// index is built over.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] when a point has the wrong arity,
    /// [`PlanarError::NotFinite`] when `φ` produces NaN/∞.
    fn map_all<'a>(&self, points: impl IntoIterator<Item = &'a [f64]>) -> Result<FeatureTable> {
        let mut table = FeatureTable::new(self.output_dim())?;
        let mut buf = vec![0.0; self.output_dim()];
        for x in points {
            if x.len() != self.input_dim() {
                return Err(PlanarError::DimensionMismatch {
                    expected: self.input_dim(),
                    found: x.len(),
                });
            }
            self.apply(x, &mut buf);
            table.push_row(&buf)?;
        }
        Ok(table)
    }
}

/// The identity map `φ(x) = x`: with it, Problem 1 reduces to half-space
/// range searching and Problem 2 to the hyperplane-to-nearest-point query
/// (paper Remark 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityMap {
    dim: usize,
}

impl IdentityMap {
    /// Identity on `R^dim`.
    pub fn new(dim: usize) -> Self {
        Self { dim }
    }
}

impl FeatureMap for IdentityMap {
    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(x);
    }
}

/// A feature map defined by a closure, for ad-hoc `φ`s.
///
/// ```
/// use planar_core::{FeatureMap, FnFeatureMap};
/// // Example 1 of the paper: (active, reactive, voltage, current)
/// //   ↦ (active, voltage·current)
/// let phi = FnFeatureMap::new(4, 2, |x, out| {
///     out[0] = x[0];
///     out[1] = x[2] * x[3];
/// });
/// assert_eq!(phi.map(&[5.0, 0.2, 230.0, 2.0]), vec![5.0, 460.0]);
/// ```
pub struct FnFeatureMap<F: Fn(&[f64], &mut [f64])> {
    input_dim: usize,
    output_dim: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64])> FnFeatureMap<F> {
    /// Wrap a closure computing `φ`.
    pub fn new(input_dim: usize, output_dim: usize, f: F) -> Self {
        Self {
            input_dim,
            output_dim,
            f,
        }
    }
}

impl<F: Fn(&[f64], &mut [f64])> FeatureMap for FnFeatureMap<F> {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        (self.f)(x, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map_roundtrips() {
        let m = IdentityMap::new(3);
        assert_eq!(m.input_dim(), 3);
        assert_eq!(m.output_dim(), 3);
        assert_eq!(m.map(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn fn_map_applies_closure() {
        let m = FnFeatureMap::new(2, 3, |x, out| {
            out[0] = x[0];
            out[1] = x[1];
            out[2] = x[0] * x[1];
        });
        assert_eq!(m.map(&[2.0, 3.0]), vec![2.0, 3.0, 6.0]);
    }

    #[test]
    fn map_all_builds_table() {
        let m = FnFeatureMap::new(1, 2, |x, out| {
            out[0] = x[0];
            out[1] = x[0] * x[0];
        });
        let pts: Vec<Vec<f64>> = vec![vec![1.0], vec![2.0], vec![3.0]];
        let t = m.map_all(pts.iter().map(|p| p.as_slice())).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.row(2), &[3.0, 9.0]);
    }

    #[test]
    fn map_all_rejects_bad_arity_and_nan() {
        let m = IdentityMap::new(2);
        let bad: Vec<Vec<f64>> = vec![vec![1.0]];
        assert!(m.map_all(bad.iter().map(|p| p.as_slice())).is_err());

        let nan_map = FnFeatureMap::new(1, 1, |_x, out| out[0] = f64::NAN);
        let pts: Vec<Vec<f64>> = vec![vec![1.0]];
        assert_eq!(
            nan_map.map_all(pts.iter().map(|p| p.as_slice())),
            Err(PlanarError::NotFinite)
        );
    }
}
