//! Scalar product query types (paper Problems 1 and 2) and their exact,
//! scan-side evaluation.

use crate::{PlanarError, Result};
use planar_geom::{dot_slices, Hyperplane, Vector};

/// Direction of the scalar-product inequality.
///
/// The paper's Remark 2: both "≤" and "≥" constraints are supported by the
/// same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `⟨a, φ(x)⟩ ≤ b`
    Leq,
    /// `⟨a, φ(x)⟩ ≥ b`
    Geq,
}

impl Cmp {
    /// The opposite direction.
    pub fn flip(self) -> Cmp {
        match self {
            Cmp::Leq => Cmp::Geq,
            Cmp::Geq => Cmp::Leq,
        }
    }
}

/// Why a query failed typed validation (carried by
/// [`PlanarError::InvalidQuery`]). Catching these at construction keeps
/// NaN out of the per-axis intercept thresholds `tᵢ = cᵢ·b/aᵢ` (§4.3),
/// where it would otherwise poison every interval comparison silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidQueryReason {
    /// Coefficient `a[axis]` is NaN or ±∞.
    NonFiniteCoefficient {
        /// The offending axis.
        axis: usize,
    },
    /// The offset `b` is NaN or ±∞.
    NonFiniteOffset,
    /// Coefficient `a[axis]` is exactly zero on an axis the index
    /// thresholds: the intercept `cᵢ·b/aᵢ` would be ±∞ or NaN. Raised by
    /// surfaces where every axis is thresholded (e.g.
    /// [`crate::HalfSpaceIndex`]); [`crate::PlanarIndexSet`] instead
    /// routes zero-coefficient queries to its exact scan fallback.
    ZeroCoefficient {
        /// The offending axis.
        axis: usize,
    },
}

impl core::fmt::Display for InvalidQueryReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InvalidQueryReason::NonFiniteCoefficient { axis } => {
                write!(f, "coefficient on axis {axis} is NaN or infinite")
            }
            InvalidQueryReason::NonFiniteOffset => write!(f, "offset b is NaN or infinite"),
            InvalidQueryReason::ZeroCoefficient { axis } => {
                write!(
                    f,
                    "coefficient on axis {axis} is zero on a thresholded axis"
                )
            }
        }
    }
}

/// An inequality query `⟨a, φ(x)⟩ {≤,≥} b` (paper Problem 1).
///
/// Both `a` and `b` are unknown until query time; the index was built only
/// from their *domains*.
#[derive(Debug, Clone, PartialEq)]
pub struct InequalityQuery {
    a: Vec<f64>,
    cmp: Cmp,
    b: f64,
    a_norm: f64,
}

impl InequalityQuery {
    /// Create a query.
    ///
    /// # Errors
    ///
    /// [`PlanarError::InvalidQuery`] on NaN/∞ coefficients or offset
    /// (typed per axis, see [`InvalidQueryReason`]); a zero-dimensional
    /// `a` yields [`PlanarError::DimensionMismatch`].
    pub fn new(a: Vec<f64>, cmp: Cmp, b: f64) -> Result<Self> {
        if a.is_empty() {
            return Err(PlanarError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        if let Some(axis) = a.iter().position(|v| !v.is_finite()) {
            return Err(PlanarError::InvalidQuery(
                InvalidQueryReason::NonFiniteCoefficient { axis },
            ));
        }
        if !b.is_finite() {
            return Err(PlanarError::InvalidQuery(
                InvalidQueryReason::NonFiniteOffset,
            ));
        }
        let a_norm = planar_geom::norm(&a);
        Ok(Self { a, cmp, b, a_norm })
    }

    /// Typed check that no coefficient is exactly zero — required by
    /// surfaces that threshold *every* axis (the per-axis intercept
    /// `cᵢ·b/aᵢ` is undefined at `aᵢ = 0`).
    ///
    /// # Errors
    ///
    /// [`PlanarError::InvalidQuery`] with
    /// [`InvalidQueryReason::ZeroCoefficient`] for the first zero axis.
    pub fn require_nonzero_coefficients(&self) -> Result<()> {
        if let Some(axis) = self.a.iter().position(|&v| v == 0.0) {
            return Err(PlanarError::InvalidQuery(
                InvalidQueryReason::ZeroCoefficient { axis },
            ));
        }
        Ok(())
    }

    /// Shorthand for a `≤` query.
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn leq(a: Vec<f64>, b: f64) -> Result<Self> {
        Self::new(a, Cmp::Leq, b)
    }

    /// Shorthand for a `≥` query.
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn geq(a: Vec<f64>, b: f64) -> Result<Self> {
        Self::new(a, Cmp::Geq, b)
    }

    /// The coefficient vector `a`.
    #[inline]
    pub fn a(&self) -> &[f64] {
        &self.a
    }

    /// The inequality direction.
    #[inline]
    pub fn cmp(&self) -> Cmp {
        self.cmp
    }

    /// The offset `b`.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Dimensionality `d'` of the query space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// `|a|`, cached at construction (used by every distance computation).
    #[inline]
    pub fn a_norm(&self) -> f64 {
        self.a_norm
    }

    /// Signed margin `⟨a, φ(x)⟩ − b` of a feature row.
    #[inline]
    pub fn margin(&self, phi: &[f64]) -> f64 {
        dot_slices(&self.a, phi) - self.b
    }

    /// Exact predicate: does this feature row satisfy the query?
    #[inline]
    pub fn satisfies(&self, phi: &[f64]) -> bool {
        match self.cmp {
            Cmp::Leq => self.margin(phi) <= 0.0,
            Cmp::Geq => self.margin(phi) >= 0.0,
        }
    }

    /// Distance `|⟨a, φ(x)⟩ − b| / |a|` of `φ(x)` from the query hyperplane
    /// (the ranking criterion of Problem 2).
    #[inline]
    pub fn distance(&self, phi: &[f64]) -> f64 {
        self.margin(phi).abs() / self.a_norm
    }

    /// [`Self::satisfies`] from a precomputed scalar product `⟨a, φ(x)⟩`.
    ///
    /// Performs the exact comparison of [`Self::satisfies`]; feeding it a
    /// dot product from [`planar_geom::dot_block`] therefore yields results
    /// bit-identical to the row-at-a-time path.
    #[inline]
    pub fn satisfies_dot(&self, dot: f64) -> bool {
        let margin = dot - self.b;
        match self.cmp {
            Cmp::Leq => margin <= 0.0,
            Cmp::Geq => margin >= 0.0,
        }
    }

    /// [`Self::distance`] from a precomputed scalar product `⟨a, φ(x)⟩`.
    #[inline]
    pub fn distance_from_dot(&self, dot: f64) -> f64 {
        (dot - self.b).abs() / self.a_norm
    }

    /// The query hyperplane `H(q) : ⟨a, Y⟩ = b` (paper Eq. 2).
    ///
    /// # Errors
    ///
    /// Propagates geometry validation (zero normal) — cannot happen for a
    /// query constructed through [`Self::new`] with a non-zero `a`.
    pub fn hyperplane(&self) -> Result<Hyperplane> {
        let v = Vector::new(self.a.clone()).map_err(PlanarError::Geom)?;
        Hyperplane::new(v, self.b).map_err(PlanarError::Geom)
    }

    /// The logically equivalent query with the opposite comparison:
    /// `⟨a,φ⟩ ≤ b  ⇔  ⟨−a,φ⟩ ≥ −b`.
    ///
    /// The two forms accept exactly the same points; this is occasionally
    /// useful to move a query into the octant an index was built for.
    pub fn negated(&self) -> InequalityQuery {
        InequalityQuery {
            a: self.a.iter().map(|v| -v).collect(),
            cmp: self.cmp.flip(),
            b: -self.b,
            a_norm: self.a_norm,
        }
    }
}

/// A top-k nearest-neighbor query (paper Problem 2): among points satisfying
/// the inequality, the `k` with smallest distance to the query hyperplane.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKQuery {
    /// The underlying inequality constraint.
    pub query: InequalityQuery,
    /// How many nearest satisfying points to return.
    pub k: usize,
}

impl TopKQuery {
    /// Create a top-k query.
    ///
    /// # Errors
    ///
    /// [`PlanarError::KNotPositive`] when `k == 0`.
    pub fn new(query: InequalityQuery, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(PlanarError::KNotPositive);
        }
        Ok(Self { query, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_geom::approx_eq;

    #[test]
    fn construction_validates() {
        assert!(InequalityQuery::new(vec![], Cmp::Leq, 0.0).is_err());
        assert!(InequalityQuery::new(vec![f64::NAN], Cmp::Leq, 0.0).is_err());
        assert!(InequalityQuery::new(vec![1.0], Cmp::Leq, f64::INFINITY).is_err());
        assert!(InequalityQuery::leq(vec![1.0, 2.0], 3.0).is_ok());
    }

    #[test]
    fn construction_errors_are_typed_per_axis() {
        assert_eq!(
            InequalityQuery::new(vec![1.0, f64::NAN, 2.0], Cmp::Leq, 0.0),
            Err(PlanarError::InvalidQuery(
                InvalidQueryReason::NonFiniteCoefficient { axis: 1 }
            ))
        );
        assert_eq!(
            InequalityQuery::new(vec![1.0, f64::NEG_INFINITY], Cmp::Geq, 0.0),
            Err(PlanarError::InvalidQuery(
                InvalidQueryReason::NonFiniteCoefficient { axis: 1 }
            ))
        );
        assert_eq!(
            InequalityQuery::new(vec![1.0], Cmp::Leq, f64::NAN),
            Err(PlanarError::InvalidQuery(
                InvalidQueryReason::NonFiniteOffset
            ))
        );
        assert_eq!(
            InequalityQuery::new(vec![1.0], Cmp::Leq, f64::NEG_INFINITY),
            Err(PlanarError::InvalidQuery(
                InvalidQueryReason::NonFiniteOffset
            ))
        );
    }

    #[test]
    fn zero_coefficient_check_is_typed() {
        // Zero coefficients are legal for the general query (the multi-
        // index set scan-falls-back), so construction succeeds…
        let q = InequalityQuery::leq(vec![1.0, 0.0, 2.0], 3.0).unwrap();
        // …but the thresholded-axis check reports the exact axis.
        assert_eq!(
            q.require_nonzero_coefficients(),
            Err(PlanarError::InvalidQuery(
                InvalidQueryReason::ZeroCoefficient { axis: 1 }
            ))
        );
        let ok = InequalityQuery::leq(vec![1.0, 2.0], 3.0).unwrap();
        assert!(ok.require_nonzero_coefficients().is_ok());
    }

    #[test]
    fn satisfies_leq_and_geq() {
        let q = InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap();
        assert!(q.satisfies(&[2.0, 2.0]));
        assert!(q.satisfies(&[2.0, 3.0])); // boundary counts for ≤
        assert!(!q.satisfies(&[3.0, 3.0]));

        let g = InequalityQuery::geq(vec![1.0, 1.0], 5.0).unwrap();
        assert!(!g.satisfies(&[2.0, 2.0]));
        assert!(g.satisfies(&[2.0, 3.0])); // boundary counts for ≥
        assert!(g.satisfies(&[3.0, 3.0]));
    }

    #[test]
    fn margin_and_distance() {
        let q = InequalityQuery::leq(vec![3.0, 4.0], 10.0).unwrap();
        assert!(approx_eq(q.margin(&[2.0, 1.0]), 0.0));
        assert!(approx_eq(q.a_norm(), 5.0));
        assert!(approx_eq(q.distance(&[0.0, 0.0]), 2.0));
    }

    #[test]
    fn dot_variants_match_row_variants_bitwise() {
        let rows = [[2.0, 1.0], [0.0, 0.0], [7.5, -3.25], [1e9, 1e-9]];
        for q in [
            InequalityQuery::leq(vec![3.0, 4.0], 10.0).unwrap(),
            InequalityQuery::geq(vec![0.1, -2.0], -1.5).unwrap(),
        ] {
            for phi in &rows {
                let dot = planar_geom::dot_slices(q.a(), phi);
                assert_eq!(q.satisfies(phi), q.satisfies_dot(dot));
                assert_eq!(
                    q.distance(phi).to_bits(),
                    q.distance_from_dot(dot).to_bits()
                );
            }
        }
    }

    #[test]
    fn negation_preserves_answers() {
        let q = InequalityQuery::leq(vec![1.0, -2.0], 3.0).unwrap();
        let n = q.negated();
        assert_eq!(n.cmp(), Cmp::Geq);
        for phi in [[0.0, 0.0], [5.0, 1.0], [1.5, 0.0], [10.0, -3.0]] {
            assert_eq!(q.satisfies(&phi), n.satisfies(&phi), "{phi:?}");
            assert!(approx_eq(q.distance(&phi), n.distance(&phi)));
        }
    }

    #[test]
    fn hyperplane_roundtrip() {
        let q = InequalityQuery::leq(vec![1.0, 2.0, 5.0], 10.0).unwrap();
        let h = q.hyperplane().unwrap();
        assert_eq!(h.axis_intercept(0), Some(10.0));
        assert_eq!(h.axis_intercept(2), Some(2.0));
    }

    #[test]
    fn topk_requires_positive_k() {
        let q = InequalityQuery::leq(vec![1.0], 1.0).unwrap();
        assert_eq!(
            TopKQuery::new(q.clone(), 0).unwrap_err(),
            PlanarError::KNotPositive
        );
        assert!(TopKQuery::new(q, 3).is_ok());
    }
}
