//! Crash-consistent mutation durability: a per-set (and per-shard)
//! **write-ahead log** with point-in-time recovery.
//!
//! PR 2 made *snapshots* crash-safe, but every mutation since the last
//! snapshot was still lost on a crash. This module closes that gap with a
//! classic WAL protocol:
//!
//! * every mutation is appended to the log **before** it is applied
//!   in memory, framed with a CRC-64 and a monotonically increasing
//!   **LSN** (log sequence number);
//! * [`FsyncPolicy`] bounds data loss: `Always` fsyncs per record,
//!   `EveryN(n)` amortizes the fsync over `n` records, `OnCheckpoint`
//!   trusts the OS until the next checkpoint;
//! * `save()` becomes **checkpoint-then-truncate**: append a `Checkpoint`
//!   marker, fsync the log, write a fresh snapshot atomically, publish it
//!   in the `CHECKPOINT` manifest, then delete the now-covered segments;
//! * `open_durable` loads the newest valid snapshot and **replays** the
//!   records with LSN above the manifest watermark — replay is idempotent
//!   because every record is keyed by LSN;
//! * a **torn tail** (a crash mid-write) is detected by the frame CRC,
//!   truncated at the first bad frame, and *reported* in the
//!   [`RecoveryReport`] — it is never a hard error.
//!
//! ## Frame format
//!
//! A segment file starts with a 16-byte header — the 8-byte magic
//! `PLNRWAL2` plus the **term** (a little-endian u64 fencing token, see
//! `crate::replicate`) — followed by frames (all integers little-endian).
//! Legacy `PLNRWAL1` segments (8-byte header, implicit term 0) are still
//! readable:
//!
//! ```text
//! | payload_len u32 | lsn u64 | tag u8 | payload | crc64 u64 |
//! ```
//!
//! The CRC-64/XZ covers everything before it (header + payload), so a
//! frame is valid iff it is fully present *and* uncorrupted. Payload
//! length is bounded (16 MiB) so a corrupt length cannot drive huge
//! allocations. Segments rotate at [`WalOptions::segment_max_bytes`] and
//! are named by the first LSN they may contain, so lexicographic file
//! order is LSN order.
//!
//! ## Durable directory layout
//!
//! ```text
//! dir/CHECKPOINT                 manifest: generation + LSN watermark (CRC'd, atomically replaced)
//! dir/snapshot-<gen>.plnr        the PLNRIDX2 / PLNRSHD1 snapshot
//! dir/wal/wal-<lsn>.log          segments (PlanarIndexSet)
//! dir/wal/shard-NNNN/wal-<lsn>.log  per-shard segments (ShardedIndexSet)
//! ```
//!
//! Sharded sets keep **one WAL per shard** sharing a single global LSN
//! counter; each `Insert` record carries its assigned global id, so
//! replay is shard-local and independent of cross-shard interleaving.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::multi::{PlanarIndexSet, QueryOutcome, TopKOutcome};
use crate::parallel::ExecutionConfig;
use crate::persist::{RecoveryReport, SaveOptions, ShardedRecoveryReport};
use crate::query::{InequalityQuery, TopKQuery};
use crate::shard::{ShardedIndexSet, ShardedQueryOutcome, ShardedTopKOutcome};
use crate::store::{KeyStore, VecStore};
use crate::table::PointId;
use crate::{PlanarError, Result};

/// Log sequence number: strictly increasing across every record a durable
/// set ever writes (shared across all shards of a sharded set).
pub type Lsn = u64;

const SEGMENT_MAGIC: &[u8; 8] = b"PLNRWAL2";
const SEGMENT_MAGIC_V1: &[u8; 8] = b"PLNRWAL1";
/// v2 segment header: magic + term.
const SEGMENT_HEADER_LEN: usize = 16;
const MANIFEST_MAGIC: &[u8; 8] = b"PLNRCKP2";
const MANIFEST_MAGIC_V1: &[u8; 8] = b"PLNRCKP1";
const MANIFEST_FILE: &str = "CHECKPOINT";
const WAL_SUBDIR: &str = "wal";
/// `payload_len u32 | lsn u64 | tag u8 | ... | crc64 u64`.
const FRAME_HEADER: usize = 4 + 8 + 1;
const FRAME_OVERHEAD: usize = FRAME_HEADER + 8;
/// Upper bound on a frame payload; a corrupt length field can never
/// drive an allocation past this.
const MAX_PAYLOAD: usize = 1 << 24;

const TAG_INSERT: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_COMPACT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;

pub(crate) fn walerr(msg: impl Into<String>) -> PlanarError {
    PlanarError::Persist(format!("wal: {}", msg.into()))
}

fn walio(ctx: &str, e: std::io::Error) -> PlanarError {
    PlanarError::Persist(format!("wal: {ctx}: {e}"))
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// When appended WAL records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record: zero loss on power failure, highest
    /// per-mutation latency.
    Always,
    /// fsync once every `n` records: at most `n − 1` acknowledged
    /// mutations can be lost to a power failure.
    EveryN(u32),
    /// fsync only at checkpoints (and explicit [`WalHealth`]-visible
    /// syncs): fastest, loss bounded only by the checkpoint interval.
    OnCheckpoint,
}

/// Configuration for a durable set's write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Record durability policy (default [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one reaches this many
    /// bytes (default 8 MiB). Retention is tied to checkpoints: segments
    /// are only deleted once a snapshot covering their records is durable.
    pub segment_max_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            segment_max_bytes: 8 * 1024 * 1024,
        }
    }
}

impl WalOptions {
    /// Set the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set the segment rotation threshold in bytes (min 4 KiB).
    pub fn segment_max_bytes(mut self, bytes: u64) -> Self {
        self.segment_max_bytes = bytes.max(4096);
        self
    }
}

/// Point-in-time health of a write-ahead log, stamped into
/// [`crate::StatsSnapshot`] via [`crate::StatsAggregator::record_wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalHealth {
    /// Live segment files (across all shards for a sharded set).
    pub segments: usize,
    /// Records appended since the last fsync — the current worst-case
    /// loss window on power failure.
    pub unsynced_records: u64,
    /// LSN of the newest appended record (0 when the log is empty).
    /// Alias of [`Self::appended_lsn`], kept for dashboard compatibility.
    pub last_lsn: Lsn,
    /// LSN of the newest appended record (0 when the log is empty).
    pub appended_lsn: Lsn,
    /// Highest LSN known durable: every record at or below it has been
    /// covered by an fsync. `appended_lsn − acked_lsn` is the group-commit
    /// lag — the records a power cut would lose right now. The two
    /// converge after [`DurablePlanarIndexSet::sync`] (and its sharded and
    /// concurrent counterparts).
    pub acked_lsn: Lsn,
}

impl WalHealth {
    /// `appended_lsn − acked_lsn`: records appended but not yet durable.
    pub fn ack_lag(&self) -> u64 {
        self.appended_lsn.saturating_sub(self.acked_lsn)
    }

    /// The durability bound this log imposes on a merged view: `None`
    /// when fully synced (it constrains nothing), the acked watermark
    /// otherwise.
    fn lag_bound(&self) -> Option<Lsn> {
        (self.acked_lsn < self.appended_lsn).then_some(self.acked_lsn)
    }

    pub(crate) fn merge(&mut self, other: &WalHealth) {
        self.segments += other.segments;
        self.unsynced_records += other.unsynced_records;
        // The merged acked watermark is limited by the laggiest writer:
        // shards own disjoint LSN subsets, so the conservative global
        // "everything ≤ acked is durable" bound is the minimum over
        // writers that still have unsynced records.
        let bound = match (self.lag_bound(), other.lag_bound()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_lsn = self.last_lsn.max(other.last_lsn);
        self.appended_lsn = self.appended_lsn.max(other.appended_lsn);
        self.acked_lsn = bound.unwrap_or(self.appended_lsn);
    }
}

// ---------------------------------------------------------------------------
// Records and frames
// ---------------------------------------------------------------------------

/// One logged mutation. `Insert`/`Update` carry the full feature row so
/// replay needs nothing but the log; `Insert` also records the id the
/// mutation assigned, which makes sharded replay shard-local (see module
/// docs) and turns planar replay into a self-check.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A point was inserted and assigned `id`.
    Insert {
        /// The id assigned by the mutation (global id for sharded sets).
        id: PointId,
        /// The feature row.
        row: Vec<f64>,
    },
    /// Point `id` was updated to `row`.
    Update {
        /// The (global) id updated.
        id: PointId,
        /// The new feature row.
        row: Vec<f64>,
    },
    /// Point `id` was deleted (tombstoned).
    Delete {
        /// The (global) id deleted.
        id: PointId,
    },
    /// A compaction ran: unconditional (`None`, planar `compact()`) or
    /// threshold-gated (`Some(t)`, `compact_if`/sharded `compact`).
    /// Compaction is deterministic given the set state, so the marker
    /// alone replays it exactly.
    Compact {
        /// Tombstone-fraction threshold, if the compaction was gated.
        threshold: Option<f64>,
    },
    /// Checkpoint marker: everything at or below `watermark` is captured
    /// by a durable snapshot. A no-op on replay.
    Checkpoint {
        /// The LSN the snapshot covers through.
        watermark: Lsn,
    },
}

/// One point mutation, expressed independently of any set so batches can
/// be validated, logged, and applied as a unit. This is the group-commit
/// currency: [`DurablePlanarIndexSet::apply_batch`] (and the sharded and
/// concurrent counterparts) log a whole `&[Mutation]` with **one** fsync.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Insert a new point (the engine assigns the id, returned in the ack).
    Insert {
        /// The feature row.
        row: Vec<f64>,
    },
    /// Replace the row of live point `id`.
    Update {
        /// The id to update.
        id: PointId,
        /// The new feature row.
        row: Vec<f64>,
    },
    /// Tombstone live point `id`.
    Delete {
        /// The id to delete.
        id: PointId,
    },
}

/// Acknowledgement for one [`Mutation`] of a batch, in batch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationAck {
    /// An insert happened and was assigned this id.
    Inserted(PointId),
    /// An update was applied.
    Updated,
    /// A delete was applied.
    Deleted,
}

/// Pre-validate a whole mutation batch against the *simulated* live-set
/// it will see, so once frames start hitting the log every apply is
/// infallible: inserts are assigned ids `next_id, next_id+1, …`, and
/// updates/deletes may target both pre-existing live points and ids born
/// (and not yet re-deleted) earlier in the same batch.
pub(crate) fn validate_batch(
    dim: usize,
    next_id: PointId,
    is_live: impl Fn(PointId) -> bool,
    muts: &[Mutation],
) -> Result<Vec<WalRecord>> {
    let mut born: Vec<PointId> = Vec::new();
    let mut killed: Vec<PointId> = Vec::new();
    let mut next = next_id;
    let live = |id: PointId, born: &[PointId], killed: &[PointId]| -> bool {
        !killed.contains(&id) && (is_live(id) || born.contains(&id))
    };
    let mut records = Vec::with_capacity(muts.len());
    for m in muts {
        match m {
            Mutation::Insert { row } => {
                validate_row(dim, row)?;
                records.push(WalRecord::Insert {
                    id: next,
                    row: row.clone(),
                });
                born.push(next);
                next += 1;
            }
            Mutation::Update { id, row } => {
                validate_row(dim, row)?;
                if !live(*id, &born, &killed) {
                    return Err(PlanarError::PointNotFound(*id));
                }
                records.push(WalRecord::Update {
                    id: *id,
                    row: row.clone(),
                });
            }
            Mutation::Delete { id } => {
                if !live(*id, &born, &killed) {
                    return Err(PlanarError::PointNotFound(*id));
                }
                records.push(WalRecord::Delete { id: *id });
                killed.push(*id);
            }
        }
    }
    Ok(records)
}

fn encode_frame(lsn: Lsn, rec: &WalRecord) -> Vec<u8> {
    let mut payload = BytesMut::new();
    let tag = match rec {
        WalRecord::Insert { id, row } => {
            payload.put_u32_le(*id);
            payload.put_u32_le(row.len() as u32);
            for v in row {
                payload.put_f64_le(*v);
            }
            TAG_INSERT
        }
        WalRecord::Update { id, row } => {
            payload.put_u32_le(*id);
            payload.put_u32_le(row.len() as u32);
            for v in row {
                payload.put_f64_le(*v);
            }
            TAG_UPDATE
        }
        WalRecord::Delete { id } => {
            payload.put_u32_le(*id);
            TAG_DELETE
        }
        WalRecord::Compact { threshold } => {
            match threshold {
                None => payload.put_u8(0),
                Some(t) => {
                    payload.put_u8(1);
                    payload.put_f64_le(*t);
                }
            }
            TAG_COMPACT
        }
        WalRecord::Checkpoint { watermark } => {
            payload.put_u64_le(*watermark);
            TAG_CHECKPOINT
        }
    };
    let payload = payload.freeze();
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    let mut head = BytesMut::new();
    head.put_u32_le(payload.len() as u32);
    head.put_u64_le(lsn);
    head.put_u8(tag);
    frame.extend_from_slice(head.freeze().as_slice());
    frame.extend_from_slice(payload.as_slice());
    crate::frame::seal_vec(&mut frame);
    frame
}

fn decode_payload(tag: u8, payload: &[u8]) -> Option<WalRecord> {
    let mut buf = Bytes::copy_from_slice(payload);
    let row_after_id = |buf: &mut Bytes| -> Option<(PointId, Vec<f64>)> {
        if buf.len() < 8 {
            return None;
        }
        let id = buf.get_u32_le();
        let dim = buf.get_u32_le() as usize;
        if dim == 0 || buf.len() != dim * 8 {
            return None;
        }
        Some((id, (0..dim).map(|_| buf.get_f64_le()).collect()))
    };
    let rec = match tag {
        TAG_INSERT => {
            let (id, row) = row_after_id(&mut buf)?;
            WalRecord::Insert { id, row }
        }
        TAG_UPDATE => {
            let (id, row) = row_after_id(&mut buf)?;
            WalRecord::Update { id, row }
        }
        TAG_DELETE => {
            if buf.len() != 4 {
                return None;
            }
            WalRecord::Delete {
                id: buf.get_u32_le(),
            }
        }
        TAG_COMPACT => {
            if buf.is_empty() {
                return None;
            }
            match buf.get_u8() {
                0 if buf.is_empty() => WalRecord::Compact { threshold: None },
                1 if buf.len() == 8 => WalRecord::Compact {
                    threshold: Some(buf.get_f64_le()),
                },
                _ => return None,
            }
        }
        TAG_CHECKPOINT => {
            if buf.len() != 8 {
                return None;
            }
            WalRecord::Checkpoint {
                watermark: buf.get_u64_le(),
            }
        }
        _ => return None,
    };
    Some(rec)
}

/// Parse one frame at the start of `bytes`. Returns the frame's total
/// length, its LSN, and the decoded record — or `None` on anything short,
/// corrupt, or malformed (the caller treats that offset as the torn tail).
pub(crate) fn parse_frame(bytes: &[u8]) -> Option<(usize, Lsn, WalRecord)> {
    if bytes.len() < FRAME_OVERHEAD {
        return None;
    }
    let mut buf = Bytes::copy_from_slice(&bytes[..FRAME_HEADER]);
    let len = buf.get_u32_le() as usize;
    let lsn = buf.get_u64_le();
    let tag = buf.get_u8();
    if len > MAX_PAYLOAD || bytes.len() < FRAME_OVERHEAD + len {
        return None;
    }
    let crc_at = FRAME_HEADER + len;
    crate::frame::open_sealed(&bytes[..crc_at + crate::frame::CRC_LEN])?;
    let rec = decode_payload(tag, &bytes[FRAME_HEADER..crc_at])?;
    Some((FRAME_OVERHEAD + len, lsn, rec))
}

/// Count the structurally complete frames in `bytes` (no CRC check):
/// records that were written but are unusable because they sit after the
/// first invalid frame. Returns `(frames, trailing torn bytes)`.
fn structural_count(bytes: &[u8]) -> (usize, usize) {
    let mut pos = 0;
    let mut frames = 0;
    while bytes.len() - pos >= FRAME_OVERHEAD {
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes checked")) as usize;
        if len > MAX_PAYLOAD || bytes.len() - pos < FRAME_OVERHEAD + len {
            break;
        }
        frames += 1;
        pos += FRAME_OVERHEAD + len;
    }
    (frames, bytes.len() - pos)
}

// ---------------------------------------------------------------------------
// Directory scan (recovery read path)
// ---------------------------------------------------------------------------

/// Everything a recovery scan learned about a WAL directory.
#[derive(Debug, Default)]
pub(crate) struct WalScan {
    /// Valid records in LSN order.
    pub frames: Vec<(Lsn, WalRecord)>,
    /// Structurally complete records dropped because they sit at or after
    /// the first invalid frame.
    pub dropped_records: usize,
    /// Torn bytes (a partial frame / unparseable tail) truncated.
    pub torn_bytes: usize,
    /// Highest replication term stamped into any surviving segment header
    /// (0 for legacy `PLNRWAL1` segments).
    pub term: u64,
    /// All segment files found, in LSN-name order.
    segments: Vec<PathBuf>,
    /// `segments[..keep]` survive repair; later ones are deleted.
    keep: usize,
    /// Valid byte length of `segments[keep - 1]` (tail truncation point).
    tail_valid_len: u64,
}

/// Parse a segment header: `(header_len, term)` for a valid v2 or legacy
/// v1 header, `None` for a torn or foreign prefix.
fn segment_header(bytes: &[u8]) -> Option<(usize, u64)> {
    if bytes.len() >= SEGMENT_HEADER_LEN && &bytes[..8] == SEGMENT_MAGIC {
        let term = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes checked"));
        return Some((SEGMENT_HEADER_LEN, term));
    }
    if bytes.len() >= 8 && &bytes[..8] == SEGMENT_MAGIC_V1 {
        return Some((8, 0));
    }
    None
}

fn list_segments(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut segs = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(segs),
        Err(e) => return Err(walio("read_dir", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| walio("read_dir entry", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("wal-") && name.ends_with(".log") {
            segs.push(entry.path());
        }
    }
    // Segment names embed a zero-padded first-LSN, so name order is LSN
    // order.
    segs.sort();
    Ok(segs)
}

/// Scan a WAL directory: collect every valid frame in LSN order, stop at
/// the first invalid frame anywhere (CRC mismatch, malformed payload,
/// non-monotonic LSN, torn write), and account for what follows it.
/// Corruption is never an error — only real I/O failures are.
fn scan_dir(dir: &Path) -> Result<WalScan> {
    let mut scan = WalScan {
        segments: list_segments(dir)?,
        ..WalScan::default()
    };
    let mut prev_lsn: Lsn = 0;
    let mut broken = false;
    for (i, seg) in scan.segments.iter().enumerate() {
        let bytes = fs::read(seg).map_err(|e| walio("read segment", e))?;
        if broken {
            // Everything after the first break is dead; count it.
            let body = match segment_header(&bytes) {
                Some((header_len, _)) => &bytes[header_len..],
                None => &bytes[..],
            };
            let (frames, torn) = structural_count(body);
            scan.dropped_records += frames;
            scan.torn_bytes += torn;
            continue;
        }
        let Some((header_len, term)) = segment_header(&bytes) else {
            // A segment creation torn mid-header; the file carries no
            // usable frames. The *torn* segment is the repair tail
            // (valid length 0, so it gets recreated in place) — earlier
            // segments hold fsynced, acknowledged records and must
            // survive intact.
            broken = true;
            scan.torn_bytes += bytes.len();
            scan.keep = i + 1;
            scan.tail_valid_len = 0;
            continue;
        };
        scan.term = scan.term.max(term);
        let mut pos = header_len;
        loop {
            if pos == bytes.len() {
                break;
            }
            match parse_frame(&bytes[pos..]) {
                Some((consumed, lsn, rec)) if lsn > prev_lsn => {
                    prev_lsn = lsn;
                    scan.frames.push((lsn, rec));
                    pos += consumed;
                }
                _ => {
                    broken = true;
                    let (frames, torn) = structural_count(&bytes[pos..]);
                    scan.dropped_records += frames;
                    scan.torn_bytes += torn;
                    break;
                }
            }
        }
        if !broken {
            scan.keep = i + 1;
            scan.tail_valid_len = bytes.len() as u64;
        } else {
            scan.keep = i + 1;
            scan.tail_valid_len = pos as u64;
        }
    }
    Ok(scan)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends CRC-framed records to segment files with rotation, a
/// configurable fsync policy, and checkpoint-driven truncation. One
/// writer owns one directory of segments.
#[derive(Debug)]
pub(crate) struct WalWriter {
    dir: PathBuf,
    file: File,
    segment_len: u64,
    segment_count: usize,
    last_lsn: Lsn,
    /// Highest LSN covered by an fsync (everything on disk at open time
    /// already survived a scan, so repair re-baselines this to `last_lsn`).
    synced_lsn: Lsn,
    unsynced: u64,
    /// Data fsyncs issued over this writer's lifetime — the denominator
    /// of group-commit amortization (read by the bench crate through
    /// [`Self::fsync_count`]).
    fsync_count: u64,
    #[cfg(any(test, feature = "fault-injection"))]
    appends: u64,
    #[cfg(any(test, feature = "fault-injection"))]
    crashed: bool,
    /// Replication term stamped into every segment this writer creates
    /// (see `crate::replicate`; 0 on a never-replicated set).
    term: u64,
    opts: WalOptions,
}

fn segment_path(dir: &Path, first_lsn: Lsn) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.log"))
}

fn sync_dir(dir: &Path) {
    // Durable directory entries need a dir fsync on most filesystems;
    // best-effort, matching `StdIo::rename`.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

fn create_segment(dir: &Path, first_lsn: Lsn, term: u64) -> Result<File> {
    let path = segment_path(dir, first_lsn);
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)
        .map_err(|e| walio("create segment", e))?;
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[..8].copy_from_slice(SEGMENT_MAGIC);
    header[8..].copy_from_slice(&term.to_le_bytes());
    f.write_all(&header)
        .and_then(|()| f.sync_data())
        .map_err(|e| walio("write segment header", e))?;
    sync_dir(dir);
    Ok(f)
}

impl WalWriter {
    /// Open (creating if absent) a WAL directory for appending: scan it,
    /// physically truncate the torn tail, delete segments past the first
    /// break, and position after the last valid record. Returns the scan
    /// so the caller can replay it.
    pub(crate) fn open_repair(dir: &Path, opts: WalOptions) -> Result<(Self, WalScan)> {
        fs::create_dir_all(dir).map_err(|e| walio("create wal dir", e))?;
        let scan = scan_dir(dir)?;
        for seg in &scan.segments[scan.keep..] {
            fs::remove_file(seg).map_err(|e| walio("remove dead segment", e))?;
        }
        let last_lsn = scan.frames.last().map(|&(lsn, _)| lsn).unwrap_or(0);
        let term = scan.term;
        let (file, segment_len, segment_count) = if scan.keep > 0 {
            let tail = &scan.segments[scan.keep - 1];
            if scan.tail_valid_len < 8 {
                // The tail never got a full header; recreate it in place.
                fs::remove_file(tail).map_err(|e| walio("remove torn segment", e))?;
                let f = create_segment(dir, last_lsn + 1, term)?;
                (f, SEGMENT_HEADER_LEN as u64, scan.keep)
            } else {
                let f = OpenOptions::new()
                    .write(true)
                    .append(false)
                    .open(tail)
                    .map_err(|e| walio("open tail segment", e))?;
                f.set_len(scan.tail_valid_len)
                    .and_then(|()| f.sync_data())
                    .map_err(|e| walio("truncate torn tail", e))?;
                // Re-open in append mode so writes land at the truncated end.
                let f = OpenOptions::new()
                    .append(true)
                    .open(tail)
                    .map_err(|e| walio("reopen tail segment", e))?;
                (f, scan.tail_valid_len, scan.keep)
            }
        } else {
            let f = create_segment(dir, last_lsn + 1, term)?;
            (f, SEGMENT_HEADER_LEN as u64, 1)
        };
        sync_dir(dir);
        let writer = Self {
            dir: dir.to_path_buf(),
            file,
            segment_len,
            segment_count,
            last_lsn,
            synced_lsn: last_lsn,
            unsynced: 0,
            fsync_count: 0,
            #[cfg(any(test, feature = "fault-injection"))]
            appends: 0,
            #[cfg(any(test, feature = "fault-injection"))]
            crashed: false,
            term,
            opts,
        };
        Ok((writer, scan))
    }

    /// The replication term stamped into segments this writer creates.
    pub(crate) fn term(&self) -> u64 {
        self.term
    }

    /// Raise the replication term (used by failover promotion). Future
    /// segments — the next rotation or truncation — carry the new term;
    /// the authoritative copy lives in the `CHECKPOINT` manifest.
    pub(crate) fn set_term(&mut self, term: u64) {
        self.term = self.term.max(term);
    }

    /// The options this writer was opened with.
    pub(crate) fn options(&self) -> &WalOptions {
        &self.opts
    }

    /// Append one record at `lsn` (must exceed every prior LSN), rotating
    /// and fsyncing per policy.
    fn append(&mut self, lsn: Lsn, rec: &WalRecord) -> Result<()> {
        self.append_frame(lsn, rec)?;
        self.policy_sync()
    }

    /// Append one record without consulting the fsync policy: the building
    /// block of group commit, where many appends share one explicit
    /// [`Self::sync`]. The record is written (and rotation handled) but
    /// durability is deferred to the caller.
    pub(crate) fn append_frame(&mut self, lsn: Lsn, rec: &WalRecord) -> Result<()> {
        if lsn <= self.last_lsn {
            return Err(walerr(format!(
                "non-monotonic lsn {lsn} (last {})",
                self.last_lsn
            )));
        }
        if self.segment_len >= self.opts.segment_max_bytes {
            self.sync()?;
            self.file = create_segment(&self.dir, lsn, self.term)?;
            self.segment_len = SEGMENT_HEADER_LEN as u64;
            self.segment_count += 1;
        }
        let frame = encode_frame(lsn, rec);
        self.write_frame(&frame)?;
        self.segment_len += frame.len() as u64;
        self.last_lsn = lsn;
        self.unsynced += 1;
        Ok(())
    }

    /// Apply the configured fsync policy to whatever is unsynced.
    pub(crate) fn policy_sync(&mut self) -> Result<()> {
        match self.opts.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= u64::from(n.max(1)) {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnCheckpoint => {}
        }
        Ok(())
    }

    #[cfg(any(test, feature = "fault-injection"))]
    fn write_frame(&mut self, frame: &[u8]) -> Result<()> {
        if self.crashed {
            return Err(walerr("writer crashed by injected fault"));
        }
        let this_append = self.appends;
        self.appends += 1;
        match crate::fault::wal_fault_action(this_append) {
            Some(crate::fault::WalFaultKind::FailAppend) => {
                return Err(walerr("injected: transient append failure"));
            }
            Some(crate::fault::WalFaultKind::TornAppend { keep }) => {
                let keep = keep.min(frame.len());
                self.file
                    .write_all(&frame[..keep])
                    .and_then(|()| self.file.sync_data())
                    .map_err(|e| walio("append (torn)", e))?;
                self.crashed = true;
                return Err(walerr("injected: crash mid-frame"));
            }
            Some(crate::fault::WalFaultKind::CrashAfterAppend) => {
                self.file.write_all(frame).map_err(|e| walio("append", e))?;
                self.crashed = true;
                return Ok(());
            }
            None => {}
        }
        self.file.write_all(frame).map_err(|e| walio("append", e))
    }

    #[cfg(not(any(test, feature = "fault-injection")))]
    fn write_frame(&mut self, frame: &[u8]) -> Result<()> {
        self.file.write_all(frame).map_err(|e| walio("append", e))
    }

    /// Force everything appended so far to stable storage.
    pub(crate) fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(|e| walio("fsync", e))?;
        self.unsynced = 0;
        self.synced_lsn = self.last_lsn;
        self.fsync_count += 1;
        Ok(())
    }

    /// Data fsyncs issued over this writer's lifetime.
    pub(crate) fn fsync_count(&self) -> u64 {
        self.fsync_count
    }

    /// Checkpoint truncation: every record is covered by a durable
    /// snapshot, so drop all segments and start fresh at `next_lsn`.
    pub(crate) fn truncate_all(&mut self, next_lsn: Lsn) -> Result<()> {
        for seg in list_segments(&self.dir)? {
            fs::remove_file(&seg).map_err(|e| walio("truncate segment", e))?;
        }
        self.file = create_segment(&self.dir, next_lsn, self.term)?;
        self.segment_len = SEGMENT_HEADER_LEN as u64;
        self.segment_count = 1;
        self.unsynced = 0;
        self.last_lsn = next_lsn.saturating_sub(1);
        self.synced_lsn = self.last_lsn;
        Ok(())
    }

    pub(crate) fn health(&self) -> WalHealth {
        WalHealth {
            segments: self.segment_count,
            unsynced_records: self.unsynced,
            last_lsn: self.last_lsn,
            appended_lsn: self.last_lsn,
            acked_lsn: self.synced_lsn,
        }
    }
}

// ---------------------------------------------------------------------------
// Segment tailing (replication read path)
// ---------------------------------------------------------------------------

/// First LSN encoded in a segment file name, if it parses.
fn segment_first_lsn(path: &Path) -> Option<Lsn> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    digits.parse().ok()
}

/// One frame lifted off a live segment by a [`WalTailer`]: the raw
/// on-disk encoding (CRC included, so corruption introduced in transit is
/// still detectable downstream) plus its LSN and the term of the segment
/// it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TailedFrame {
    pub(crate) lsn: Lsn,
    pub(crate) term: u64,
    pub(crate) bytes: Vec<u8>,
}

/// An incremental reader over a live WAL directory: remembers which
/// segment and byte offset it has shipped up to, follows rotations, and
/// stops cleanly at an incomplete tail frame (an append may be mid-flight;
/// the next poll retries it). The replication shipper drives one tailer
/// per shard WAL.
#[derive(Debug)]
pub(crate) struct WalTailer {
    dir: PathBuf,
    /// First LSN (from the file name) of the segment the cursor is in.
    seg_first: Option<Lsn>,
    /// Byte offset of the first unshipped frame within that segment.
    offset: u64,
    /// Next LSN the tailer expects to emit (frames below it are skipped —
    /// they are already covered by the snapshot or a prior poll).
    next_lsn: Lsn,
}

impl WalTailer {
    /// Tail `dir`, emitting frames with LSN ≥ `next_lsn`.
    pub(crate) fn new(dir: impl Into<PathBuf>, next_lsn: Lsn) -> Self {
        Self {
            dir: dir.into(),
            seg_first: None,
            offset: 0,
            next_lsn,
        }
    }

    /// Drop the cursor and restart from `next_lsn` — required after a
    /// checkpoint truncated the directory underneath the tailer.
    pub(crate) fn reset(&mut self, next_lsn: Lsn) {
        self.seg_first = None;
        self.offset = 0;
        self.next_lsn = next_lsn;
    }

    /// Collect every complete frame appended since the last poll, in LSN
    /// order. An unparseable tail (a frame whose bytes or CRC are not yet
    /// complete) ends the poll without error: on a live log it is an
    /// append in flight and the next poll picks it up.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on real I/O failures, or if the directory
    /// no longer covers `next_lsn` (it was truncated without a
    /// [`Self::reset`] — shipped history is gone and the follower needs a
    /// fresh snapshot).
    pub(crate) fn poll(&mut self) -> Result<Vec<TailedFrame>> {
        let mut out = Vec::new();
        loop {
            let segments = list_segments(&self.dir)?;
            let firsts: Vec<Lsn> = segments
                .iter()
                .filter_map(|p| segment_first_lsn(p))
                .collect();
            if firsts.is_empty() {
                return Ok(out);
            }
            // The segment that may contain `next_lsn`: the last one whose
            // name does not start past it.
            let Some(idx) = firsts.iter().rposition(|&f| f <= self.next_lsn) else {
                return Err(walerr(format!(
                    "tail gap: next lsn {} precedes the oldest segment (first lsn {}); \
                     the log was truncated under the tailer",
                    self.next_lsn, firsts[0]
                )));
            };
            if self.seg_first != Some(firsts[idx]) {
                self.seg_first = Some(firsts[idx]);
                self.offset = 0;
            }
            let bytes = fs::read(&segments[idx]).map_err(|e| walio("read tailed segment", e))?;
            let Some((header_len, term)) = segment_header(&bytes) else {
                // Header still being written; retry next poll.
                return Ok(out);
            };
            if self.offset < header_len as u64 {
                self.offset = header_len as u64;
            }
            if (bytes.len() as u64) < self.offset {
                return Err(walerr(
                    "tailed segment shrank under the cursor (truncated without reset)",
                ));
            }
            let mut pos = self.offset as usize;
            while let Some((consumed, lsn, _rec)) = parse_frame(&bytes[pos..]) {
                if lsn >= self.next_lsn {
                    out.push(TailedFrame {
                        lsn,
                        term,
                        bytes: bytes[pos..pos + consumed].to_vec(),
                    });
                    self.next_lsn = lsn + 1;
                }
                pos += consumed;
            }
            self.offset = pos as u64;
            // If the writer rotated past this segment and we have consumed
            // it fully, move the cursor into the next segment and keep
            // going; otherwise we are at the live tail.
            if idx + 1 < firsts.len() && pos == bytes.len() {
                self.seg_first = Some(firsts[idx + 1]);
                self.offset = 0;
                continue;
            }
            return Ok(out);
        }
    }
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

/// Counters describing how well group commit is amortizing fsyncs,
/// exposed by the concurrent durable wrappers and stamped into
/// [`crate::StatsSnapshot`] via [`crate::StatsAggregator::record_group_commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupCommitStats {
    /// fsyncs issued by commit-group leaders.
    pub fsyncs: u64,
    /// Records made durable through those fsyncs.
    pub committed_records: u64,
    /// Largest single commit group (records acknowledged by one fsync).
    pub max_group: u64,
}

impl GroupCommitStats {
    /// Mean records per fsync — the amortization factor group commit
    /// achieved (1.0 means it degenerated to fsync-per-record).
    pub fn mean_group(&self) -> f64 {
        if self.fsyncs == 0 {
            return 0.0;
        }
        self.committed_records as f64 / self.fsyncs as f64
    }
}

/// A shared replication-confirmation frontier that gates group-commit
/// acknowledgements on quorum replication.
///
/// The primary publishes the highest LSN its n-th most caught-up replica
/// has acknowledged ([`QuorumGate::publish`], monotone); the commit queue
/// consults the gate in its `FsyncPolicy::Always` acknowledgement path
/// **after** local durability, so a quorum write's ack is released only
/// once the covering LSN is both fsynced locally and confirmed by the
/// required replicas. A waiter that outlives the gate's timeout gets the
/// typed [`PlanarError::QuorumTimeout`] — the write is applied and locally
/// durable, only the quorum guarantee is unmet.
///
/// Clones share state: install the same gate in every shard queue and in
/// the `Primary` that publishes confirmations.
#[derive(Debug, Clone)]
pub struct QuorumGate {
    inner: Arc<GateInner>,
}

#[derive(Debug)]
struct GateInner {
    /// Highest LSN confirmed by the required number of replicas.
    frontier: Mutex<Lsn>,
    advanced: Condvar,
    required: usize,
    timeout: Duration,
    timeouts: AtomicU64,
}

impl QuorumGate {
    /// A gate requiring `required` replica confirmations, releasing
    /// waiters with [`PlanarError::QuorumTimeout`] after `timeout_ms` of
    /// no sufficient progress.
    pub fn new(required: usize, timeout_ms: u64) -> Self {
        Self {
            inner: Arc::new(GateInner {
                frontier: Mutex::new(0),
                advanced: Condvar::new(),
                required: required.max(1),
                timeout: Duration::from_millis(timeout_ms.max(1)),
                timeouts: AtomicU64::new(0),
            }),
        }
    }

    /// Replica confirmations required per LSN.
    pub fn required(&self) -> usize {
        self.inner.required
    }

    /// Advance the confirmed frontier (monotone; stale publishes are
    /// ignored) and wake every gated waiter.
    pub fn publish(&self, frontier: Lsn) {
        let mut cur = self
            .inner
            .frontier
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if frontier > *cur {
            *cur = frontier;
            self.inner.advanced.notify_all();
        }
    }

    /// Highest quorum-confirmed LSN published so far.
    pub fn frontier(&self) -> Lsn {
        *self
            .inner
            .frontier
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// True once the quorum has confirmed `lsn`.
    pub fn confirmed(&self, lsn: Lsn) -> bool {
        self.frontier() >= lsn
    }

    /// Quorum waits that expired with [`PlanarError::QuorumTimeout`].
    pub fn timeouts(&self) -> u64 {
        self.inner.timeouts.load(Ordering::Relaxed)
    }

    /// Block until the quorum confirms `lsn`, or fail typed after the
    /// gate's timeout.
    pub fn wait_confirmed(&self, lsn: Lsn) -> Result<()> {
        let deadline = Instant::now() + self.inner.timeout;
        let mut cur = self
            .inner
            .frontier
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        loop {
            if *cur >= lsn {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                self.inner.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(PlanarError::QuorumTimeout {
                    lsn,
                    required: self.inner.required,
                    frontier: *cur,
                });
            }
            let (guard, _timed_out) = self
                .inner
                .advanced
                .wait_timeout(cur, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            cur = guard;
        }
    }
}

#[derive(Debug)]
struct GcState {
    /// Taken (`None`) by the drain leader while it does file I/O so
    /// enqueuers never block on an fsync.
    writer: Option<WalWriter>,
    /// Enqueued-but-unwritten records in strictly ascending LSN order.
    pending: Vec<(Lsn, WalRecord)>,
    /// Last enqueued LSN.
    appended: Lsn,
    /// Last LSN covered by an fsync: everything at or below it is durable.
    synced: Lsn,
    /// A drain leader is currently writing/fsyncing.
    draining: bool,
    /// A previous drain hit an I/O error or injected crash; the queue
    /// refuses further work (mirroring `WalWriter`'s crashed state).
    failed: Option<String>,
    stats: GroupCommitStats,
}

/// A commit queue implementing **group commit**: concurrent appenders
/// enqueue records under a short lock, and whichever waiter finds no
/// drain in progress becomes the *leader* — it takes the [`WalWriter`]
/// out of the state, writes every pending frame, issues **one fsync**,
/// and wakes all waiters whose LSN the fsync covered. While the leader
/// is inside the fsync, new appenders keep enqueuing; the next drain
/// commits them all at once. Under W concurrent writers this collapses
/// `FsyncPolicy::Always` from one fsync per record toward one fsync per
/// W records without weakening the contract: an acknowledged mutation
/// (a `commit` return) is always durable.
#[derive(Debug)]
pub(crate) struct GroupCommitQueue {
    state: Mutex<GcState>,
    durable: Condvar,
    /// Optional replication gate: when installed, the `Always` ack path
    /// additionally waits for quorum confirmation of the LSN after local
    /// durability (see [`QuorumGate`]).
    gate: Mutex<Option<QuorumGate>>,
}

impl GroupCommitQueue {
    pub(crate) fn new(writer: WalWriter) -> Self {
        let baseline = writer.last_lsn;
        let synced = writer.synced_lsn;
        Self {
            state: Mutex::new(GcState {
                writer: Some(writer),
                pending: Vec::new(),
                appended: baseline,
                synced,
                draining: false,
                failed: None,
                stats: GroupCommitStats::default(),
            }),
            durable: Condvar::new(),
            gate: Mutex::new(None),
        }
    }

    /// Install (or with `None`, remove) the quorum gate consulted by
    /// [`Self::wait_durable`]. In-flight waiters already past the local
    /// durability check keep the gate they started with.
    pub(crate) fn set_gate(&self, gate: Option<QuorumGate>) {
        *self.gate.lock().unwrap_or_else(|e| e.into_inner()) = gate;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GcState> {
        // A leader panicking mid-drain poisons the mutex; the queue state
        // itself is still consistent (`failed` handling below), so keep
        // serving rather than amplifying the panic.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue one record. `lsn` must be assigned under the caller's
    /// serialization (the concurrent wrappers hold their writer mutex), so
    /// `pending` stays LSN-ordered.
    pub(crate) fn enqueue(&self, lsn: Lsn, rec: WalRecord) -> Result<()> {
        let mut st = self.lock();
        if let Some(msg) = &st.failed {
            return Err(walerr(format!("commit queue failed earlier: {msg}")));
        }
        if lsn <= st.appended {
            return Err(walerr(format!(
                "non-monotonic lsn {lsn} enqueued (last {})",
                st.appended
            )));
        }
        st.appended = lsn;
        st.pending.push((lsn, rec));
        Ok(())
    }

    /// Block until every record at or below `lsn` is durable, becoming the
    /// drain leader if nobody else is. This is the `FsyncPolicy::Always`
    /// acknowledgement path.
    pub(crate) fn wait_durable(&self, lsn: Lsn) -> Result<()> {
        let mut st = self.lock();
        loop {
            if st.synced >= lsn {
                break;
            }
            if let Some(msg) = &st.failed {
                return Err(walerr(format!("record at lsn {lsn} was lost: {msg}")));
            }
            if st.draining {
                st = self.durable.wait(st).unwrap_or_else(|e| e.into_inner());
            } else {
                st = self.drain(st, true);
            }
        }
        drop(st);
        // Locally durable. A quorum gate (if installed) holds the ack
        // until enough replicas confirm the LSN — waited with the state
        // lock released so the queue keeps draining for other writers.
        let gate = self.gate.lock().unwrap_or_else(|e| e.into_inner()).clone();
        match gate {
            Some(gate) => gate.wait_confirmed(lsn),
            None => Ok(()),
        }
    }

    /// Write pending frames without requiring durability: fsync only if
    /// `force` or the writer's own policy says so. Used by the
    /// `EveryN`/`OnCheckpoint` paths to bound the in-memory queue.
    pub(crate) fn flush(&self, force: bool) -> Result<()> {
        let mut st = self.lock();
        while st.draining {
            st = self.durable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(msg) = &st.failed {
            return Err(walerr(format!("commit queue failed earlier: {msg}")));
        }
        st = self.drain(st, force);
        match &st.failed {
            Some(msg) => Err(walerr(format!("commit queue failed: {msg}"))),
            None => Ok(()),
        }
    }

    /// The group-commit lag in records: appended but not yet durable.
    pub(crate) fn ack_lag(&self) -> u64 {
        let st = self.lock();
        st.appended.saturating_sub(st.synced)
    }

    pub(crate) fn stats(&self) -> GroupCommitStats {
        self.lock().stats
    }

    /// Replication term stamped into segments created by this queue's
    /// writer (waits out an in-flight drain for a consistent read).
    pub(crate) fn term(&self) -> u64 {
        let mut st = self.lock();
        while st.writer.is_none() {
            st = self.durable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.writer.as_ref().expect("writer present").term()
    }

    /// Drain the pending queue as leader: take the writer, append every
    /// pending frame, fsync (if `durable` is requested or policy demands),
    /// publish the new synced watermark, and wake all waiters. Returns the
    /// re-acquired state guard so `wait_durable` can re-check its LSN.
    fn drain<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, GcState>,
        durable: bool,
    ) -> std::sync::MutexGuard<'a, GcState> {
        st.draining = true;
        let batch: Vec<(Lsn, WalRecord)> = std::mem::take(&mut st.pending);
        let mut writer = st.writer.take().expect("writer parked while not draining");
        drop(st);

        // File I/O happens with the state lock *released* so concurrent
        // mutators keep enqueuing into the next commit group.
        let mut error: Option<String> = None;
        for (lsn, rec) in &batch {
            if let Err(e) = writer.append_frame(*lsn, rec) {
                error = Some(e.to_string());
                break;
            }
        }
        let sync_result = if durable || error.is_some() {
            // On a partial append failure still try to make the written
            // prefix durable so prior waiters can be acknowledged.
            writer.sync()
        } else {
            writer.policy_sync()
        };
        let synced_to = writer.synced_lsn;
        if let Err(e) = sync_result {
            error.get_or_insert_with(|| e.to_string());
        }

        let mut st = self.lock();
        st.writer = Some(writer);
        st.draining = false;
        if synced_to > st.synced {
            let newly = batch.iter().filter(|(lsn, _)| *lsn <= synced_to).count() as u64;
            st.synced = synced_to;
            if newly > 0 {
                st.stats.fsyncs += 1;
                st.stats.committed_records += newly;
                st.stats.max_group = st.stats.max_group.max(newly);
            }
        }
        if let Some(msg) = error {
            // Park the batch records the fsync did not cover: they may be
            // partially on disk (a torn append) or not at all, but the
            // staged in-memory state has already applied them, so
            // [`Self::reopen`] can repair the tail and re-append them.
            let mut parked: Vec<(Lsn, WalRecord)> = batch
                .into_iter()
                .filter(|(lsn, _)| *lsn > synced_to)
                .collect();
            parked.append(&mut st.pending);
            st.pending = parked;
            st.failed = Some(msg);
        }
        // Records enqueued while we were draining stay in `pending` for
        // the next leader.
        self.durable.notify_all();
        st
    }

    /// Explicit recovery from the fail-stop state: re-scan and repair the
    /// WAL directory (truncating any torn tail the failed append left),
    /// re-append every parked record the repaired log is missing, fsync,
    /// and rebase the watermarks. Acknowledgements issued **before** the
    /// failure keep their durability promise — the repair never truncates
    /// below the synced watermark, because every acknowledged record was
    /// covered by an fsync that preceded the failure. On a healthy queue
    /// this is a no-op returning current health.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] if the directory repair or the re-append
    /// fails; the queue then stays fail-stopped and `reopen` may be
    /// retried.
    pub(crate) fn reopen(&self) -> Result<WalHealth> {
        let mut st = self.lock();
        while st.draining || st.writer.is_none() {
            st = self.durable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.failed.is_none() {
            drop(st);
            return Ok(self.health());
        }
        let (dir, opts) = {
            let w = st
                .writer
                .as_ref()
                .expect("writer parked while not draining");
            (w.dir.clone(), w.opts)
        };
        let parked: Vec<(Lsn, WalRecord)> = std::mem::take(&mut st.pending);
        // Hold `draining` so no other thread touches the writer slot while
        // the repair runs without the lock. The old (failed) writer stays
        // in place so `health()`/`fsync_count()` never hang if we fail.
        st.draining = true;
        drop(st);

        let outcome = (|| {
            let (mut writer, _scan) = WalWriter::open_repair(&dir, opts)?;
            for (lsn, rec) in &parked {
                if *lsn <= writer.last_lsn {
                    // The record survived on disk intact (e.g. the crash
                    // hit after its append); nothing to redo.
                    continue;
                }
                writer.append_frame(*lsn, rec)?;
            }
            writer.sync()?;
            Ok(writer)
        })();

        let mut st = self.lock();
        st.draining = false;
        let out = match outcome {
            Ok(writer) => {
                st.appended = st.appended.max(writer.last_lsn);
                st.synced = writer.synced_lsn;
                st.writer = Some(writer);
                st.failed = None;
                Ok(())
            }
            Err(e) => {
                // Still fail-stopped; put the parked records back so a
                // retry (or a post-mortem) still sees them.
                st.pending = parked;
                st.failed = Some(format!("reopen failed: {e}"));
                Err(e)
            }
        };
        drop(st);
        self.durable.notify_all();
        out.map(|()| self.health())
    }

    /// Run `f` with exclusive access to the underlying writer, after
    /// draining and fsyncing everything pending. Checkpoints use this for
    /// truncation.
    pub(crate) fn with_writer<T>(&self, f: impl FnOnce(&mut WalWriter) -> Result<T>) -> Result<T> {
        self.flush(true)?;
        let mut st = self.lock();
        while st.draining {
            st = self.durable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        debug_assert!(st.pending.is_empty(), "flush(true) drained the queue");
        let mut writer = st.writer.take().expect("writer parked while not draining");
        st.draining = true;
        drop(st);
        let out = f(&mut writer);
        let mut st = self.lock();
        let (last, synced) = (writer.last_lsn, writer.synced_lsn);
        st.writer = Some(writer);
        st.draining = false;
        if out.is_ok() {
            // A checkpoint truncation rebases both watermarks (possibly
            // downward — the covered records are now owned by a snapshot).
            st.appended = last;
            st.synced = synced;
        }
        drop(st);
        self.durable.notify_all();
        out
    }

    /// Current WAL health including group-commit watermarks.
    pub(crate) fn health(&self) -> WalHealth {
        let mut st = self.lock();
        while st.writer.is_none() {
            st = self.durable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let mut h = st.writer.as_ref().expect("writer present").health();
        h.appended_lsn = st.appended;
        h.last_lsn = st.appended;
        h.acked_lsn = st.synced;
        h.unsynced_records = st.appended.saturating_sub(st.synced);
        h
    }

    /// Data fsyncs issued by the underlying writer (leader drains plus
    /// rotation/checkpoint syncs).
    pub(crate) fn fsync_count(&self) -> u64 {
        let mut st = self.lock();
        while st.writer.is_none() {
            st = self.durable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.writer.as_ref().expect("writer present").fsync_count()
    }
}

impl Drop for GroupCommitQueue {
    /// Best-effort drain on clean shutdown: write any still-queued frames
    /// (fsyncing only if the writer's policy says so), matching the
    /// single-writer wrappers where every append reaches the file
    /// immediately. A crash before this runs is exactly the bounded-loss
    /// window the fsync policy already permits for unacknowledged work.
    fn drop(&mut self) {
        let _ = self.flush(false);
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Manifest {
    pub(crate) generation: u64,
    pub(crate) watermark: Lsn,
    /// Replication term (fencing token); 0 on a never-replicated set and
    /// when reading a legacy `PLNRCKP1` manifest.
    pub(crate) term: u64,
}

pub(crate) fn write_manifest(dir: &Path, m: Manifest) -> Result<()> {
    let mut buf = BytesMut::new();
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u64_le(m.generation);
    buf.put_u64_le(m.watermark);
    buf.put_u64_le(m.term);
    let mut out = buf.freeze().to_vec();
    crate::frame::seal_vec(&mut out);
    crate::persist::atomic_save(
        &out,
        &dir.join(MANIFEST_FILE),
        &mut crate::fault::StdIo,
        &SaveOptions::default(),
    )
}

pub(crate) fn read_manifest(dir: &Path) -> Result<Manifest> {
    let path = dir.join(MANIFEST_FILE);
    let bytes = fs::read(&path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            walerr(format!(
                "{} is not a durable index directory (no CHECKPOINT manifest)",
                dir.display()
            ))
        } else {
            walio("read manifest", e)
        }
    })?;
    let (body_len, v2) = if bytes.len() == 40 && &bytes[..8] == MANIFEST_MAGIC {
        (32usize, true)
    } else if bytes.len() == 32 && &bytes[..8] == MANIFEST_MAGIC_V1 {
        (24usize, false)
    } else {
        return Err(walerr("corrupt CHECKPOINT manifest"));
    };
    if crate::frame::open_sealed(&bytes[..body_len + crate::frame::CRC_LEN]).is_none() {
        return Err(walerr("CHECKPOINT manifest failed its CRC"));
    }
    let mut buf = Bytes::copy_from_slice(&bytes[8..body_len]);
    Ok(Manifest {
        generation: buf.get_u64_le(),
        watermark: buf.get_u64_le(),
        term: if v2 { buf.get_u64_le() } else { 0 },
    })
}

pub(crate) fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:020}.plnr"))
}

/// Best-effort removal of snapshot generations other than `current` (a
/// crash between manifest publish and cleanup leaves one behind).
pub(crate) fn sweep_snapshots(dir: &Path, current: u64) {
    let keep = snapshot_path(dir, current);
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("snapshot-") && name.ends_with(".plnr") && entry.path() != keep {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

fn ensure_fresh_dir(dir: &Path) -> Result<()> {
    fs::create_dir_all(dir).map_err(|e| walio("create durable dir", e))?;
    if dir.join(MANIFEST_FILE).exists() {
        return Err(walerr(format!(
            "{} already contains a durable index (open it with open_durable)",
            dir.display()
        )));
    }
    // A wal/ subtree without a manifest is a half-deleted durable set.
    // Starting a fresh log at LSN 1 beneath stale high-LSN segments would
    // make every subsequent append fail as non-monotonic, so refuse.
    let wal = dir.join(WAL_SUBDIR);
    match fs::read_dir(&wal) {
        Ok(mut entries) => {
            if entries.next().is_some() {
                return Err(walerr(format!(
                    "{} holds WAL remnants but no CHECKPOINT manifest; \
                     remove them or pick a fresh directory",
                    wal.display()
                )));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(walio("read wal dir", e)),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Durable planar set
// ---------------------------------------------------------------------------

/// A [`PlanarIndexSet`] whose mutations are write-ahead logged. Created by
/// [`DurablePlanarIndexSet::create`] or
/// [`PlanarIndexSet::open_durable`]; queries go through [`Self::set`] (or
/// `Deref`), mutations through the logging wrappers here.
#[derive(Debug)]
pub struct DurablePlanarIndexSet<S: KeyStore = VecStore> {
    set: PlanarIndexSet<S>,
    wal: WalWriter,
    dir: PathBuf,
    generation: u64,
    next_lsn: Lsn,
    save_opts: SaveOptions,
}

impl<S: KeyStore> PlanarIndexSet<S> {
    /// Open a durable directory: load the newest valid snapshot
    /// ([`Self::load_or_recover`] semantics per index section), repair the
    /// WAL's torn tail, and replay every record above the manifest's LSN
    /// watermark. The report carries both snapshot *and* replay
    /// provenance. Torn tails are truncated and reported — never an error.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] if the directory was never initialized
    /// ([`DurablePlanarIndexSet::create`]), on real I/O failures, or if
    /// the snapshot core itself is unrecoverable.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        opts: WalOptions,
    ) -> Result<(DurablePlanarIndexSet<S>, RecoveryReport)> {
        let dir = dir.as_ref();
        let m = read_manifest(dir)?;
        let (mut set, mut report) = Self::load_or_recover(snapshot_path(dir, m.generation))?;
        let (mut wal, scan) = WalWriter::open_repair(&dir.join(WAL_SUBDIR), opts)?;
        // The manifest carries the authoritative replication term; adopt
        // it if it is ahead of anything the segments were stamped with.
        wal.set_term(m.term);
        let mut watermark = m.watermark;
        let mut replayed = 0usize;
        for (lsn, rec) in &scan.frames {
            if *lsn <= m.watermark {
                continue;
            }
            replay_planar(&mut set, *lsn, rec)?;
            watermark = *lsn;
            replayed += 1;
        }
        report.wal_replayed = replayed;
        report.wal_dropped = scan.dropped_records;
        report.wal_torn_bytes = scan.torn_bytes;
        report.wal_watermark = watermark;
        let next_lsn = wal.last_lsn.max(watermark) + 1;
        sweep_snapshots(dir, m.generation);
        Ok((
            DurablePlanarIndexSet {
                set,
                wal,
                dir: dir.to_path_buf(),
                generation: m.generation,
                next_lsn,
                save_opts: SaveOptions::default(),
            },
            report,
        ))
    }
}

fn replay_planar<S: KeyStore>(
    set: &mut PlanarIndexSet<S>,
    lsn: Lsn,
    rec: &WalRecord,
) -> Result<()> {
    match rec {
        WalRecord::Insert { id, row } => {
            let got = set.insert_point(row)?;
            if got != *id {
                return Err(walerr(format!(
                    "replay diverged at lsn {lsn}: insert assigned id {got}, log says {id}"
                )));
            }
            Ok(())
        }
        WalRecord::Update { id, row } => set.update_point(*id, row),
        WalRecord::Delete { id } => set.delete_point(*id),
        WalRecord::Compact { threshold: None } => {
            set.compact();
            Ok(())
        }
        WalRecord::Compact { threshold: Some(t) } => {
            set.compact_if(*t);
            Ok(())
        }
        WalRecord::Checkpoint { .. } => Ok(()),
    }
}

/// Pre-validate a mutation row so nothing unreplayable is ever logged:
/// the write-ahead contract is log-then-apply, so the apply must be
/// infallible once the record is on disk.
pub(crate) fn validate_row(dim: usize, row: &[f64]) -> Result<()> {
    if row.len() != dim {
        return Err(PlanarError::DimensionMismatch {
            expected: dim,
            found: row.len(),
        });
    }
    if row.iter().any(|v| !v.is_finite()) {
        return Err(PlanarError::NotFinite);
    }
    Ok(())
}

impl<S: KeyStore> DurablePlanarIndexSet<S> {
    /// Initialize `dir` as a durable home for `set`: write snapshot
    /// generation 1, publish the manifest at watermark 0, and open an
    /// empty WAL.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O failure or if `dir` already holds a
    /// durable index.
    pub fn create(dir: impl AsRef<Path>, set: PlanarIndexSet<S>, opts: WalOptions) -> Result<Self> {
        let dir = dir.as_ref();
        ensure_fresh_dir(dir)?;
        set.save_to(snapshot_path(dir, 1))?;
        write_manifest(
            dir,
            Manifest {
                generation: 1,
                watermark: 0,
                term: 0,
            },
        )?;
        let (wal, _) = WalWriter::open_repair(&dir.join(WAL_SUBDIR), opts)?;
        let next_lsn = wal.last_lsn + 1;
        Ok(Self {
            set,
            wal,
            dir: dir.to_path_buf(),
            generation: 1,
            next_lsn,
            save_opts: SaveOptions::default(),
        })
    }

    /// The underlying set, for queries and inspection.
    pub fn set(&self) -> &PlanarIndexSet<S> {
        &self.set
    }

    /// Current WAL health (segments, unsynced records, last LSN).
    pub fn wal_health(&self) -> WalHealth {
        self.wal.health()
    }

    /// Retry/backoff schedule for checkpoint snapshot writes.
    pub fn save_options(mut self, opts: SaveOptions) -> Self {
        self.save_opts = opts;
        self
    }

    fn log_apply<T>(
        &mut self,
        rec: WalRecord,
        apply: impl FnOnce(&mut PlanarIndexSet<S>) -> Result<T>,
    ) -> Result<T> {
        let lsn = self.next_lsn;
        self.wal.append(lsn, &rec)?;
        self.next_lsn = lsn + 1;
        apply(&mut self.set).map_err(|e| {
            // Pre-validation makes the apply infallible; reaching this
            // means the in-memory state and the log have diverged.
            PlanarError::Internal(format!(
                "mutation failed after WAL append at lsn {lsn}: {e}"
            ))
        })
    }

    /// Log-then-insert. See [`PlanarIndexSet::insert_point`].
    ///
    /// # Errors
    ///
    /// Row validation errors (checked *before* logging), or
    /// [`PlanarError::Persist`] if the append failed (nothing applied).
    pub fn insert_point(&mut self, row: &[f64]) -> Result<PointId> {
        validate_row(self.set.dim(), row)?;
        let id = self.set.table().len() as PointId;
        self.log_apply(
            WalRecord::Insert {
                id,
                row: row.to_vec(),
            },
            |set| set.insert_point(row),
        )
    }

    /// Log-then-update. See [`PlanarIndexSet::update_point`].
    ///
    /// # Errors
    ///
    /// Validation/[`PlanarError::PointNotFound`] (checked before
    /// logging), or [`PlanarError::Persist`] on append failure.
    pub fn update_point(&mut self, id: PointId, row: &[f64]) -> Result<()> {
        validate_row(self.set.dim(), row)?;
        if !self.set.is_live(id) {
            return Err(PlanarError::PointNotFound(id));
        }
        self.log_apply(
            WalRecord::Update {
                id,
                row: row.to_vec(),
            },
            |set| set.update_point(id, row),
        )
    }

    /// Log-then-delete. See [`PlanarIndexSet::delete_point`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] (checked before logging), or
    /// [`PlanarError::Persist`] on append failure.
    pub fn delete_point(&mut self, id: PointId) -> Result<()> {
        if !self.set.is_live(id) {
            return Err(PlanarError::PointNotFound(id));
        }
        self.log_apply(WalRecord::Delete { id }, |set| set.delete_point(id))
    }

    /// Log-then-compact (unconditional). Compaction renumbers ids; see
    /// [`PlanarIndexSet::compact`]. Replay re-runs the same deterministic
    /// compaction, so only the marker is logged.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on append failure.
    pub fn compact(&mut self) -> Result<Vec<Option<PointId>>> {
        self.log_apply(WalRecord::Compact { threshold: None }, |set| {
            Ok(set.compact())
        })
    }

    /// Log-then-compact when the tombstone fraction exceeds `threshold`.
    /// The marker is logged unconditionally — replay makes the same
    /// decision from the same state. See [`PlanarIndexSet::compact_if`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on append failure.
    pub fn compact_if(&mut self, threshold: f64) -> Result<Option<Vec<Option<PointId>>>> {
        self.log_apply(
            WalRecord::Compact {
                threshold: Some(threshold),
            },
            |set| Ok(set.compact_if(threshold)),
        )
    }

    /// **Group commit**: log-then-apply a whole batch of mutations with a
    /// single fsync. Every record is appended *without* per-record
    /// syncing, one `sync` (under `FsyncPolicy::Always`; the other
    /// policies keep their usual cadence against the batched appends)
    /// makes the whole batch durable, and only then is the batch applied
    /// and acknowledged — so the per-mutation fsync tax is divided by the
    /// batch length while "acknowledged ⇒ durable" still holds.
    ///
    /// The batch is validated up front against the live-set it will see
    /// (inserts may be updated/deleted later in the same batch); nothing
    /// is logged or applied unless the whole batch validates.
    ///
    /// # Errors
    ///
    /// Validation errors ([`PlanarError::DimensionMismatch`],
    /// [`PlanarError::NotFinite`], [`PlanarError::PointNotFound`]) before
    /// anything is logged; [`PlanarError::Persist`] on append/fsync
    /// failure (the un-fsynced suffix is unacknowledged and will be
    /// truncated at recovery).
    pub fn apply_batch(&mut self, muts: &[Mutation]) -> Result<Vec<MutationAck>> {
        let next_id = self.set.table().len() as PointId;
        let records = validate_batch(self.set.dim(), next_id, |id| self.set.is_live(id), muts)?;
        let first_lsn = self.next_lsn;
        for (i, rec) in records.iter().enumerate() {
            self.wal.append_frame(first_lsn + i as Lsn, rec)?;
        }
        self.next_lsn = first_lsn + records.len() as Lsn;
        self.wal.policy_sync()?;
        let mut acks = Vec::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            let lsn = first_lsn + i as Lsn;
            replay_planar(&mut self.set, lsn, rec).map_err(|e| {
                PlanarError::Internal(format!(
                    "batch mutation failed after WAL append at lsn {lsn}: {e}"
                ))
            })?;
            acks.push(match rec {
                WalRecord::Insert { id, .. } => MutationAck::Inserted(*id),
                WalRecord::Update { .. } => MutationAck::Updated,
                _ => MutationAck::Deleted,
            });
        }
        Ok(acks)
    }

    /// Decompose into the pieces the concurrent wrapper re-assembles
    /// around a [`GroupCommitQueue`].
    pub(crate) fn into_parts(
        self,
    ) -> (PlanarIndexSet<S>, WalWriter, PathBuf, u64, Lsn, SaveOptions) {
        (
            self.set,
            self.wal,
            self.dir,
            self.generation,
            self.next_lsn,
            self.save_opts,
        )
    }

    /// Checkpoint-then-truncate: append a `Checkpoint` marker, fsync the
    /// log, atomically write the next snapshot generation, publish it in
    /// the manifest, then delete the covered WAL segments. Every step is
    /// crash-safe: a crash at any point recovers to either the old or the
    /// new checkpoint, never in between. Returns the new watermark.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O failure.
    pub fn checkpoint(&mut self) -> Result<Lsn> {
        let watermark = self.next_lsn;
        self.wal
            .append(watermark, &WalRecord::Checkpoint { watermark })?;
        self.next_lsn = watermark + 1;
        self.wal.sync()?;
        // Checkpoint cadence doubles as the autotuner's retune point: the
        // snapshot then carries the freshly chosen quantization tier.
        self.set
            .retune_quantization(&crate::quant::QuantAutotuneConfig::default());
        let generation = self.generation + 1;
        self.set.save_to_with(
            snapshot_path(&self.dir, generation),
            &mut crate::fault::StdIo,
            &self.save_opts,
        )?;
        write_manifest(
            &self.dir,
            Manifest {
                generation,
                watermark,
                term: self.wal.term(),
            },
        )?;
        self.generation = generation;
        self.wal.truncate_all(watermark + 1)?;
        sweep_snapshots(&self.dir, generation);
        Ok(watermark)
    }

    /// Alias for [`Self::checkpoint`] — the durable counterpart of
    /// [`PlanarIndexSet::save_to`].
    ///
    /// # Errors
    ///
    /// See [`Self::checkpoint`].
    pub fn save(&mut self) -> Result<Lsn> {
        self.checkpoint()
    }

    /// Force buffered WAL records to stable storage now, regardless of
    /// the fsync policy.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on fsync failure.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Data fsyncs issued by the WAL writer since this wrapper opened —
    /// the denominator benchmarks divide by to report amortization.
    pub fn fsync_count(&self) -> u64 {
        self.wal.fsync_count()
    }

    /// Consume the wrapper, returning the in-memory set (the directory
    /// keeps its durable state).
    pub fn into_inner(self) -> PlanarIndexSet<S> {
        self.set
    }
}

impl<S: KeyStore> std::ops::Deref for DurablePlanarIndexSet<S> {
    type Target = PlanarIndexSet<S>;

    fn deref(&self) -> &Self::Target {
        &self.set
    }
}

// ---------------------------------------------------------------------------
// Durable sharded set
// ---------------------------------------------------------------------------

/// A [`ShardedIndexSet`] with one write-ahead log **per shard**, all
/// sharing a single global LSN counter. `Insert` records carry their
/// assigned global id, so each shard's log replays independently — a torn
/// tail on one shard never blocks another shard's recovery.
#[derive(Debug)]
pub struct DurableShardedIndexSet<S: KeyStore = VecStore> {
    set: ShardedIndexSet<S>,
    wals: Vec<WalWriter>,
    dir: PathBuf,
    generation: u64,
    next_lsn: Lsn,
    save_opts: SaveOptions,
}

pub(crate) fn shard_wal_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(WAL_SUBDIR).join(format!("shard-{shard:04}"))
}

/// The WAL subtree of a durable directory.
pub(crate) fn wal_root(dir: &Path) -> PathBuf {
    dir.join(WAL_SUBDIR)
}

/// Replication bootstrap: lay out fresh per-shard WAL directories for a
/// just-installed snapshot — one empty segment per shard, named for the
/// first LSN the replica will mirror and stamped with the primary's term.
pub(crate) fn init_shard_wals(dir: &Path, shards: usize, next_lsn: Lsn, term: u64) -> Result<()> {
    for shard in 0..shards {
        let d = shard_wal_dir(dir, shard);
        fs::create_dir_all(&d).map_err(|e| walio("create wal dir", e))?;
        create_segment(&d, next_lsn, term)?;
    }
    Ok(())
}

impl<S: KeyStore> ShardedIndexSet<S> {
    /// Sharded counterpart of [`PlanarIndexSet::open_durable`]: load the
    /// newest valid sharded snapshot, repair every shard's WAL tail, and
    /// replay each shard's records above the watermark. The report's
    /// `shard_watermarks` give each shard's last applied LSN.
    ///
    /// # Errors
    ///
    /// As [`PlanarIndexSet::open_durable`].
    pub fn open_durable(
        dir: impl AsRef<Path>,
        opts: WalOptions,
    ) -> Result<(DurableShardedIndexSet<S>, ShardedRecoveryReport)> {
        let dir = dir.as_ref();
        let m = read_manifest(dir)?;
        let (mut set, mut report) = Self::load_or_recover(snapshot_path(dir, m.generation))?;
        let shards = set.num_shards();
        let mut wals = Vec::with_capacity(shards);
        let mut replayed = 0usize;
        let mut dropped = 0usize;
        let mut torn = 0usize;
        let mut watermarks = vec![m.watermark; shards];
        let mut max_lsn = m.watermark;
        for (shard, watermark) in watermarks.iter_mut().enumerate() {
            let (mut wal, scan) = WalWriter::open_repair(&shard_wal_dir(dir, shard), opts)?;
            wal.set_term(m.term);
            for (lsn, rec) in &scan.frames {
                if *lsn <= m.watermark {
                    continue;
                }
                set.replay_record(shard, *lsn, rec)?;
                *watermark = *lsn;
                replayed += 1;
            }
            dropped += scan.dropped_records;
            torn += scan.torn_bytes;
            max_lsn = max_lsn.max(wal.last_lsn).max(*watermark);
            wals.push(wal);
        }
        report.wal_replayed = replayed;
        report.wal_dropped = dropped;
        report.wal_torn_bytes = torn;
        report.shard_watermarks = watermarks;
        sweep_snapshots(dir, m.generation);
        Ok((
            DurableShardedIndexSet {
                set,
                wals,
                dir: dir.to_path_buf(),
                generation: m.generation,
                next_lsn: max_lsn + 1,
                save_opts: SaveOptions::default(),
            },
            report,
        ))
    }
}

impl<S: KeyStore> DurableShardedIndexSet<S> {
    /// Initialize `dir` as a durable home for a sharded set. See
    /// [`DurablePlanarIndexSet::create`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O failure or if `dir` already holds
    /// a durable index.
    pub fn create(
        dir: impl AsRef<Path>,
        set: ShardedIndexSet<S>,
        opts: WalOptions,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        ensure_fresh_dir(dir)?;
        set.save_to(snapshot_path(dir, 1))?;
        write_manifest(
            dir,
            Manifest {
                generation: 1,
                watermark: 0,
                term: 0,
            },
        )?;
        let mut wals = Vec::with_capacity(set.num_shards());
        for shard in 0..set.num_shards() {
            let (wal, _) = WalWriter::open_repair(&shard_wal_dir(dir, shard), opts)?;
            wals.push(wal);
        }
        let next_lsn = wals.iter().map(|w| w.last_lsn).max().unwrap_or(0) + 1;
        Ok(Self {
            set,
            wals,
            dir: dir.to_path_buf(),
            generation: 1,
            next_lsn,
            save_opts: SaveOptions::default(),
        })
    }

    /// The underlying sharded set, for queries and inspection.
    pub fn set(&self) -> &ShardedIndexSet<S> {
        &self.set
    }

    /// Aggregate WAL health across all shards.
    pub fn wal_health(&self) -> WalHealth {
        let mut h = WalHealth::default();
        for w in &self.wals {
            h.merge(&w.health());
        }
        h
    }

    /// Data fsyncs summed across every shard's WAL writer.
    pub fn fsync_count(&self) -> u64 {
        self.wals.iter().map(WalWriter::fsync_count).sum()
    }

    /// Retry/backoff schedule for checkpoint snapshot writes.
    pub fn save_options(mut self, opts: SaveOptions) -> Self {
        self.save_opts = opts;
        self
    }

    /// Log-then-insert, routed by the partitioner; the record lands in
    /// the target shard's WAL with the assigned global id. See
    /// [`ShardedIndexSet::insert_point`].
    ///
    /// # Errors
    ///
    /// Row validation (before logging) or [`PlanarError::Persist`] on
    /// append failure.
    pub fn insert_point(&mut self, row: &[f64]) -> Result<PointId> {
        validate_row(self.set.dim(), row)?;
        let global = self.set.next_global();
        let shard = self.set.partitioner().route(global, row);
        let lsn = self.next_lsn;
        self.wals[shard].append(
            lsn,
            &WalRecord::Insert {
                id: global,
                row: row.to_vec(),
            },
        )?;
        self.next_lsn = lsn + 1;
        let got = self.set.insert_point(row).map_err(|e| {
            PlanarError::Internal(format!(
                "mutation failed after WAL append at lsn {lsn}: {e}"
            ))
        })?;
        if got != global {
            // The log now disagrees with the applied state; surface it at
            // write time rather than as replay divergence at recovery.
            return Err(PlanarError::Internal(format!(
                "insert at lsn {lsn} assigned global id {got} but logged {global}"
            )));
        }
        Ok(got)
    }

    /// Log-then-update on the point's shard. See
    /// [`ShardedIndexSet::update_point`].
    ///
    /// # Errors
    ///
    /// Validation/[`PlanarError::PointNotFound`] (before logging) or
    /// [`PlanarError::Persist`] on append failure.
    pub fn update_point(&mut self, id: PointId, row: &[f64]) -> Result<()> {
        validate_row(self.set.dim(), row)?;
        let shard = self
            .set
            .shard_of(id)
            .ok_or(PlanarError::PointNotFound(id))?;
        let lsn = self.next_lsn;
        self.wals[shard].append(
            lsn,
            &WalRecord::Update {
                id,
                row: row.to_vec(),
            },
        )?;
        self.next_lsn = lsn + 1;
        self.set.update_point(id, row).map_err(|e| {
            PlanarError::Internal(format!(
                "mutation failed after WAL append at lsn {lsn}: {e}"
            ))
        })
    }

    /// Log-then-delete on the point's shard. See
    /// [`ShardedIndexSet::delete_point`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`] (before logging) or
    /// [`PlanarError::Persist`] on append failure.
    pub fn delete_point(&mut self, id: PointId) -> Result<()> {
        let shard = self
            .set
            .shard_of(id)
            .ok_or(PlanarError::PointNotFound(id))?;
        let lsn = self.next_lsn;
        self.wals[shard].append(lsn, &WalRecord::Delete { id })?;
        self.next_lsn = lsn + 1;
        self.set.delete_point(id).map_err(|e| {
            PlanarError::Internal(format!(
                "mutation failed after WAL append at lsn {lsn}: {e}"
            ))
        })
    }

    /// Log-then-compact: the marker is broadcast to **every** shard's WAL
    /// at one shared LSN (shard-local replay applies each shard's own
    /// compaction). See [`ShardedIndexSet::compact`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on append failure.
    pub fn compact(&mut self, threshold: f64) -> Result<Vec<usize>> {
        let lsn = self.next_lsn;
        let rec = WalRecord::Compact {
            threshold: Some(threshold),
        };
        for wal in &mut self.wals {
            wal.append(lsn, &rec)?;
        }
        self.next_lsn = lsn + 1;
        Ok(self.set.compact(threshold))
    }

    /// **Group commit** across shards: log-then-apply a whole batch of
    /// mutations with one fsync *per touched shard* (instead of one per
    /// record). See [`DurablePlanarIndexSet::apply_batch`]; records are
    /// routed by the partitioner, and updates/deletes may target points
    /// born earlier in the same batch.
    ///
    /// # Errors
    ///
    /// As [`DurablePlanarIndexSet::apply_batch`].
    pub fn apply_batch(&mut self, muts: &[Mutation]) -> Result<Vec<MutationAck>> {
        let dim = self.set.dim();
        let mut born: Vec<(PointId, usize)> = Vec::new();
        let mut killed: Vec<PointId> = Vec::new();
        let mut next = self.set.next_global();
        let shard_for = |set: &ShardedIndexSet<S>,
                         id: PointId,
                         born: &[(PointId, usize)],
                         killed: &[PointId]|
         -> Result<usize> {
            if killed.contains(&id) {
                return Err(PlanarError::PointNotFound(id));
            }
            if let Some(&(_, shard)) = born.iter().find(|&&(b, _)| b == id) {
                return Ok(shard);
            }
            set.shard_of(id).ok_or(PlanarError::PointNotFound(id))
        };
        let mut routed: Vec<(usize, WalRecord)> = Vec::with_capacity(muts.len());
        for m in muts {
            match m {
                Mutation::Insert { row } => {
                    validate_row(dim, row)?;
                    let shard = self.set.partitioner().route(next, row);
                    routed.push((
                        shard,
                        WalRecord::Insert {
                            id: next,
                            row: row.clone(),
                        },
                    ));
                    born.push((next, shard));
                    next += 1;
                }
                Mutation::Update { id, row } => {
                    validate_row(dim, row)?;
                    let shard = shard_for(&self.set, *id, &born, &killed)?;
                    routed.push((
                        shard,
                        WalRecord::Update {
                            id: *id,
                            row: row.clone(),
                        },
                    ));
                }
                Mutation::Delete { id } => {
                    let shard = shard_for(&self.set, *id, &born, &killed)?;
                    routed.push((shard, WalRecord::Delete { id: *id }));
                    killed.push(*id);
                }
            }
        }
        let first_lsn = self.next_lsn;
        let mut touched = vec![false; self.wals.len()];
        for (i, (shard, rec)) in routed.iter().enumerate() {
            self.wals[*shard].append_frame(first_lsn + i as Lsn, rec)?;
            touched[*shard] = true;
        }
        self.next_lsn = first_lsn + routed.len() as Lsn;
        for (shard, hit) in touched.iter().enumerate() {
            if *hit {
                self.wals[shard].policy_sync()?;
            }
        }
        let mut acks = Vec::with_capacity(routed.len());
        for (i, (_, rec)) in routed.iter().enumerate() {
            let lsn = first_lsn + i as Lsn;
            let internal = |e: PlanarError| {
                PlanarError::Internal(format!(
                    "batch mutation failed after WAL append at lsn {lsn}: {e}"
                ))
            };
            match rec {
                WalRecord::Insert { id, row } => {
                    let got = self.set.insert_point(row).map_err(internal)?;
                    if got != *id {
                        return Err(PlanarError::Internal(format!(
                            "batch insert at lsn {lsn} assigned global id {got} but logged {id}"
                        )));
                    }
                    acks.push(MutationAck::Inserted(got));
                }
                WalRecord::Update { id, row } => {
                    self.set.update_point(*id, row).map_err(internal)?;
                    acks.push(MutationAck::Updated);
                }
                WalRecord::Delete { id } => {
                    self.set.delete_point(*id).map_err(internal)?;
                    acks.push(MutationAck::Deleted);
                }
                _ => unreachable!("apply_batch only routes point mutations"),
            }
        }
        Ok(acks)
    }

    /// Decompose into the pieces the concurrent wrapper re-assembles
    /// around per-shard [`GroupCommitQueue`]s.
    pub(crate) fn into_parts(
        self,
    ) -> (
        ShardedIndexSet<S>,
        Vec<WalWriter>,
        PathBuf,
        u64,
        Lsn,
        SaveOptions,
    ) {
        (
            self.set,
            self.wals,
            self.dir,
            self.generation,
            self.next_lsn,
            self.save_opts,
        )
    }

    /// Reassemble a durable sharded set from parts — the inverse of
    /// [`Self::into_parts`], used by failover promotion to turn a
    /// replica's mirrored WALs and applied state into a writable primary.
    /// The caller guarantees the parts are mutually consistent (the set is
    /// exactly the replay of the WALs over the snapshot at `generation`).
    pub(crate) fn from_parts(
        set: ShardedIndexSet<S>,
        wals: Vec<WalWriter>,
        dir: PathBuf,
        generation: u64,
        next_lsn: Lsn,
        save_opts: SaveOptions,
    ) -> Self {
        Self {
            set,
            wals,
            dir,
            generation,
            next_lsn,
            save_opts,
        }
    }

    /// Checkpoint-then-truncate across every shard. See
    /// [`DurablePlanarIndexSet::checkpoint`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O failure.
    pub fn checkpoint(&mut self) -> Result<Lsn> {
        let watermark = self.next_lsn;
        for wal in &mut self.wals {
            wal.append(watermark, &WalRecord::Checkpoint { watermark })?;
            wal.sync()?;
        }
        self.next_lsn = watermark + 1;
        // Retune each shard's quantization tier at checkpoint cadence so
        // the snapshot carries fresh policies (see the planar twin above).
        self.set
            .retune_quantization(&crate::quant::QuantAutotuneConfig::default());
        let generation = self.generation + 1;
        self.set.save_to_with(
            snapshot_path(&self.dir, generation),
            &mut crate::fault::StdIo,
            &self.save_opts,
        )?;
        write_manifest(
            &self.dir,
            Manifest {
                generation,
                watermark,
                term: self.wals.iter().map(WalWriter::term).max().unwrap_or(0),
            },
        )?;
        self.generation = generation;
        for wal in &mut self.wals {
            wal.truncate_all(watermark + 1)?;
        }
        sweep_snapshots(&self.dir, generation);
        Ok(watermark)
    }

    /// Alias for [`Self::checkpoint`].
    ///
    /// # Errors
    ///
    /// See [`Self::checkpoint`].
    pub fn save(&mut self) -> Result<Lsn> {
        self.checkpoint()
    }

    /// Force every shard's buffered records to stable storage now.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on fsync failure.
    pub fn sync(&mut self) -> Result<()> {
        for wal in &mut self.wals {
            wal.sync()?;
        }
        Ok(())
    }

    /// Consume the wrapper, returning the in-memory sharded set.
    pub fn into_inner(self) -> ShardedIndexSet<S> {
        self.set
    }
}

impl<S: KeyStore> std::ops::Deref for DurableShardedIndexSet<S> {
    type Target = ShardedIndexSet<S>;

    fn deref(&self) -> &Self::Target {
        &self.set
    }
}

// Query pass-throughs so a durable set is a drop-in for the plain one in
// batch-serving code (Deref covers `&self` methods already; these exist
// for discoverability in docs).
impl<S: KeyStore> DurablePlanarIndexSet<S> {
    /// See [`PlanarIndexSet::query_batch`].
    ///
    /// # Errors
    ///
    /// See [`PlanarIndexSet::query_batch`].
    pub fn query_batch(
        &self,
        qs: &[InequalityQuery],
        exec: &ExecutionConfig,
    ) -> Result<Vec<QueryOutcome>>
    where
        S: Sync,
    {
        self.set.query_batch(qs, exec)
    }

    /// See [`PlanarIndexSet::top_k_batch`].
    ///
    /// # Errors
    ///
    /// See [`PlanarIndexSet::top_k_batch`].
    pub fn top_k_batch(&self, qs: &[TopKQuery], exec: &ExecutionConfig) -> Result<Vec<TopKOutcome>>
    where
        S: Sync,
    {
        self.set.top_k_batch(qs, exec)
    }
}

impl<S: KeyStore> DurableShardedIndexSet<S> {
    /// See [`ShardedIndexSet::query_batch`].
    ///
    /// # Errors
    ///
    /// See [`ShardedIndexSet::query_batch`].
    pub fn query_batch(
        &self,
        qs: &[InequalityQuery],
        exec: &ExecutionConfig,
    ) -> Result<Vec<ShardedQueryOutcome>>
    where
        S: Sync,
    {
        self.set.query_batch(qs, exec)
    }

    /// See [`ShardedIndexSet::top_k_batch`].
    ///
    /// # Errors
    ///
    /// See [`ShardedIndexSet::top_k_batch`].
    pub fn top_k_batch(
        &self,
        qs: &[TopKQuery],
        exec: &ExecutionConfig,
    ) -> Result<Vec<ShardedTopKOutcome>>
    where
        S: Sync,
    {
        self.set.top_k_batch(qs, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ParameterDomain;
    use crate::fault::{self, TempDir, WalFaultKind};
    use crate::multi::IndexConfig;
    use crate::query::{Cmp, InequalityQuery, TopKQuery};
    use crate::shard::{ShardConfig, ShardedIndexSet};
    use crate::table::FeatureTable;
    use crate::VecStore;
    use std::sync::Mutex;

    /// The WAL fault trigger is process-global and *every* writer consults
    /// it, so tests that open writers serialize on this lock to keep an
    /// armed fault from being consumed by a neighbor's appends.
    static LOCK: Mutex<()> = Mutex::new(());

    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn small_set(n: usize) -> PlanarIndexSet<VecStore> {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![1.0 + (i % 13) as f64, 1.0 + (i % 7) as f64])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(4)).unwrap()
    }

    fn probes() -> Vec<InequalityQuery> {
        [10.0, 14.0, 18.0]
            .iter()
            .map(|&b| InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, b).unwrap())
            .collect()
    }

    fn every_record() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                id: 7,
                row: vec![1.0, -2.5],
            },
            WalRecord::Update {
                id: 3,
                row: vec![0.25, 9.0],
            },
            WalRecord::Delete { id: 11 },
            WalRecord::Compact { threshold: None },
            WalRecord::Compact {
                threshold: Some(0.125),
            },
            WalRecord::Checkpoint { watermark: 42 },
        ]
    }

    #[test]
    fn frame_roundtrip_every_record_kind() {
        for (i, rec) in every_record().iter().enumerate() {
            let lsn = (i as Lsn + 1) * 10;
            let frame = encode_frame(lsn, rec);
            let (consumed, got_lsn, got) = parse_frame(&frame).expect("frame parses");
            assert_eq!(consumed, frame.len());
            assert_eq!(got_lsn, lsn);
            assert_eq!(&got, rec);
        }
    }

    #[test]
    fn parse_frame_rejects_any_corruption() {
        let frame = encode_frame(
            5,
            &WalRecord::Insert {
                id: 1,
                row: vec![2.0, 3.0],
            },
        );
        // Truncation anywhere is a torn tail, not a frame.
        for cut in 0..frame.len() {
            assert!(parse_frame(&frame[..cut]).is_none(), "cut at {cut}");
        }
        // A flip anywhere breaks the CRC (or the CRC itself).
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(parse_frame(&bad).is_none(), "flip at {i}");
        }
        // A length field past the cap can never drive an allocation.
        let mut huge = frame.clone();
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(parse_frame(&huge).is_none());
    }

    #[test]
    fn writer_rotates_segments_and_scan_reads_in_order() {
        let _g = serialized();
        let tmp = TempDir::new("wal_rotate").unwrap();
        let opts = WalOptions::default()
            .fsync(FsyncPolicy::OnCheckpoint)
            .segment_max_bytes(4096);
        let (mut w, scan) = WalWriter::open_repair(tmp.path(), opts).unwrap();
        assert!(scan.frames.is_empty());
        for lsn in 1..=200u64 {
            w.append(
                lsn,
                &WalRecord::Insert {
                    id: lsn as PointId,
                    row: vec![lsn as f64, 0.5],
                },
            )
            .unwrap();
        }
        assert!(w.health().segments >= 2, "4 KiB segments must rotate");
        assert_eq!(w.health().last_lsn, 200);
        // Appends must stay monotonic.
        assert!(w.append(200, &WalRecord::Delete { id: 0 }).is_err());
        w.sync().unwrap();
        drop(w);
        let scan = scan_dir(tmp.path()).unwrap();
        assert_eq!(scan.frames.len(), 200);
        assert!(scan.frames.windows(2).all(|p| p[0].0 < p[1].0));
        assert_eq!(scan.dropped_records, 0);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn fsync_policy_governs_unsynced_window() {
        let _g = serialized();
        let tmp = TempDir::new("wal_fsync").unwrap();
        let rec = WalRecord::Delete { id: 1 };
        let (mut w, _) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
        w.append(1, &rec).unwrap();
        assert_eq!(w.health().unsynced_records, 0, "Always syncs per record");
        drop(w);

        let tmp = TempDir::new("wal_fsync_n").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(3));
        let (mut w, _) = WalWriter::open_repair(tmp.path(), opts).unwrap();
        w.append(1, &rec).unwrap();
        w.append(2, &rec).unwrap();
        assert_eq!(w.health().unsynced_records, 2);
        w.append(3, &rec).unwrap();
        assert_eq!(w.health().unsynced_records, 0, "third append syncs");
        drop(w);

        let tmp = TempDir::new("wal_fsync_ckpt").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::OnCheckpoint);
        let (mut w, _) = WalWriter::open_repair(tmp.path(), opts).unwrap();
        for lsn in 1..=5 {
            w.append(lsn, &rec).unwrap();
        }
        assert_eq!(w.health().unsynced_records, 5);
        w.sync().unwrap();
        assert_eq!(w.health().unsynced_records, 0);
    }

    #[test]
    fn corrupt_frame_drops_suffix_and_repair_truncates() {
        let _g = serialized();
        let tmp = TempDir::new("wal_corrupt").unwrap();
        let (mut w, _) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
        let mut offsets = vec![SEGMENT_HEADER_LEN as u64]; // byte offset of each frame
        for lsn in 1..=10u64 {
            let rec = WalRecord::Delete { id: lsn as PointId };
            offsets.push(offsets.last().unwrap() + encode_frame(lsn, &rec).len() as u64);
            w.append(lsn, &rec).unwrap();
        }
        drop(w);
        // Flip a payload byte of frame 8 (1-based): its length field is
        // intact, so frames 8..=10 stay structurally complete but frame 8
        // fails its CRC and everything from it on is unusable.
        let seg = list_segments(tmp.path()).unwrap().pop().unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        bytes[offsets[7] as usize + FRAME_HEADER] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();

        let scan = scan_dir(tmp.path()).unwrap();
        assert_eq!(scan.frames.len(), 7);
        assert_eq!(scan.dropped_records, 3);
        assert_eq!(scan.torn_bytes, 0);

        // Repair truncates the file at the last valid frame and the writer
        // resumes from there.
        let (mut w, scan) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
        assert_eq!(scan.frames.len(), 7);
        assert_eq!(w.health().last_lsn, 7);
        assert_eq!(fs::metadata(&seg).unwrap().len(), offsets[7]);
        w.append(8, &WalRecord::Delete { id: 99 }).unwrap();
        drop(w);
        let scan = scan_dir(tmp.path()).unwrap();
        assert_eq!(scan.frames.len(), 8);
        assert_eq!(scan.dropped_records, 0);
    }

    #[test]
    fn torn_header_at_rotation_keeps_prior_segments() {
        let _g = serialized();
        let tmp = TempDir::new("wal_torn_header").unwrap();
        let (mut w, _) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
        for lsn in 1..=5u64 {
            w.append(lsn, &WalRecord::Delete { id: lsn as PointId })
                .unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let healthy = list_segments(tmp.path()).unwrap().pop().unwrap();
        let healthy_len = fs::metadata(&healthy).unwrap().len();
        // A crash during rotation: the next segment file exists but its
        // header never became durable (empty, or a partial magic).
        for torn in [&b""[..], &SEGMENT_MAGIC[..4]] {
            fs::write(segment_path(tmp.path(), 6), torn).unwrap();
            let (w, scan) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
            assert_eq!(scan.frames.len(), 5, "acknowledged records survive");
            assert_eq!(scan.torn_bytes, torn.len());
            assert_eq!(w.health().last_lsn, 5);
            assert_eq!(
                fs::metadata(&healthy).unwrap().len(),
                healthy_len,
                "the healthy segment must not be touched"
            );
            drop(w);
            let scan = scan_dir(tmp.path()).unwrap();
            assert_eq!(scan.frames.len(), 5, "still durable after repair");
        }
        // The repaired log keeps accepting appends past the old records.
        let (mut w, _) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
        w.append(6, &WalRecord::Delete { id: 99 }).unwrap();
        w.sync().unwrap();
        drop(w);
        assert_eq!(scan_dir(tmp.path()).unwrap().frames.len(), 6);
    }

    #[test]
    fn partial_tail_bytes_are_torn_not_dropped() {
        let _g = serialized();
        let tmp = TempDir::new("wal_torn").unwrap();
        let (mut w, _) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
        for lsn in 1..=4u64 {
            w.append(lsn, &WalRecord::Delete { id: lsn as PointId })
                .unwrap();
        }
        drop(w);
        let seg = list_segments(tmp.path()).unwrap().pop().unwrap();
        let frame = encode_frame(5, &WalRecord::Delete { id: 5 });
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        fs::write(&seg, &bytes).unwrap();

        let scan = scan_dir(tmp.path()).unwrap();
        assert_eq!(scan.frames.len(), 4);
        assert_eq!(scan.dropped_records, 0);
        assert_eq!(scan.torn_bytes, frame.len() / 2);
    }

    #[test]
    fn manifest_roundtrip_and_corruption_are_typed() {
        let _g = serialized();
        let tmp = TempDir::new("wal_manifest").unwrap();
        let m = Manifest {
            generation: 9,
            watermark: 1234,
            term: 3,
        };
        write_manifest(tmp.path(), m).unwrap();
        assert_eq!(read_manifest(tmp.path()).unwrap(), m);

        let mut bytes = fs::read(tmp.file(MANIFEST_FILE)).unwrap();
        bytes[10] ^= 0x01;
        fs::write(tmp.file(MANIFEST_FILE), &bytes).unwrap();
        let err = read_manifest(tmp.path()).unwrap_err().to_string();
        assert!(err.contains("CRC"), "got: {err}");

        let empty = TempDir::new("wal_manifest_missing").unwrap();
        let err = read_manifest(empty.path()).unwrap_err().to_string();
        assert!(err.contains("not a durable index directory"), "got: {err}");
    }

    #[test]
    fn durable_planar_recovers_unsnapshotted_mutations() {
        let _g = serialized();
        let tmp = TempDir::new("wal_planar_rt").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
        let mut durable = DurablePlanarIndexSet::create(tmp.path(), small_set(120), opts).unwrap();
        let mut twin = small_set(120);

        for i in 0..30 {
            let row = vec![2.0 + (i % 9) as f64, 3.0 + (i % 5) as f64];
            let a = durable.insert_point(&row).unwrap();
            let b = twin.insert_point(&row).unwrap();
            assert_eq!(a, b);
        }
        for id in [3u32, 40, 121] {
            durable.update_point(id, &[6.5, 6.5]).unwrap();
            twin.update_point(id, &[6.5, 6.5]).unwrap();
        }
        for id in [10u32, 11, 130] {
            durable.delete_point(id).unwrap();
            twin.delete_point(id).unwrap();
        }
        assert_eq!(durable.compact_if(0.01).unwrap().is_some(), {
            twin.compact_if(0.01).is_some()
        });
        let health = durable.wal_health();
        assert_eq!(health.last_lsn, 37);
        drop(durable); // killed without a checkpoint

        let (recovered, report) =
            PlanarIndexSet::<VecStore>::open_durable(tmp.path(), opts).unwrap();
        assert_eq!(report.wal_replayed, 37);
        assert_eq!(report.wal_dropped, 0);
        assert_eq!(report.wal_torn_bytes, 0);
        assert_eq!(report.wal_watermark, 37);
        assert_eq!(recovered.len(), twin.len());
        for q in probes() {
            assert_eq!(
                recovered.query(&q).unwrap().sorted_ids(),
                twin.query(&q).unwrap().sorted_ids()
            );
        }
        let tk = TopKQuery::new(probes().remove(1), 5).unwrap();
        assert_eq!(
            recovered.top_k(&tk).unwrap().neighbors,
            twin.top_k(&tk).unwrap().neighbors
        );
    }

    #[test]
    fn checkpoint_truncates_and_only_later_records_replay() {
        let _g = serialized();
        let tmp = TempDir::new("wal_ckpt").unwrap();
        let opts = WalOptions::default();
        let mut durable = DurablePlanarIndexSet::create(tmp.path(), small_set(60), opts).unwrap();
        let mut twin = small_set(60);
        for i in 0..10 {
            let row = vec![2.0 + i as f64, 4.0];
            durable.insert_point(&row).unwrap();
            twin.insert_point(&row).unwrap();
        }
        let watermark = durable.save().unwrap();
        assert_eq!(watermark, 11, "10 inserts + checkpoint marker");
        let h = durable.wal_health();
        assert_eq!(h.segments, 1);
        assert_eq!(h.last_lsn, watermark, "log truncated to the watermark");
        assert!(
            !snapshot_path(tmp.path(), 1).exists(),
            "stale snapshot generation swept"
        );
        assert!(snapshot_path(tmp.path(), 2).exists());

        durable.delete_point(5).unwrap();
        twin.delete_point(5).unwrap();
        drop(durable);

        let (recovered, report) =
            PlanarIndexSet::<VecStore>::open_durable(tmp.path(), opts).unwrap();
        assert_eq!(report.wal_replayed, 1, "pre-checkpoint records are covered");
        for q in probes() {
            assert_eq!(
                recovered.query(&q).unwrap().sorted_ids(),
                twin.query(&q).unwrap().sorted_ids()
            );
        }
    }

    #[test]
    fn create_and_open_misuse_is_typed() {
        let _g = serialized();
        let tmp = TempDir::new("wal_misuse").unwrap();
        let opts = WalOptions::default();
        let d = DurablePlanarIndexSet::create(tmp.path(), small_set(20), opts).unwrap();
        drop(d);
        let err = DurablePlanarIndexSet::create(tmp.path(), small_set(20), opts)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("already contains a durable index"),
            "got: {err}"
        );

        let fresh = TempDir::new("wal_misuse_fresh").unwrap();
        let err = PlanarIndexSet::<VecStore>::open_durable(fresh.path(), opts)
            .unwrap_err()
            .to_string();
        assert!(err.contains("not a durable index directory"), "got: {err}");
    }

    #[test]
    fn create_refuses_wal_remnants_without_manifest() {
        let _g = serialized();
        let tmp = TempDir::new("wal_remnants").unwrap();
        let opts = WalOptions::default();
        let mut d = DurablePlanarIndexSet::create(tmp.path(), small_set(20), opts).unwrap();
        d.insert_point(&[2.0, 2.0]).unwrap();
        drop(d);
        // Partial cleanup: the manifest is gone but high-LSN segments
        // linger. Re-creating at LSN 1 underneath them would brick every
        // subsequent append as non-monotonic.
        fs::remove_file(tmp.file(MANIFEST_FILE)).unwrap();
        let err = DurablePlanarIndexSet::create(tmp.path(), small_set(20), opts)
            .unwrap_err()
            .to_string();
        assert!(err.contains("WAL remnants"), "got: {err}");
    }

    #[test]
    fn fail_append_rejects_mutation_without_applying() {
        let _g = serialized();
        let tmp = TempDir::new("wal_failapp").unwrap();
        let mut durable =
            DurablePlanarIndexSet::create(tmp.path(), small_set(40), WalOptions::default())
                .unwrap();
        let before = durable.len();
        fault::arm_wal_fault(0, WalFaultKind::FailAppend);
        let err = durable.insert_point(&[5.0, 5.0]).unwrap_err().to_string();
        fault::disarm_wal_fault();
        assert!(err.contains("transient append failure"), "got: {err}");
        assert_eq!(durable.len(), before, "nothing applied on append failure");
        // The writer survives a transient failure.
        durable.insert_point(&[5.0, 5.0]).unwrap();
        assert_eq!(durable.len(), before + 1);
    }

    #[test]
    fn torn_append_crash_recovers_durable_prefix() {
        let _g = serialized();
        let tmp = TempDir::new("wal_tornapp").unwrap();
        let opts = WalOptions::default();
        let mut durable = DurablePlanarIndexSet::create(tmp.path(), small_set(40), opts).unwrap();
        let mut twin = small_set(40);
        for i in 0..6 {
            let row = vec![3.0 + i as f64, 2.0];
            durable.insert_point(&row).unwrap();
            twin.insert_point(&row).unwrap();
        }
        fault::arm_wal_fault(6, WalFaultKind::TornAppend { keep: 9 });
        assert!(durable.insert_point(&[9.0, 9.0]).is_err());
        // The writer is dead from here on — like after a power cut.
        let err = durable.delete_point(0).unwrap_err().to_string();
        assert!(err.contains("crashed"), "got: {err}");
        fault::disarm_wal_fault();
        drop(durable);

        let (recovered, report) =
            PlanarIndexSet::<VecStore>::open_durable(tmp.path(), opts).unwrap();
        assert_eq!(report.wal_replayed, 6);
        assert_eq!(report.wal_torn_bytes, 9, "the half-written frame");
        assert_eq!(report.wal_dropped, 0);
        for q in probes() {
            assert_eq!(
                recovered.query(&q).unwrap().sorted_ids(),
                twin.query(&q).unwrap().sorted_ids()
            );
        }
        // The repaired log keeps accepting appends.
        let (mut durable, _) = PlanarIndexSet::<VecStore>::open_durable(tmp.path(), opts).unwrap();
        durable.insert_point(&[1.0, 1.0]).unwrap();
    }

    #[test]
    fn crash_after_append_keeps_the_whole_record() {
        let _g = serialized();
        let tmp = TempDir::new("wal_crashafter").unwrap();
        let opts = WalOptions::default();
        let mut durable = DurablePlanarIndexSet::create(tmp.path(), small_set(40), opts).unwrap();
        let mut twin = small_set(40);
        for i in 0..3 {
            let row = vec![3.0 + i as f64, 2.0];
            durable.insert_point(&row).unwrap();
            twin.insert_point(&row).unwrap();
        }
        fault::arm_wal_fault(3, WalFaultKind::CrashAfterAppend);
        // The 4th mutation is fully logged before the "crash".
        durable.insert_point(&[8.0, 8.0]).unwrap();
        twin.insert_point(&[8.0, 8.0]).unwrap();
        assert!(durable.insert_point(&[1.0, 1.0]).is_err());
        fault::disarm_wal_fault();
        drop(durable);

        let (recovered, report) =
            PlanarIndexSet::<VecStore>::open_durable(tmp.path(), opts).unwrap();
        assert_eq!(report.wal_replayed, 4);
        for q in probes() {
            assert_eq!(
                recovered.query(&q).unwrap().sorted_ids(),
                twin.query(&q).unwrap().sorted_ids()
            );
        }
    }

    #[test]
    fn durable_sharded_recovers_across_shard_logs() {
        let _g = serialized();
        let tmp = TempDir::new("wal_sharded_rt").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(8));
        let build = || {
            let rows: Vec<Vec<f64>> = (0..90)
                .map(|i| vec![1.0 + (i % 11) as f64, 1.0 + (i % 6) as f64])
                .collect();
            let table = FeatureTable::from_rows(2, rows).unwrap();
            let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
            ShardedIndexSet::<VecStore>::build(
                table,
                domain,
                IndexConfig::with_budget(3),
                ShardConfig::round_robin(3),
            )
            .unwrap()
        };
        let mut durable = DurableShardedIndexSet::create(tmp.path(), build(), opts).unwrap();
        let mut twin = build();
        for i in 0..20 {
            let row = vec![2.0 + (i % 7) as f64, 3.0];
            assert_eq!(
                durable.insert_point(&row).unwrap(),
                twin.insert_point(&row).unwrap()
            );
        }
        for id in [1u32, 50, 95] {
            durable.update_point(id, &[4.0, 4.0]).unwrap();
            twin.update_point(id, &[4.0, 4.0]).unwrap();
        }
        for id in [2u32, 51, 96] {
            durable.delete_point(id).unwrap();
            twin.delete_point(id).unwrap();
        }
        assert_eq!(durable.compact(0.01).unwrap(), twin.compact(0.01));
        assert!(durable.wal_health().segments >= 3, "one log per shard");
        drop(durable); // killed mid-fsync-window

        let (recovered, report) =
            ShardedIndexSet::<VecStore>::open_durable(tmp.path(), opts).unwrap();
        assert_eq!(report.shard_watermarks.len(), 3);
        assert_eq!(report.wal_dropped, 0);
        assert!(report.wal_replayed >= 26, "20 inserts + 6 point ops");
        for q in probes() {
            assert_eq!(
                recovered.query(&q).unwrap().sorted_ids(),
                twin.query(&q).unwrap().sorted_ids()
            );
        }
        let tk = TopKQuery::new(probes().remove(0), 7).unwrap();
        assert_eq!(
            recovered.top_k(&tk).unwrap().neighbors,
            twin.top_k(&tk).unwrap().neighbors
        );
    }

    #[test]
    fn wal_health_acked_vs_appended_converge_on_sync() {
        let _g = serialized();
        let tmp = TempDir::new("wal_acked").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(8));
        let mut durable = DurablePlanarIndexSet::create(tmp.path(), small_set(6), opts).unwrap();
        for i in 0..5 {
            durable.insert_point(&[2.0 + i as f64, 3.0]).unwrap();
        }
        let h = durable.wal_health();
        assert_eq!(h.appended_lsn, 5);
        assert_eq!(h.acked_lsn, 0, "nothing fsynced yet under EveryN(8)");
        assert_eq!(h.ack_lag(), 5);
        assert_eq!(h.unsynced_records, 5);
        durable.sync().unwrap();
        let h = durable.wal_health();
        assert_eq!(h.acked_lsn, h.appended_lsn, "sync converges the watermarks");
        assert_eq!(h.ack_lag(), 0);
        assert_eq!(h.unsynced_records, 0);
    }

    #[test]
    fn wal_health_merge_keeps_most_conservative_acked() {
        let a = WalHealth {
            segments: 1,
            unsynced_records: 0,
            last_lsn: 10,
            appended_lsn: 10,
            acked_lsn: 10,
        };
        let b = WalHealth {
            segments: 2,
            unsynced_records: 3,
            last_lsn: 7,
            appended_lsn: 7,
            acked_lsn: 4,
        };
        let mut merged = WalHealth::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.appended_lsn, 10, "appended is the max");
        assert_eq!(merged.acked_lsn, 4, "acked is the laggard's watermark");
        assert_eq!(merged.ack_lag(), 6);
        // Order must not matter.
        let mut rev = WalHealth::default();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(rev.acked_lsn, 4);
        assert_eq!(rev.appended_lsn, 10);
    }

    #[test]
    fn apply_batch_is_one_fsync_and_matches_serial() {
        let _g = serialized();
        let tmp = TempDir::new("wal_batch").unwrap();
        let opts = WalOptions::default(); // Always
        let mut durable = DurablePlanarIndexSet::create(tmp.path(), small_set(20), opts).unwrap();
        let mut twin = small_set(20);

        let muts = vec![
            Mutation::Insert {
                row: vec![2.0, 8.0],
            },
            Mutation::Insert {
                row: vec![5.0, 5.0],
            },
            Mutation::Update {
                id: 20,
                row: vec![3.0, 3.0],
            },
            Mutation::Delete { id: 2 },
            Mutation::Delete { id: 21 },
        ];
        let before = durable.fsync_count();
        let acks = durable.apply_batch(&muts).unwrap();
        assert_eq!(
            durable.fsync_count() - before,
            1,
            "a whole batch commits with one fsync under Always"
        );
        assert_eq!(
            acks,
            vec![
                MutationAck::Inserted(20),
                MutationAck::Inserted(21),
                MutationAck::Updated,
                MutationAck::Deleted,
                MutationAck::Deleted,
            ]
        );
        let h = durable.wal_health();
        assert_eq!(
            h.acked_lsn, h.appended_lsn,
            "batch was acknowledged durable"
        );

        twin.insert_point(&[2.0, 8.0]).unwrap();
        twin.insert_point(&[5.0, 5.0]).unwrap();
        twin.update_point(20, &[3.0, 3.0]).unwrap();
        twin.delete_point(2).unwrap();
        twin.delete_point(21).unwrap();
        for q in probes() {
            assert_eq!(
                durable.set().query(&q).unwrap().sorted_ids(),
                twin.query(&q).unwrap().sorted_ids()
            );
        }

        // A batch that fails validation must log and apply nothing.
        let before_lsn = durable.wal_health().appended_lsn;
        let bad = vec![
            Mutation::Insert {
                row: vec![1.0, 1.0],
            },
            Mutation::Update {
                id: 9999,
                row: vec![1.0, 1.0],
            },
        ];
        assert!(matches!(
            durable.apply_batch(&bad),
            Err(PlanarError::PointNotFound(9999))
        ));
        assert_eq!(durable.wal_health().appended_lsn, before_lsn);

        // Crash-equivalent reopen replays the whole batch.
        drop(durable);
        let (recovered, report) =
            PlanarIndexSet::<VecStore>::open_durable(tmp.path(), opts).unwrap();
        assert_eq!(report.wal_replayed, 5);
        for q in probes() {
            assert_eq!(
                recovered.set().query(&q).unwrap().sorted_ids(),
                twin.query(&q).unwrap().sorted_ids()
            );
        }
    }

    #[test]
    fn sharded_apply_batch_fsyncs_once_per_touched_shard() {
        let _g = serialized();
        let tmp = TempDir::new("wal_shard_batch").unwrap();
        let opts = WalOptions::default(); // Always
        let build = || {
            let rows: Vec<Vec<f64>> = (0..30)
                .map(|i| vec![1.0 + (i % 9) as f64, 1.0 + (i % 5) as f64])
                .collect();
            let table = FeatureTable::from_rows(2, rows).unwrap();
            let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
            ShardedIndexSet::<VecStore>::build(
                table,
                domain,
                IndexConfig::with_budget(3),
                ShardConfig::round_robin(3),
            )
            .unwrap()
        };
        let mut durable = DurableShardedIndexSet::create(tmp.path(), build(), opts).unwrap();
        let mut twin = build();

        // Six round-robin inserts touch all three shards.
        let muts: Vec<Mutation> = (0..6)
            .map(|i| Mutation::Insert {
                row: vec![2.0 + i as f64, 4.0],
            })
            .collect();
        let before = durable.fsync_count();
        let acks = durable.apply_batch(&muts).unwrap();
        assert_eq!(
            durable.fsync_count() - before,
            3,
            "one fsync per touched shard, not per record"
        );
        for (i, ack) in acks.iter().enumerate() {
            assert_eq!(*ack, MutationAck::Inserted(30 + i as PointId));
        }
        for m in &muts {
            if let Mutation::Insert { row } = m {
                twin.insert_point(row).unwrap();
            }
        }
        let h = durable.wal_health();
        assert_eq!(h.appended_lsn, 6);
        assert_eq!(h.acked_lsn, 6);

        drop(durable);
        let (recovered, report) =
            ShardedIndexSet::<VecStore>::open_durable(tmp.path(), opts).unwrap();
        assert_eq!(report.wal_replayed, 6);
        for q in probes() {
            assert_eq!(
                recovered.set().query(&q).unwrap().sorted_ids(),
                twin.query(&q).unwrap().sorted_ids()
            );
        }
    }

    #[test]
    fn group_commit_queue_amortizes_and_acks_durably() {
        let _g = serialized();
        let tmp = TempDir::new("wal_gcq").unwrap();
        let opts = WalOptions::default(); // Always
        let (writer, _) = WalWriter::open_repair(tmp.path(), opts).unwrap();
        let queue = GroupCommitQueue::new(writer);
        let next = Mutex::new(1u64);

        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 16;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        let lsn = {
                            let mut n = next.lock().unwrap();
                            let lsn = *n;
                            queue
                                .enqueue(lsn, WalRecord::Delete { id: lsn as u32 })
                                .unwrap();
                            *n += 1;
                            lsn
                        };
                        queue.wait_durable(lsn).unwrap();
                    }
                });
            }
        });

        let total = THREADS * PER_THREAD;
        let h = queue.health();
        assert_eq!(h.appended_lsn, total);
        assert_eq!(h.acked_lsn, total, "every waiter was acknowledged durable");
        let stats = queue.stats();
        assert_eq!(stats.committed_records, total);
        assert!(stats.fsyncs <= total, "never worse than fsync-per-record");
        assert!(stats.mean_group() >= 1.0);
        assert!(stats.max_group >= 1);

        // Everything acknowledged is on disk in LSN order.
        drop(queue);
        let scan = scan_dir(tmp.path()).unwrap();
        let lsns: Vec<Lsn> = scan.frames.iter().map(|&(lsn, _)| lsn).collect();
        assert_eq!(lsns, (1..=total).collect::<Vec<_>>());
    }

    #[test]
    fn group_commit_queue_flush_converges_everyn() {
        let _g = serialized();
        let tmp = TempDir::new("wal_gcq_lazy").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(64));
        let (writer, _) = WalWriter::open_repair(tmp.path(), opts).unwrap();
        let queue = GroupCommitQueue::new(writer);
        for lsn in 1..=10u64 {
            queue
                .enqueue(lsn, WalRecord::Delete { id: lsn as u32 })
                .unwrap();
        }
        assert_eq!(queue.ack_lag(), 10);
        // Non-forced flush writes frames but leaves durability to policy.
        queue.flush(false).unwrap();
        assert_eq!(queue.health().appended_lsn, 10);
        // Forced flush converges acked to appended.
        queue.flush(true).unwrap();
        let h = queue.health();
        assert_eq!(h.acked_lsn, 10);
        assert_eq!(h.ack_lag(), 0);
    }

    #[test]
    fn group_commit_queue_reopen_restores_service_and_prior_acks() {
        let _g = serialized();
        let tmp = TempDir::new("wal_gcq_reopen").unwrap();
        let (writer, _) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
        let queue = GroupCommitQueue::new(writer);
        for lsn in 1..=5u64 {
            queue
                .enqueue(lsn, WalRecord::Delete { id: lsn as u32 })
                .unwrap();
        }
        queue.wait_durable(5).unwrap();
        assert_eq!(queue.health().acked_lsn, 5);

        // The sixth append (0-based #5) tears mid-frame and fail-stops
        // the queue.
        fault::arm_wal_fault(5, WalFaultKind::TornAppend { keep: 3 });
        queue.enqueue(6, WalRecord::Delete { id: 6 }).unwrap();
        assert!(queue.wait_durable(6).is_err(), "queue must fail-stop");
        fault::disarm_wal_fault();
        assert!(
            queue.enqueue(7, WalRecord::Delete { id: 7 }).is_err(),
            "fail-stopped queue refuses new work"
        );

        // Acks issued before the error still hold...
        assert_eq!(queue.health().acked_lsn, 5);
        // ...and reopen repairs the torn tail, re-appends the parked
        // record, and restores service.
        let h = queue.reopen().unwrap();
        assert!(h.acked_lsn >= 6, "parked record re-appended durably");
        queue.enqueue(7, WalRecord::Delete { id: 7 }).unwrap();
        queue.wait_durable(7).unwrap();
        drop(queue);
        let scan = scan_dir(tmp.path()).unwrap();
        let lsns: Vec<Lsn> = scan.frames.iter().map(|&(l, _)| l).collect();
        assert_eq!(lsns, (1..=7).collect::<Vec<_>>());
    }

    #[test]
    fn group_commit_reopen_with_quorum_gate_resolves_typed_or_confirmed() {
        let _g = serialized();
        let tmp = TempDir::new("wal_gcq_gate").unwrap();
        let (writer, _) = WalWriter::open_repair(tmp.path(), WalOptions::default()).unwrap();
        let queue = GroupCommitQueue::new(writer);
        let gate = QuorumGate::new(1, 100);
        queue.set_gate(Some(gate.clone()));

        // Confirmed write: the gate releases the acknowledgement.
        queue.enqueue(1, WalRecord::Delete { id: 1 }).unwrap();
        gate.publish(1);
        queue.wait_durable(1).unwrap();

        // Unconfirmed write: locally durable, then a typed quorum
        // timeout — never a silent ack.
        queue.enqueue(2, WalRecord::Delete { id: 2 }).unwrap();
        match queue.wait_durable(2) {
            Err(PlanarError::QuorumTimeout {
                lsn,
                required,
                frontier,
            }) => {
                assert_eq!(lsn, 2);
                assert_eq!(required, 1);
                assert_eq!(frontier, 1);
            }
            other => panic!("expected quorum timeout, got {other:?}"),
        }
        assert_eq!(queue.health().acked_lsn, 2, "locally durable regardless");

        // Fail-stop mid-append with the gate installed: the in-flight
        // acknowledgement resolves typed with the append error — it
        // must not sit on the gate waiting for a record that never
        // reached disk.
        fault::arm_wal_fault(2, WalFaultKind::TornAppend { keep: 3 });
        queue.enqueue(3, WalRecord::Delete { id: 3 }).unwrap();
        let err = queue.wait_durable(3).expect_err("queue must fail-stop");
        assert!(
            !matches!(err, PlanarError::QuorumTimeout { .. }),
            "fail-stop must surface the store error, not a quorum timeout: {err}"
        );
        fault::disarm_wal_fault();
        assert_eq!(queue.health().acked_lsn, 2, "prior acks hold");

        // Reopen repairs the torn tail and re-appends the parked
        // record; the same gate keeps guarding fresh acknowledgements.
        let h = queue.reopen().unwrap();
        assert!(h.acked_lsn >= 3, "parked record re-appended durably");
        queue.enqueue(4, WalRecord::Delete { id: 4 }).unwrap();
        gate.publish(4);
        queue.wait_durable(4).unwrap();
        assert!(gate.confirmed(4));
        assert_eq!(gate.timeouts(), 1, "exactly the lsn-2 wait timed out");
    }

    /// The quorum-gated write path across a WAL fail-stop, end to end:
    /// `write_quorum` surfaces a typed store error (never a silent or
    /// unacked-but-invisible apply), `reopen_wal` restores service, and
    /// replication then ships the re-appended record until the quorum
    /// confirms it and the replica reads back bit-identical.
    #[test]
    fn quorum_write_across_wal_fail_stop_reopens_and_heals() {
        use crate::concurrent::{ConcurrencyConfig, ConcurrentDurableShardedIndexSet};
        use crate::replicate::{AckPolicy, ChannelTransport, FailoverConfig, Primary, Replica};

        let _g = serialized();
        let pdir = TempDir::new("wal_quorum_p").unwrap();
        let rdir = TempDir::new("wal_quorum_r").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![1.0 + (i % 7) as f64, 2.0]).collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
        // Single shard: one WAL writer on the primary, so the armed
        // append index below is deterministic.
        let set = ShardedIndexSet::<VecStore>::build(
            table,
            domain,
            IndexConfig::with_budget(3),
            ShardConfig::round_robin(1),
        )
        .unwrap();
        let store = ConcurrentDurableShardedIndexSet::create(
            pdir.path(),
            set,
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap();
        let mut primary = Primary::new(store, FailoverConfig::default());
        primary.set_ack_policy(AckPolicy::Quorum(1));
        let down = ChannelTransport::new();
        let up = ChannelTransport::new();
        primary.add_replica(Box::new(down.clone()), Box::new(up.clone()));
        let mut replica: Replica<VecStore> = Replica::new(
            rdir.path().join("r0"),
            0,
            Box::new(down),
            Box::new(up),
            opts,
            FailoverConfig::default(),
        );
        // Seed the replica before arming anything.
        let mut now = 0u64;
        for _ in 0..64 {
            now += 100;
            primary.pump(now).unwrap();
            replica.poll(now).unwrap();
            if replica.is_seeded() {
                break;
            }
        }
        assert!(replica.is_seeded());

        // The next append on the primary's (only) writer is index 0 —
        // the seed traveled by checkpoint, not the WAL. Tear it.
        fault::arm_wal_fault(0, WalFaultKind::TornAppend { keep: 3 });
        let err = primary
            .write_quorum(
                &Mutation::Insert {
                    row: vec![5.0, 5.0],
                },
                now,
            )
            .expect_err("the WAL fail-stop must surface to the quorum writer");
        fault::disarm_wal_fault();
        assert!(
            !matches!(err, PlanarError::QuorumTimeout { .. }),
            "typed store error, not a quorum timeout: {err}"
        );

        // Reopen repairs the torn tail and re-appends the parked write;
        // replication then ships it and the quorum confirms.
        primary.store().reopen_wal().unwrap();
        let appended = primary.store().wal_health().appended_lsn;
        assert!(appended >= 1, "parked record re-appended");
        for _ in 0..256 {
            now += 100;
            primary.pump(now).unwrap();
            replica.poll(now).unwrap();
            if replica.applied_lsn() >= appended && primary.quorum_confirmed(appended) {
                break;
            }
        }
        assert!(
            primary.quorum_confirmed(appended),
            "the re-appended write must reach the quorum"
        );
        assert_eq!(replica.applied_lsn(), appended);
        assert_eq!(replica.divergence(), None);
        let read = replica
            .follower_read(crate::replicate::ReadConsistency::AtLeast(appended))
            .unwrap();
        let q = InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, 1e6).unwrap();
        assert_eq!(
            read.snapshot.query(&q).unwrap().sorted_ids(),
            primary.store().snapshot().query(&q).unwrap().sorted_ids(),
            "replica must converge on the reopened history"
        );
    }

    #[test]
    fn wal_tailer_follows_appends_rotation_and_detects_truncation() {
        let _g = serialized();
        let tmp = TempDir::new("wal_tailer").unwrap();
        let opts = WalOptions::default().segment_max_bytes(4096);
        let (mut writer, _) = WalWriter::open_repair(tmp.path(), opts).unwrap();
        let mut tailer = WalTailer::new(tmp.path(), 1);
        assert!(tailer.poll().unwrap().is_empty(), "nothing appended yet");

        for lsn in 1..=3u64 {
            writer
                .append_frame(lsn, &WalRecord::Delete { id: lsn as u32 })
                .unwrap();
        }
        writer.sync().unwrap();
        let got = tailer.poll().unwrap();
        assert_eq!(got.iter().map(|f| f.lsn).collect::<Vec<_>>(), vec![1, 2, 3]);
        for f in &got {
            let (consumed, lsn, rec) = parse_frame(&f.bytes).expect("shipped frame parses");
            assert_eq!(consumed, f.bytes.len());
            assert_eq!(lsn, f.lsn);
            assert_eq!(rec, WalRecord::Delete { id: lsn as u32 });
        }

        // Big rows force a rotation; the tailer follows into the new
        // segment, which carries the bumped term in its header.
        writer.set_term(2);
        for lsn in 4..=12u64 {
            writer
                .append_frame(
                    lsn,
                    &WalRecord::Insert {
                        id: lsn as u32,
                        row: vec![0.5; 64],
                    },
                )
                .unwrap();
        }
        writer.sync().unwrap();
        assert!(writer.health().segments >= 2, "rotation happened");
        let got = tailer.poll().unwrap();
        assert_eq!(
            got.iter().map(|f| f.lsn).collect::<Vec<_>>(),
            (4..=12).collect::<Vec<_>>()
        );
        assert!(
            got.iter().any(|f| f.term == 2),
            "rotated segment carries the bumped term"
        );

        // reset() replays from an earlier LSN.
        tailer.reset(10);
        let replay = tailer.poll().unwrap();
        assert_eq!(
            replay.iter().map(|f| f.lsn).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );

        // A tailer pointed below the oldest retained segment fails
        // loudly instead of shipping a gapped stream.
        drop(writer);
        let segments = list_segments(tmp.path()).unwrap();
        fs::remove_file(&segments[0]).unwrap();
        let mut gapped = WalTailer::new(tmp.path(), 1);
        assert!(
            gapped.poll().is_err(),
            "truncated history must not ship silently"
        );
    }
}
