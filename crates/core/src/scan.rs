//! The sequential-scan baseline (the "naïve approach" of paper §3).
//!
//! Every experiment in the paper compares the Planar index against a scan
//! over the entire dataset: `O(n·d')` for the inequality query and
//! `O(n·d' + k·log k)` for the top-k query. The scan is also the reference
//! implementation our property tests compare the index against — the index
//! must return *exactly* the same answer set.

use crate::query::{Cmp, InequalityQuery, TopKQuery};
use crate::table::{FeatureTable, PointId};
use crate::{PlanarError, Result};
use planar_geom::{dot_block_cols, dot_cmp_block, BLOCK_ROWS};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate in the top-k buffer, ordered by distance (max-heap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Candidate {
    pub dist: f64,
    pub id: PointId,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Distances are finite; ties broken by id for determinism.
        self.dist
            .total_cmp(&other.dist)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded max-heap holding the `k` best (smallest-distance) candidates
/// seen so far — the paper's "top-k buffer" (Algorithm 2).
#[derive(Debug, Clone)]
pub(crate) struct TopKBuffer {
    k: usize,
    heap: BinaryHeap<Candidate>,
}

impl TopKBuffer {
    pub(crate) fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer a candidate; keeps only the `k` smallest in `(dist, id)`
    /// order. The id tie-break makes the buffer content independent of the
    /// order candidates arrive in — indexed and scan execution visit points
    /// in different orders and must return identical answers even when
    /// distances tie exactly.
    pub(crate) fn offer(&mut self, dist: f64, id: PointId) {
        let cand = Candidate { dist, id };
        if self.heap.len() < self.k {
            self.heap.push(cand);
        } else if let Some(worst) = self.heap.peek() {
            if cand < *worst {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    pub(crate) fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Largest distance currently kept, if the buffer is non-empty.
    pub(crate) fn worst(&self) -> Option<f64> {
        self.heap.peek().map(|c| c.dist)
    }

    /// Fold another buffer's candidates into this one. Because the buffer
    /// keeps the `k` smallest candidates under the total `(dist, id)`
    /// order, merging per-chunk buffers yields exactly the buffer a single
    /// pass over all candidates would have produced — the basis of the
    /// parallel top-k path's determinism.
    pub(crate) fn merge(&mut self, other: TopKBuffer) {
        for c in other.heap {
            self.offer(c.dist, c.id);
        }
    }

    /// Drain into `(id, dist)` pairs sorted by ascending distance.
    pub(crate) fn into_sorted(self) -> Vec<(PointId, f64)> {
        let mut v: Vec<Candidate> = self.heap.into_vec();
        v.sort();
        v.into_iter().map(|c| (c.id, c.dist)).collect()
    }
}

/// Sequential-scan evaluation over a [`FeatureTable`].
#[derive(Debug, Clone, Copy)]
pub struct SeqScan<'a> {
    table: &'a FeatureTable,
}

impl<'a> SeqScan<'a> {
    /// A scanner over `table`.
    pub fn new(table: &'a FeatureTable) -> Self {
        Self { table }
    }

    /// All point ids satisfying the inequality, in id order.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] when the query dimensionality
    /// differs from the table's.
    pub fn evaluate(&self, query: &InequalityQuery) -> Result<Vec<PointId>> {
        self.check_dim(query)?;
        let mut out = Vec::new();
        self.masked(query, |first, mut mask| {
            while mask != 0 {
                out.push(first + mask.trailing_zeros());
                mask &= mask - 1;
            }
        });
        Ok(out)
    }

    /// Count of satisfying points (selectivity numerator) without
    /// materializing ids.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn count(&self, query: &InequalityQuery) -> Result<usize> {
        self.check_dim(query)?;
        let mut count = 0;
        self.masked(query, |_, mask| {
            count += mask.count_ones() as usize;
        });
        Ok(count)
    }

    /// The top-k satisfying points nearest the query hyperplane, sorted by
    /// ascending distance (paper Problem 2, solved naïvely).
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn top_k(&self, q: &TopKQuery) -> Result<Vec<(PointId, f64)>> {
        self.check_dim(&q.query)?;
        let mut buf = TopKBuffer::new(q.k);
        self.blocked(&q.query, |id, dot| {
            if q.query.satisfies_dot(dot) {
                buf.offer(q.query.distance_from_dot(dot), id);
            }
        });
        Ok(buf.into_sorted())
    }

    /// Drive `f(id, ⟨a, row⟩)` over every row in id order, computing the
    /// scalar products one columnar block at a time with
    /// [`dot_block_cols`]. The dot buffer lives on the stack, so the scan
    /// loop itself allocates nothing; results are bit-identical to the
    /// row-at-a-time path (see the accumulation guarantee in
    /// `planar_geom::kernels`).
    fn blocked(&self, query: &InequalityQuery, mut f: impl FnMut(PointId, f64)) {
        let cols = self.table.columns();
        let mut dots = [0.0f64; BLOCK_ROWS];
        for seg in cols.segments(0, self.table.len() as PointId) {
            dot_block_cols(query.a(), seg.cols, cols.stride(), &mut dots[..seg.lanes]);
            for (i, &dot) in dots[..seg.lanes].iter().enumerate() {
                f(seg.first + i as PointId, dot);
            }
        }
    }

    /// Drive `f(first_id, predicate_mask)` over every columnar block in id
    /// order with the fused [`dot_cmp_block`] kernel — the scalar products
    /// never leave the vector registers. Bit `i` of the mask corresponds to
    /// point `first_id + i`.
    fn masked(&self, query: &InequalityQuery, mut f: impl FnMut(PointId, u64)) {
        let cols = self.table.columns();
        let leq = query.cmp() == Cmp::Leq;
        for seg in cols.segments(0, self.table.len() as PointId) {
            let mask = dot_cmp_block(
                query.a(),
                seg.cols,
                cols.stride(),
                seg.lanes,
                query.b(),
                leq,
            );
            f(seg.first, mask);
        }
    }

    fn check_dim(&self, query: &InequalityQuery) -> Result<()> {
        if query.dim() != self.table.dim() {
            return Err(PlanarError::DimensionMismatch {
                expected: self.table.dim(),
                found: query.dim(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cmp;

    fn table() -> FeatureTable {
        FeatureTable::from_rows(
            2,
            vec![
                vec![1.0, 1.0], // ⟨(1,1),·⟩ = 2
                vec![2.0, 3.0], // 5
                vec![4.0, 4.0], // 8
                vec![0.5, 0.5], // 1
            ],
        )
        .unwrap()
    }

    #[test]
    fn evaluate_leq_and_geq() {
        let t = table();
        let scan = SeqScan::new(&t);
        let q = InequalityQuery::new(vec![1.0, 1.0], Cmp::Leq, 5.0).unwrap();
        assert_eq!(scan.evaluate(&q).unwrap(), vec![0, 1, 3]);
        let g = InequalityQuery::new(vec![1.0, 1.0], Cmp::Geq, 5.0).unwrap();
        assert_eq!(scan.evaluate(&g).unwrap(), vec![1, 2]);
        assert_eq!(scan.count(&q).unwrap(), 3);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let t = table();
        let scan = SeqScan::new(&t);
        let q = InequalityQuery::leq(vec![1.0], 5.0).unwrap();
        assert!(scan.evaluate(&q).is_err());
        assert!(scan.count(&q).is_err());
    }

    #[test]
    fn top_k_orders_by_distance() {
        let t = table();
        let scan = SeqScan::new(&t);
        // distances to x+y=5: ids 0→3/√2, 1→0, 2→3/√2(unsat), 3→4/√2
        let q = TopKQuery::new(InequalityQuery::leq(vec![1.0, 1.0], 5.0).unwrap(), 2).unwrap();
        let res = scan.top_k(&q).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].0, 1);
        assert!((res[0].1 - 0.0).abs() < 1e-12);
        assert_eq!(res[1].0, 0);
    }

    #[test]
    fn top_k_with_k_exceeding_matches() {
        let t = table();
        let scan = SeqScan::new(&t);
        let q = TopKQuery::new(InequalityQuery::leq(vec![1.0, 1.0], 2.0).unwrap(), 10).unwrap();
        let res = scan.top_k(&q).unwrap();
        assert_eq!(res.len(), 2); // only ids 0 and 3 satisfy
        assert!(res[0].1 <= res[1].1);
    }

    #[test]
    fn blocked_scan_matches_rowwise_across_block_boundaries() {
        // More rows than one columnar block so the loop takes several
        // blocks plus a ragged tail.
        let n = 3 * BLOCK_ROWS + 17;
        let t = FeatureTable::from_rows(
            3,
            (0..n).map(|i| vec![i as f64 * 0.25, (i % 7) as f64, 1.0 / (i + 1) as f64]),
        )
        .unwrap();
        let scan = SeqScan::new(&t);
        let q = InequalityQuery::new(vec![0.5, 1.5, 2.0], Cmp::Leq, 40.0).unwrap();
        let expected: Vec<PointId> = t
            .iter()
            .filter(|(_, row)| q.satisfies(row))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(scan.evaluate(&q).unwrap(), expected);
        assert_eq!(scan.count(&q).unwrap(), expected.len());

        let topk = TopKQuery::new(q.clone(), 9).unwrap();
        let mut buf = TopKBuffer::new(9);
        for (id, row) in t.iter() {
            if q.satisfies(row) {
                buf.offer(q.distance(row), id);
            }
        }
        assert_eq!(scan.top_k(&topk).unwrap(), buf.into_sorted());
    }

    #[test]
    fn buffer_merge_equals_single_pass() {
        let cands: Vec<(f64, PointId)> = (0..40)
            .map(|i| (((i * 13) % 17) as f64 * 0.5, i as PointId))
            .collect();
        let mut single = TopKBuffer::new(5);
        for &(d, id) in &cands {
            single.offer(d, id);
        }
        let mut left = TopKBuffer::new(5);
        let mut right = TopKBuffer::new(5);
        for &(d, id) in &cands[..23] {
            left.offer(d, id);
        }
        for &(d, id) in &cands[23..] {
            right.offer(d, id);
        }
        left.merge(right);
        assert_eq!(left.into_sorted(), single.into_sorted());
    }

    #[test]
    fn buffer_keeps_k_smallest_with_deterministic_ties() {
        let mut buf = TopKBuffer::new(2);
        buf.offer(5.0, 0);
        buf.offer(1.0, 1);
        buf.offer(1.0, 2);
        buf.offer(3.0, 3);
        let out = buf.into_sorted();
        assert_eq!(out, vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn buffer_worst_and_full() {
        let mut buf = TopKBuffer::new(2);
        assert!(!buf.is_full());
        assert_eq!(buf.worst(), None);
        buf.offer(2.0, 0);
        buf.offer(7.0, 1);
        assert!(buf.is_full());
        assert_eq!(buf.worst(), Some(7.0));
        buf.offer(1.0, 2); // evicts 7.0
        assert_eq!(buf.worst(), Some(2.0));
    }
}
