//! Parallel execution scaffolding: thread configuration, reusable query
//! scratch space, and the blocked / chunked verification kernels shared by
//! Algorithm 1 and Algorithm 2.
//!
//! ## Determinism contract
//!
//! Every parallel path in this crate returns results **bit-identical to and
//! identically ordered with** its serial counterpart, for any thread count:
//!
//! * Intermediate-interval (II) candidates are verified in ascending-id
//!   order. Splitting a sorted id list into contiguous chunks and
//!   concatenating the per-chunk matches in chunk order reproduces the
//!   serial order exactly.
//! * Scalar products go through the columnar SIMD kernels
//!   ([`planar_geom::dot_cmp_block`] / [`planar_geom::dot_block_cols`]),
//!   whose per-lane accumulation is bit-identical to the row-at-a-time
//!   [`planar_geom::dot_slices`] path regardless of the dispatched
//!   implementation (AVX2 or portable — see `planar_geom::kernels`).
//! * Top-k merging relies on the total `(distance, id)` order of the top-k
//!   buffer, which makes its contents independent of candidate arrival
//!   order.
//!
//! Work is distributed over `std::thread::scope` — no thread pool, no extra
//! dependencies; workers borrow the index and table immutably.

use crate::quant::{BlockClass, QuantFilter, QuantFilterStats};
use crate::query::{Cmp, InequalityQuery};
use crate::scan::TopKBuffer;
use crate::table::{ColSegment, FeatureTable, PointId};
use crate::{PlanarError, Result};
use planar_geom::{dot_block_cols, dot_cmp_block, dot_slices, BLOCK_ROWS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Minimum segment width (lanes) for the quantized filter to engage;
/// shorter runs go straight to the exact kernel (see
/// [`quant_segment_mask`]).
const QUANT_MIN_SEGMENT_LANES: usize = 16;

/// Default minimum II size before a single query's verification is split
/// across threads. Below this, fan-out overhead exceeds the win.
pub const DEFAULT_PARALLEL_VERIFY_THRESHOLD: usize = 8192;

/// Default minimum II size before multi-index intersection pruning is
/// attempted. A key classification costs ~2 comparisons per candidate per
/// auxiliary index; under this many candidates the rank lookups needed to
/// set the filters up cost more than the scalar products they could save.
pub const DEFAULT_INTERSECT_MIN_CANDIDATES: usize = 64;

/// Counts clamp events: how many times a requested thread count of 0, or
/// one exceeding the work available, was clamped by [`batch_plan`] /
/// worker planning. See [`thread_clamp_events`].
static THREAD_CLAMP_EVENTS: AtomicU64 = AtomicU64::new(0);

/// How many times an [`ExecutionConfig`] thread count was clamped because
/// it was 0 or exceeded the batch/work size. A monotonically increasing
/// process-wide debug counter: a non-zero, growing value means callers are
/// configuring more workers than there is work (or zero workers), which is
/// handled cleanly but worth fixing at the call site.
pub fn thread_clamp_events() -> u64 {
    THREAD_CLAMP_EVENTS.load(Ordering::Relaxed)
}

/// Clamp a requested worker count to `[1, available]`, counting the event
/// when the request was out of range (0 or more workers than work items).
pub(crate) fn clamp_workers(requested: usize, available: usize) -> usize {
    let clamped = requested.min(available).max(1);
    if clamped != requested {
        THREAD_CLAMP_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
    clamped
}

/// Counts queries skipped because a batch's deadline expired before they
/// started. See [`deadline_events`].
static DEADLINE_EVENTS: AtomicU64 = AtomicU64::new(0);

/// How many queries, process-wide, came back as
/// [`crate::ServedBy::Partial`] placeholders because their batch's
/// [`ExecutionConfig::deadline`] expired before they ran. Monotonically
/// increasing; a growing value means batches are regularly overrunning
/// their budget and callers should shrink batches, raise the budget, or
/// add threads.
pub fn deadline_events() -> u64 {
    DEADLINE_EVENTS.load(Ordering::Relaxed)
}

pub(crate) fn record_deadline_events(skipped: u64) {
    if skipped > 0 {
        DEADLINE_EVENTS.fetch_add(skipped, Ordering::Relaxed);
    }
}

/// Poll-based wall-clock budget for one batch call. Created once at batch
/// entry; [`Self::expired`] costs one `Instant::now()` and is only called
/// at chunk boundaries (before each query), never inside the verification
/// hot loop. With no deadline configured it never reads the clock at all.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeadlineGuard {
    started: Option<Instant>,
    budget: Duration,
}

impl DeadlineGuard {
    pub(crate) fn new(deadline: Option<Duration>) -> Self {
        Self {
            started: deadline.is_some().then(Instant::now),
            budget: deadline.unwrap_or_default(),
        }
    }

    /// Has the budget been spent? `false` forever when unbounded.
    #[inline]
    pub(crate) fn expired(&self) -> bool {
        match self.started {
            Some(t0) => t0.elapsed() >= self.budget,
            None => false,
        }
    }
}

/// Run `f`, converting a panic into a typed [`PlanarError::Internal`]
/// carrying the panic message — the per-query isolation primitive behind
/// the `*_batch` APIs: one poisoned query must not abort its batch.
pub(crate) fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "worker panicked".to_string()
        };
        PlanarError::Internal(msg)
    })
}

/// Thread-count and crossover configuration for the parallel query engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Number of worker threads; `1` means fully serial execution.
    pub threads: usize,
    /// Minimum intermediate-interval size before one query's verification
    /// is chunked across threads.
    pub parallel_verify_threshold: usize,
    /// Intersect the chosen index's intermediate interval with the
    /// accept/reject intervals of the other healthy indices before
    /// verification (on by default; off is the ablation control arm).
    /// Answers are identical either way — pruning only skips scalar
    /// products whose outcome a sibling index already proves.
    pub intersect_pruning: bool,
    /// Minimum intermediate-interval size before intersection pruning is
    /// attempted (the cost-model crossover).
    pub intersect_min_candidates: usize,
    /// Wall-clock budget for a whole batch call (`None` = unbounded).
    /// Polled at chunk boundaries only — one `Instant::now()` per query,
    /// never inside the verification hot loop. Queries not started when
    /// the budget expires come back as
    /// [`crate::ServedBy::Partial`] placeholders with empty results
    /// instead of stalling the batch (see
    /// [`crate::PlanarIndexSet::query_batch`]).
    pub deadline: Option<Duration>,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        Self::serial()
    }
}

impl ExecutionConfig {
    /// Fully serial execution (one thread).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            parallel_verify_threshold: DEFAULT_PARALLEL_VERIFY_THRESHOLD,
            intersect_pruning: true,
            intersect_min_candidates: DEFAULT_INTERSECT_MIN_CANDIDATES,
            deadline: None,
        }
    }

    /// Execution over `threads` worker threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::serial()
        }
    }

    /// One thread per available CPU (falls back to serial if the platform
    /// cannot report parallelism).
    pub fn available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// Override the II crossover threshold (builder style).
    pub fn verify_threshold(mut self, threshold: usize) -> Self {
        self.parallel_verify_threshold = threshold.max(1);
        self
    }

    /// Enable or disable multi-index intersection pruning (builder style).
    pub fn intersect_pruning(mut self, on: bool) -> Self {
        self.intersect_pruning = on;
        self
    }

    /// Override the intersection-pruning crossover (builder style).
    pub fn intersect_min_candidates(mut self, min: usize) -> Self {
        self.intersect_min_candidates = min;
        self
    }

    /// Set a wall-clock budget for batch calls (builder style). See the
    /// [`Self::deadline`] field for partial-result semantics.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// True when this configuration may spawn worker threads.
    #[inline]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// Reusable per-worker buffers for the query hot loop.
///
/// Algorithms 1 and 2 stage intermediate-interval candidate ids and their
/// blocked scalar products here instead of allocating per query; a scratch
/// threaded through a batch of queries makes the verification loop
/// allocation-free once the buffers have grown to the workload's high-water
/// mark.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// II candidate ids, sorted ascending before verification.
    pub(crate) ids: Vec<PointId>,
    /// Blocked scalar-product outputs, one per id in the current run.
    pub(crate) dots: Vec<f64>,
    /// Candidates wholesale-accepted by a sibling index during
    /// intersection pruning (ascending id order).
    pub(crate) accepted: Vec<PointId>,
    /// Verified II matches staged for the merge with `accepted`.
    pub(crate) verified_out: Vec<PointId>,
}

impl QueryScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for intermediate intervals of up to `capacity`
    /// points, so the first query allocates nothing.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ids: Vec::with_capacity(capacity),
            dots: Vec::with_capacity(capacity.min(BLOCK_ROWS)),
            accepted: Vec::new(),
            verified_out: Vec::new(),
        }
    }
}

/// A shared pool of [`QueryScratch`] buffers for concurrent readers.
///
/// Snapshot readers (see `crate::concurrent`) arrive on arbitrary threads
/// and would otherwise either allocate a fresh scratch per query or hold
/// one scratch per long-lived thread. The pool lets short-lived reader
/// tasks [`Self::take`] a warmed scratch, run any number of queries with
/// it, and [`Self::put`] it back — buffers keep their high-water-mark
/// capacity across owners, so a steady mixed workload settles into zero
/// verification-loop allocation regardless of which thread serves which
/// query.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: std::sync::Mutex<Vec<QueryScratch>>,
}

impl ScratchPool {
    /// Empty pool; scratches are created on demand by [`Self::take`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool pre-filled with `n` scratches sized for intermediate intervals
    /// of up to `capacity` points.
    pub fn with_capacity(n: usize, capacity: usize) -> Self {
        let mut free = Vec::with_capacity(n);
        free.resize_with(n, || QueryScratch::with_capacity(capacity));
        Self {
            free: std::sync::Mutex::new(free),
        }
    }

    /// Pop a pooled scratch, or create a fresh one when the pool is empty
    /// (never blocks).
    pub fn take(&self) -> QueryScratch {
        self.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Return a scratch to the pool; its grown buffers are kept warm for
    /// the next taker.
    pub fn put(&self, scratch: QueryScratch) {
        self.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
    }

    /// Scratches currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Split `items` into `workers` contiguous chunks, apply `f` to each chunk
/// on its own scoped thread, and return the per-chunk results in chunk
/// order. `workers` must be ≥ 2 and `items` non-empty.
pub(crate) fn map_chunks<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&[I]) -> T + Sync,
{
    let chunk_len = items.len().div_ceil(workers.max(1)).max(1);
    let chunks: Vec<&[I]> = items.chunks(chunk_len).collect();
    let mut results: Vec<Option<T>> = Vec::with_capacity(chunks.len());
    results.resize_with(chunks.len(), || None);
    let f = &f;
    std::thread::scope(|s| {
        for (slot, chunk) in results.iter_mut().zip(&chunks) {
            let chunk: &[I] = chunk;
            s.spawn(move || {
                *slot = Some(f(chunk));
            });
        }
    });
    // Unreachable in practice: `thread::scope` re-raises any worker panic
    // at the join above, so every slot is filled here. Batch callers wrap
    // per-item work in `run_isolated`, which keeps worker panics from ever
    // reaching the scope join.
    results
        .into_iter()
        .map(|r| r.expect("scope join guarantees completion"))
        .collect()
}

/// Verify ascending-sorted candidate ids against `query` with the fused
/// columnar kernel, pushing satisfying ids onto `out` in ascending-id
/// order.
///
/// Consecutive ids form maximal runs; each run is walked through the
/// table's interleaved-block columnar mirror one [`ColSegment`] at a time,
/// and [`dot_cmp_block`] evaluates the whole segment's predicate into a
/// bitmask — the scalar products are never materialized.
///
/// When a quantized tier is active, each segment first goes through the
/// fixed-point classifier: lanes it proves in or out are settled without
/// touching `f64` rows, and only the uncertainty band is re-verified at
/// full precision (whole-segment kernel when the band is dense, per-lane
/// [`dot_slices`] when sparse). The emitted mask is identical to the pure
/// `f64` mask by the classifier's soundness contract, which the debug
/// assertions below check directly.
///
/// Returns the quantized-filter counters for this call (all zeros when the
/// tier is off).
///
/// [`ColSegment`]: crate::table::ColSegment
pub(crate) fn verify_ids_blocked(
    query: &InequalityQuery,
    table: &FeatureTable,
    ids: &[PointId],
    out: &mut Vec<PointId>,
) -> QuantFilterStats {
    let cols = table.columns();
    let stride = cols.stride();
    let leq = query.cmp() == Cmp::Leq;
    let mut stats = QuantFilterStats::default();
    let mut filter = table.quant().map(|q| {
        stats.tier = q.tier();
        QuantFilter::new(query, q)
    });
    let mut s = 0;
    while s < ids.len() {
        // Maximal consecutive-id run starting at s.
        let first = ids[s];
        let mut e = s + 1;
        while e < ids.len() && ids[e] == first + (e - s) as PointId {
            e += 1;
        }
        let run = (e - s) as PointId;
        for seg in cols.segments(first, first + run) {
            let mut mask = match &mut filter {
                None => dot_cmp_block(query.a(), seg.cols, stride, seg.lanes, query.b(), leq),
                Some(f) => quant_segment_mask(f, query, table, &seg, stride, leq, &mut stats),
            };
            while mask != 0 {
                out.push(seg.first + mask.trailing_zeros());
                mask &= mask - 1;
            }
        }
        s = e;
    }
    stats
}

/// Evaluate one segment's predicate mask through the quantized filter,
/// falling back to (or re-verifying the uncertainty band with) the exact
/// `f64` path. The returned mask is bit-identical to
/// [`dot_cmp_block`] on the same segment.
fn quant_segment_mask(
    filter: &mut QuantFilter<'_>,
    query: &InequalityQuery,
    table: &FeatureTable,
    seg: &ColSegment<'_>,
    stride: usize,
    leq: bool,
    stats: &mut QuantFilterStats,
) -> u64 {
    stats.lanes += seg.lanes;
    // Short runs can't amortize the classify dispatch: the quantized scan
    // only beats the exact kernel through memory traffic, and a few lanes
    // move few bytes either way. Taking the exact path directly keeps
    // scattered-candidate workloads at baseline cost, and counting the
    // lanes as fallback tells the autotuner the filter isn't engaging.
    if seg.lanes < QUANT_MIN_SEGMENT_LANES {
        stats.fallback += seg.lanes;
        return dot_cmp_block(query.a(), seg.cols, stride, seg.lanes, query.b(), leq);
    }
    let lanes_mask = if seg.lanes == BLOCK_ROWS {
        u64::MAX
    } else {
        (1u64 << seg.lanes) - 1
    };
    match filter.classify(seg.first, seg.lanes) {
        BlockClass::Fallback => {
            stats.fallback += seg.lanes;
            dot_cmp_block(query.a(), seg.cols, stride, seg.lanes, query.b(), leq)
        }
        BlockClass::Classified { accept, reject } => {
            let band = !(accept | reject) & lanes_mask;
            let band_lanes = band.count_ones() as usize;
            stats.accepted += accept.count_ones() as usize;
            stats.rejected += (reject & lanes_mask).count_ones() as usize;
            stats.reverified += band_lanes;
            if band_lanes == 0 {
                return accept;
            }
            if band_lanes * 4 >= seg.lanes {
                // Dense band: one whole-segment kernel pass costs less than
                // gathering rows lane by lane. Soundness makes the results
                // interchangeable: accept ⊆ exact and reject ∩ exact = ∅.
                let exact = dot_cmp_block(query.a(), seg.cols, stride, seg.lanes, query.b(), leq);
                debug_assert_eq!(accept & !exact, 0, "quant accept disagrees with f64 path");
                debug_assert_eq!(reject & exact, 0, "quant reject disagrees with f64 path");
                return exact;
            }
            // Sparse band: settle each uncertain lane with the row-wise
            // reference dot (the definition of the exact answer).
            let mut mask = accept;
            let mut b = band;
            while b != 0 {
                let l = b.trailing_zeros();
                let id = seg.first + l;
                if query.satisfies_dot(dot_slices(query.a(), table.row(id))) {
                    mask |= 1u64 << l;
                }
                b &= b - 1;
            }
            mask
        }
    }
}

/// Inequality-query II verification: serial blocked kernel, or chunked
/// across `exec.threads` workers when the candidate count crosses
/// `exec.parallel_verify_threshold`. Output order is ascending-id either
/// way (see module docs).
pub(crate) fn verify_ids(
    query: &InequalityQuery,
    table: &FeatureTable,
    ids: &[PointId],
    exec: &ExecutionConfig,
    out: &mut Vec<PointId>,
) -> QuantFilterStats {
    if exec.is_parallel() && ids.len() >= exec.parallel_verify_threshold.max(2) {
        let workers = exec.threads.min(ids.len());
        let per_chunk = map_chunks(ids, workers, |chunk| {
            let mut local_out = Vec::with_capacity(chunk.len());
            let stats = verify_ids_blocked(query, table, chunk, &mut local_out);
            (local_out, stats)
        });
        let mut stats = QuantFilterStats::default();
        for (part, part_stats) in per_chunk {
            out.extend_from_slice(&part);
            stats.merge(&part_stats);
        }
        stats
    } else {
        verify_ids_blocked(query, table, ids, out)
    }
}

/// Top-k II verification over ascending-sorted candidate ids: blocked
/// scalar products feed the top-k buffer serially, or per-chunk buffers are
/// merged when the candidate count crosses the threshold. Buffer contents
/// are arrival-order independent, so both paths yield identical results.
pub(crate) fn verify_top_k(
    query: &InequalityQuery,
    table: &FeatureTable,
    ids: &[PointId],
    k: usize,
    exec: &ExecutionConfig,
    dots: &mut Vec<f64>,
    buffer: &mut TopKBuffer,
) {
    if exec.is_parallel() && ids.len() >= exec.parallel_verify_threshold.max(2) {
        let workers = exec.threads.min(ids.len());
        let per_chunk = map_chunks(ids, workers, |chunk| {
            let mut local_dots = Vec::new();
            let mut local_buf = TopKBuffer::new(k);
            verify_top_k_blocked(query, table, chunk, &mut local_dots, &mut local_buf);
            local_buf
        });
        for part in per_chunk {
            buffer.merge(part);
        }
    } else {
        verify_top_k_blocked(query, table, ids, dots, buffer);
    }
}

/// Serial blocked top-k verification of one id run list. Unlike the
/// inequality path, top-k ranking needs the raw scalar products, so runs go
/// through [`dot_block_cols`] into the `dots` scratch (at most
/// [`BLOCK_ROWS`] entries per segment).
fn verify_top_k_blocked(
    query: &InequalityQuery,
    table: &FeatureTable,
    ids: &[PointId],
    dots: &mut Vec<f64>,
    buffer: &mut TopKBuffer,
) {
    let cols = table.columns();
    let stride = cols.stride();
    let mut s = 0;
    while s < ids.len() {
        let first = ids[s];
        let mut e = s + 1;
        while e < ids.len() && ids[e] == first + (e - s) as PointId {
            e += 1;
        }
        let run = (e - s) as PointId;
        for seg in cols.segments(first, first + run) {
            dots.resize(seg.lanes, 0.0);
            dot_block_cols(query.a(), seg.cols, stride, &mut dots[..seg.lanes]);
            for (i, &dot) in dots[..seg.lanes].iter().enumerate() {
                if query.satisfies_dot(dot) {
                    buffer.offer(query.distance_from_dot(dot), seg.first + i as PointId);
                }
            }
        }
        s = e;
    }
}

/// Sharding plan for a batch of queries: how many workers a batch of
/// `batch_len` queries uses under `exec`, and how many threads remain for
/// intra-query verification inside each worker.
pub(crate) fn batch_plan(exec: &ExecutionConfig, batch_len: usize) -> (usize, ExecutionConfig) {
    let workers = clamp_workers(exec.threads, batch_len);
    let inner = ExecutionConfig {
        threads: (exec.threads / workers).max(1),
        ..*exec
    };
    (workers, inner)
}

/// Fan-out plan for a sharded set: how many workers take whole shards
/// under `exec`, and how many threads remain for each shard's own batch
/// engine inside a worker. The shard loop is the outer parallel dimension
/// (shards share nothing), so it gets first claim on the threads.
pub(crate) fn shard_plan(exec: &ExecutionConfig, shards: usize) -> (usize, ExecutionConfig) {
    let workers = clamp_workers(exec.threads, shards);
    let inner = ExecutionConfig {
        threads: (exec.threads / workers).max(1),
        ..*exec
    };
    (workers, inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cmp;

    fn table(n: usize) -> FeatureTable {
        FeatureTable::from_rows(
            2,
            (0..n).map(|i| vec![i as f64 * 0.5, (n - i) as f64 * 0.25]),
        )
        .unwrap()
    }

    fn query() -> InequalityQuery {
        InequalityQuery::new(vec![1.0, 2.0], Cmp::Leq, 60.0).unwrap()
    }

    #[test]
    fn config_defaults_are_serial() {
        let c = ExecutionConfig::default();
        assert_eq!(c.threads, 1);
        assert!(!c.is_parallel());
        assert_eq!(
            c.parallel_verify_threshold,
            DEFAULT_PARALLEL_VERIFY_THRESHOLD
        );
        assert_eq!(ExecutionConfig::with_threads(0).threads, 1);
        assert!(ExecutionConfig::available_parallelism().threads >= 1);
        assert_eq!(
            ExecutionConfig::serial()
                .verify_threshold(0)
                .parallel_verify_threshold,
            1
        );
        assert!(c.intersect_pruning);
        assert_eq!(c.intersect_min_candidates, DEFAULT_INTERSECT_MIN_CANDIDATES);
        let ablation = ExecutionConfig::serial()
            .intersect_pruning(false)
            .intersect_min_candidates(0);
        assert!(!ablation.intersect_pruning);
        assert_eq!(ablation.intersect_min_candidates, 0);
        assert_eq!(c.deadline, None);
        assert_eq!(
            ExecutionConfig::serial()
                .with_deadline(std::time::Duration::from_millis(5))
                .deadline,
            Some(std::time::Duration::from_millis(5))
        );
    }

    #[test]
    fn deadline_guard_semantics() {
        let unbounded = DeadlineGuard::new(None);
        assert!(!unbounded.expired());
        let spent = DeadlineGuard::new(Some(Duration::ZERO));
        assert!(spent.expired());
        let generous = DeadlineGuard::new(Some(Duration::from_secs(3600)));
        assert!(!generous.expired());
    }

    #[test]
    fn blocked_verification_matches_rowwise() {
        let t = table(500);
        let q = query();
        // Non-contiguous ids: every third point, plus a contiguous tail.
        let ids: Vec<PointId> = (0..500u32).filter(|i| i % 3 == 0 || *i > 400).collect();
        let mut expected = Vec::new();
        for &id in &ids {
            if q.satisfies(t.row(id)) {
                expected.push(id);
            }
        }
        let mut got = Vec::new();
        verify_ids_blocked(&q, &t, &ids, &mut got);
        assert_eq!(got, expected);
    }

    #[test]
    fn parallel_verification_is_identical_to_serial() {
        let t = table(2000);
        let q = query();
        let ids: Vec<PointId> = (0..2000u32).collect();
        let mut serial = Vec::new();
        verify_ids_blocked(&q, &t, &ids, &mut serial);
        for threads in [2, 3, 8] {
            let exec = ExecutionConfig::with_threads(threads).verify_threshold(1);
            let mut out = Vec::new();
            verify_ids(&q, &t, &ids, &exec, &mut out);
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_top_k_is_identical_to_serial() {
        let t = table(2000);
        let q = query();
        let ids: Vec<PointId> = (0..2000u32).collect();
        let mut dots = Vec::new();
        let mut serial_buf = TopKBuffer::new(7);
        verify_top_k(
            &q,
            &t,
            &ids,
            7,
            &ExecutionConfig::serial(),
            &mut dots,
            &mut serial_buf,
        );
        let serial = serial_buf.into_sorted();
        for threads in [2, 5] {
            let exec = ExecutionConfig::with_threads(threads).verify_threshold(1);
            let mut buf = TopKBuffer::new(7);
            verify_top_k(&q, &t, &ids, 7, &exec, &mut dots, &mut buf);
            assert_eq!(buf.into_sorted(), serial, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let items: Vec<u32> = (0..97).collect();
        let parts = map_chunks(&items, 4, |c| c.to_vec());
        let flat: Vec<u32> = parts.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn batch_plan_divides_threads() {
        let exec = ExecutionConfig::with_threads(8);
        let (workers, inner) = batch_plan(&exec, 4);
        assert_eq!(workers, 4);
        assert_eq!(inner.threads, 2);
        let (workers, inner) = batch_plan(&exec, 100);
        assert_eq!(workers, 8);
        assert_eq!(inner.threads, 1);
        let (workers, _) = batch_plan(&ExecutionConfig::serial(), 100);
        assert_eq!(workers, 1);
    }

    #[test]
    fn shard_plan_gives_shards_first_claim() {
        let exec = ExecutionConfig::with_threads(8);
        let (workers, inner) = shard_plan(&exec, 4);
        assert_eq!(workers, 4);
        assert_eq!(inner.threads, 2);
        let (workers, inner) = shard_plan(&exec, 16);
        assert_eq!(workers, 8);
        assert_eq!(inner.threads, 1);
        let (workers, inner) = shard_plan(&ExecutionConfig::serial(), 8);
        assert_eq!(workers, 1);
        assert_eq!(inner.threads, 1);
    }

    #[test]
    fn out_of_range_thread_counts_clamp_and_count() {
        let before = thread_clamp_events();
        // Zero threads (possible via direct struct construction).
        let zero = ExecutionConfig {
            threads: 0,
            ..ExecutionConfig::serial()
        };
        let (workers, inner) = batch_plan(&zero, 10);
        assert_eq!(workers, 1);
        assert_eq!(inner.threads, 1);
        // More threads than queries in the batch.
        let (workers, _) = batch_plan(&ExecutionConfig::with_threads(64), 3);
        assert_eq!(workers, 3);
        // An in-range request does not count.
        let counted = thread_clamp_events() - before;
        let (workers, _) = batch_plan(&ExecutionConfig::with_threads(2), 10);
        assert_eq!(workers, 2);
        assert!(counted >= 2, "clamp events must be counted, got {counted}");
        assert_eq!(thread_clamp_events() - before, counted);
    }

    #[test]
    fn run_isolated_converts_panics_to_internal_errors() {
        assert_eq!(run_isolated(|| 41 + 1).unwrap(), 42);
        let err = run_isolated(|| -> u32 { panic!("poisoned query") }).unwrap_err();
        assert_eq!(err, PlanarError::Internal("poisoned query".into()));
        let err = run_isolated(|| -> u32 { panic!("{} {}", "formatted", 7) }).unwrap_err();
        assert_eq!(err, PlanarError::Internal("formatted 7".into()));
    }

    #[test]
    fn scratch_pool_recycles_warmed_buffers() {
        let pool = ScratchPool::with_capacity(2, 64);
        assert_eq!(pool.idle(), 2);
        let mut a = pool.take();
        let b = pool.take();
        let c = pool.take(); // pool empty: freshly created
        assert_eq!(pool.idle(), 0);
        a.ids.reserve(1024);
        let warmed = a.ids.capacity();
        pool.put(a);
        pool.put(b);
        pool.put(c);
        assert_eq!(pool.idle(), 3);
        // LIFO: the most recently returned scratch comes back first…
        let _c = pool.take();
        let _b = pool.take();
        let a = pool.take();
        // …and the grown buffer kept its high-water-mark capacity.
        assert!(a.ids.capacity() >= warmed);
    }
}
