//! Epoch-based snapshot isolation: **concurrent readers under a single
//! writer**, without reader locks on the query path.
//!
//! Every engine in this crate answers queries through `&self` but mutates
//! through `&mut self` — correct, but reader-excluding: a process serving
//! a mixed read/write workload had to serialize query batches behind every
//! mutation. This module converts the mutation path into an **epoch
//! scheme**:
//!
//! * the published state lives in an [`EpochCell`] as an immutable
//!   `Arc<PlanarIndexSet>` (or `Arc<ShardedIndexSet>`); readers call
//!   [`ConcurrentPlanarIndexSet::snapshot`] — one brief `RwLock` read and
//!   an `Arc` clone — and then run `query_batch`/`top_k_batch` against
//!   the snapshot with **no further synchronization**, for as long as
//!   they like;
//! * a single writer (serialized by an internal mutex, so any thread may
//!   call the mutation methods) applies mutations to a **staged copy**
//!   and *publishes* a new epoch atomically — a pointer swap under a
//!   write lock held for nanoseconds;
//! * retired epochs park on a reclamation list until the last reader
//!   pins drop — a **grace period** enforced by `Arc` reference counts,
//!   observable through [`EpochStats`].
//!
//! Readers pinned to epoch *E* never observe a mutation from epoch
//! *E + 1*: an answer computed against a snapshot is bit-identical to
//! single-threaded execution against the state at publish time (the
//! proptests in `tests/concurrent_proptests.rs` hold this across random
//! interleavings).
//!
//! [`ConcurrentDurablePlanarIndexSet`] composes the epoch scheme with the
//! **group-commit** write-ahead log (`core::wal::GroupCommitQueue`):
//! mutations from any number of threads append to a commit queue, one
//! leader fsyncs for the whole group, and every waiter is acknowledged by
//! that single fsync — collapsing the `FsyncPolicy::Always` latency curve
//! toward `EveryN(64)` while preserving "acknowledged ⇒ durable".
//!
//! ```
//! use planar_core::concurrent::{ConcurrencyConfig, ConcurrentPlanarIndexSet};
//! use planar_core::{Cmp, FeatureTable, IndexConfig, InequalityQuery, ParameterDomain,
//!                   PlanarIndexSet};
//!
//! let table = FeatureTable::from_rows(2, vec![vec![1.0, 1.0], vec![4.0, 2.0]]).unwrap();
//! let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
//! let set: PlanarIndexSet = PlanarIndexSet::build(table, domain, IndexConfig::with_budget(4)).unwrap();
//! let conc = ConcurrentPlanarIndexSet::new(set, ConcurrencyConfig::default());
//!
//! let snap = conc.snapshot();              // readers pin an epoch…
//! conc.insert_point(&[9.0, 9.0]).unwrap(); // …while a writer publishes the next
//! let q = InequalityQuery::new(vec![1.0, 2.0], Cmp::Leq, 9.0).unwrap();
//! assert_eq!(snap.len(), 2);               // the pinned epoch is frozen
//! assert_eq!(conc.snapshot().len(), 3);    // a fresh pin sees the mutation
//! assert!(snap.query(&q).is_ok());
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

use crate::multi::PlanarIndexSet;
use crate::persist::{RecoveryReport, SaveOptions, ShardedRecoveryReport};
use crate::shard::ShardedIndexSet;
use crate::store::{KeyStore, VecStore};
use crate::table::PointId;
use crate::wal::{
    snapshot_path, sweep_snapshots, validate_batch, validate_row, write_manifest,
    DurablePlanarIndexSet, DurableShardedIndexSet, FsyncPolicy, GroupCommitQueue, GroupCommitStats,
    Lsn, Manifest, Mutation, MutationAck, QuorumGate, WalHealth, WalOptions, WalRecord,
};
use crate::{PlanarError, Result};

// ---------------------------------------------------------------------------
// Epoch cell
// ---------------------------------------------------------------------------

/// Tuning for the epoch publish cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrencyConfig {
    /// Publish a new epoch after this many staged mutations (default 1:
    /// every mutation is immediately visible to new snapshots). Larger
    /// values amortize the staged-copy clone that each publish takes, at
    /// the cost of bounded snapshot staleness; batch mutations
    /// ([`ConcurrentPlanarIndexSet::apply_batch`]) always publish at the
    /// end of the batch.
    pub publish_every: usize,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        Self { publish_every: 1 }
    }
}

impl ConcurrencyConfig {
    /// Set the publish cadence (clamped to ≥ 1).
    pub fn publish_every(mut self, n: usize) -> Self {
        self.publish_every = n.max(1);
        self
    }
}

#[derive(Debug)]
struct Versioned<T> {
    epoch: u64,
    value: T,
}

/// A read pin on one published epoch. Dereferences to the underlying set;
/// holding it keeps that epoch's state alive (and unreclaimed) for as
/// long as the reader needs it. Cheap to clone (an `Arc` bump).
#[derive(Debug)]
pub struct Snapshot<T> {
    inner: Arc<Versioned<T>>,
}

impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Snapshot<T> {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }
}

impl<T> std::ops::Deref for Snapshot<T> {
    type Target = T;

    fn deref(&self) -> &Self::Target {
        &self.inner.value
    }
}

/// Point-in-time epoch bookkeeping, stamped into [`crate::StatsSnapshot`]
/// via [`crate::StatsAggregator::record_epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// The currently published epoch.
    pub epoch: u64,
    /// Epochs published over the cell's lifetime.
    pub published: u64,
    /// Retired epochs still parked in their grace period (a reader pin
    /// keeps them alive).
    pub retired_live: usize,
    /// Retired epochs reclaimed after their grace period ended.
    pub reclaimed: u64,
    /// Copy-on-publish clones of the staged set over the cell's lifetime.
    /// Together with `clone_bytes`/`clone_micros` this measures the
    /// write-path ceiling: every publish deep-copies the whole set today,
    /// and a future dirty-shard republish must beat these numbers.
    pub clones: u64,
    /// Heap bytes deep-copied by those clones (the staged set's reported
    /// memory usage at clone time).
    pub clone_bytes: u64,
    /// Wall-clock microseconds spent inside those clones.
    pub clone_micros: u64,
}

/// The publish/retire/reclaim core: an atomically swappable `Arc` plus a
/// grace-period list of retired epochs.
///
/// `load` is a brief `RwLock` read (many readers proceed in parallel and
/// are never blocked by a publish in progress — publishes hold the write
/// lock only for the pointer swap). Retired epochs are reclaimed once
/// their `Arc` strong count shows no outstanding reader pins.
#[derive(Debug)]
pub struct EpochCell<T> {
    current: RwLock<Arc<Versioned<T>>>,
    retired: Mutex<Vec<Arc<Versioned<T>>>>,
    published: AtomicU64,
    reclaimed: AtomicU64,
    clones: AtomicU64,
    clone_bytes: AtomicU64,
    clone_nanos: AtomicU64,
}

impl<T> EpochCell<T> {
    /// Wrap `value` as epoch 1.
    pub fn new(value: T) -> Self {
        Self {
            current: RwLock::new(Arc::new(Versioned { epoch: 1, value })),
            retired: Mutex::new(Vec::new()),
            published: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            clones: AtomicU64::new(0),
            clone_bytes: AtomicU64::new(0),
            clone_nanos: AtomicU64::new(0),
        }
    }

    /// Record one copy-on-publish clone's cost (called by the wrappers,
    /// which know how to measure their set's heap footprint).
    pub fn record_clone(&self, bytes: usize, elapsed: std::time::Duration) {
        self.clones.fetch_add(1, Ordering::Relaxed);
        self.clone_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.clone_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    fn read_current(&self) -> Arc<Versioned<T>> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Pin the current epoch.
    pub fn load(&self) -> Snapshot<T> {
        Snapshot {
            inner: self.read_current(),
        }
    }

    /// Publish `value` as the next epoch: swap the pointer, retire the
    /// previous epoch into its grace period, and opportunistically reclaim
    /// anything whose grace period already ended. Returns the new epoch.
    pub fn publish(&self, value: T) -> u64 {
        let old = {
            let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
            let epoch = cur.epoch + 1;
            std::mem::replace(&mut *cur, Arc::new(Versioned { epoch, value }))
        };
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
        retired.push(old);
        self.reclaim_locked(&mut retired);
        self.current.read().unwrap_or_else(|e| e.into_inner()).epoch
    }

    fn reclaim_locked(&self, retired: &mut Vec<Arc<Versioned<T>>>) -> usize {
        let before = retired.len();
        // A strong count of 1 means the retire list holds the only
        // reference: no reader can mint a new pin from it (pins come only
        // from `current`), so the grace period is over and dropping it
        // here frees the epoch.
        retired.retain(|arc| Arc::strong_count(arc) > 1);
        let freed = before - retired.len();
        self.reclaimed.fetch_add(freed as u64, Ordering::Relaxed);
        freed
    }

    /// Sweep the retired list now, returning how many epochs were freed.
    /// (Publishes sweep opportunistically; this is for quiescent periods.)
    pub fn reclaim(&self) -> usize {
        let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
        self.reclaim_locked(&mut retired)
    }

    /// Current epoch bookkeeping.
    pub fn stats(&self) -> EpochStats {
        let retired_live = self.retired.lock().unwrap_or_else(|e| e.into_inner()).len();
        EpochStats {
            epoch: self.read_current().epoch,
            published: self.published.load(Ordering::Relaxed),
            retired_live,
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            clones: self.clones.load(Ordering::Relaxed),
            clone_bytes: self.clone_bytes.load(Ordering::Relaxed),
            clone_micros: self.clone_nanos.load(Ordering::Relaxed) / 1_000,
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrent planar set (in-memory)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Staged<T> {
    set: T,
    dirty: usize,
}

/// Deep-copy the staged set for publication, charging the clone's bytes
/// and wall-clock cost to the cell's ledger (see [`EpochStats::clones`]).
fn timed_clone<T: Clone>(cell: &EpochCell<T>, set: &T, bytes: usize) -> T {
    let start = Instant::now();
    let copy = set.clone();
    cell.record_clone(bytes, start.elapsed());
    copy
}

/// A [`PlanarIndexSet`] behind an [`EpochCell`]: lock-free snapshot reads
/// from any number of threads, mutations from any thread serialized by an
/// internal writer mutex. See the module docs for the epoch lifecycle.
#[derive(Debug)]
pub struct ConcurrentPlanarIndexSet<S: KeyStore + Clone = VecStore> {
    cell: EpochCell<PlanarIndexSet<S>>,
    writer: Mutex<Staged<PlanarIndexSet<S>>>,
    publish_every: usize,
}

impl<S: KeyStore + Clone> ConcurrentPlanarIndexSet<S> {
    /// Wrap `set` for concurrent serving.
    pub fn new(set: PlanarIndexSet<S>, cfg: ConcurrencyConfig) -> Self {
        let staged = set.clone();
        Self {
            cell: EpochCell::new(set),
            writer: Mutex::new(Staged {
                set: staged,
                dirty: 0,
            }),
            publish_every: cfg.publish_every.max(1),
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, Staged<PlanarIndexSet<S>>> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pin the current epoch for reading. Queries on the snapshot are the
    /// plain [`PlanarIndexSet`] API (`query`, `query_batch`, `top_k_batch`,
    /// …) and run with no synchronization whatsoever.
    pub fn snapshot(&self) -> Snapshot<PlanarIndexSet<S>> {
        self.cell.load()
    }

    fn maybe_publish(&self, staged: &mut Staged<PlanarIndexSet<S>>) {
        if staged.dirty >= self.publish_every {
            self.cell.publish(timed_clone(
                &self.cell,
                &staged.set,
                staged.set.memory_usage(),
            ));
            staged.dirty = 0;
        }
    }

    /// Serialized insert; publishes per [`ConcurrencyConfig::publish_every`].
    ///
    /// # Errors
    ///
    /// See [`PlanarIndexSet::insert_point`].
    pub fn insert_point(&self, row: &[f64]) -> Result<PointId> {
        let mut w = self.lock_writer();
        let id = w.set.insert_point(row)?;
        w.dirty += 1;
        self.maybe_publish(&mut w);
        Ok(id)
    }

    /// Serialized update. See [`PlanarIndexSet::update_point`].
    ///
    /// # Errors
    ///
    /// See [`PlanarIndexSet::update_point`].
    pub fn update_point(&self, id: PointId, row: &[f64]) -> Result<()> {
        let mut w = self.lock_writer();
        w.set.update_point(id, row)?;
        w.dirty += 1;
        self.maybe_publish(&mut w);
        Ok(())
    }

    /// Serialized delete. See [`PlanarIndexSet::delete_point`].
    ///
    /// # Errors
    ///
    /// See [`PlanarIndexSet::delete_point`].
    pub fn delete_point(&self, id: PointId) -> Result<()> {
        let mut w = self.lock_writer();
        w.set.delete_point(id)?;
        w.dirty += 1;
        self.maybe_publish(&mut w);
        Ok(())
    }

    /// Apply a whole mutation batch under one writer-lock acquisition and
    /// publish exactly one epoch at the end, so readers observe the batch
    /// atomically. Returns per-mutation acks in batch order.
    ///
    /// # Errors
    ///
    /// Validation errors before anything is applied (the batch is
    /// all-or-nothing against the staged copy).
    pub fn apply_batch(&self, muts: &[Mutation]) -> Result<Vec<MutationAck>> {
        let mut w = self.lock_writer();
        let next_id = w.set.table().len() as PointId;
        let records = validate_batch(w.set.dim(), next_id, |id| w.set.is_live(id), muts)?;
        let mut acks = Vec::with_capacity(records.len());
        for rec in &records {
            acks.push(apply_planar_record(&mut w.set, rec)?);
        }
        if !records.is_empty() {
            w.dirty += records.len();
            self.cell
                .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
            w.dirty = 0;
        }
        Ok(acks)
    }

    /// Serialized compaction (renumbers ids — see
    /// [`PlanarIndexSet::compact`]); always publishes.
    pub fn compact(&self) -> Vec<Option<PointId>> {
        let mut w = self.lock_writer();
        // Reader observations land on the published epoch's tuner clone;
        // fold them in so compact's internal retune sees the workload.
        let snap = self.snapshot();
        w.set.adopt_quant_window(&snap);
        drop(snap);
        let remap = w.set.compact();
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        remap
    }

    /// The quantization policy active on the staged writer state (the
    /// next publish carries it to readers).
    pub fn quant_policy(&self) -> crate::quant::QuantPolicy {
        self.lock_writer().set.quant_policy()
    }

    /// Install a quantization policy (see
    /// [`PlanarIndexSet::set_quant_policy`]); always publishes so readers
    /// get the re-encoded mirror immediately.
    pub fn set_quant_policy(&self, policy: crate::quant::QuantPolicy) {
        let mut w = self.lock_writer();
        w.set.set_quant_policy(policy);
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
    }

    /// Fold reader observations into the staged tuner, retune (see
    /// [`crate::quant::retune`]), and publish the chosen policy.
    pub fn retune_quantization(
        &self,
        cfg: &crate::quant::QuantAutotuneConfig,
    ) -> crate::quant::QuantPolicy {
        let mut w = self.lock_writer();
        let snap = self.snapshot();
        w.set.adopt_quant_window(&snap);
        drop(snap);
        let policy = w.set.retune_quantization(cfg);
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        policy
    }

    /// Publish the staged state now, regardless of the dirty counter.
    /// Returns the published epoch.
    pub fn publish(&self) -> u64 {
        let mut w = self.lock_writer();
        let epoch = self
            .cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        epoch
    }

    /// Sweep retired epochs whose grace period ended.
    pub fn reclaim(&self) -> usize {
        self.cell.reclaim()
    }

    /// Epoch bookkeeping (publish count, grace-period population).
    pub fn epoch_stats(&self) -> EpochStats {
        self.cell.stats()
    }
}

fn apply_planar_record<S: KeyStore + Clone>(
    set: &mut PlanarIndexSet<S>,
    rec: &WalRecord,
) -> Result<MutationAck> {
    match rec {
        WalRecord::Insert { id, row } => {
            let got = set.insert_point(row).map_err(internal_apply)?;
            if got != *id {
                return Err(PlanarError::Internal(format!(
                    "staged insert assigned id {got}, batch validation predicted {id}"
                )));
            }
            Ok(MutationAck::Inserted(got))
        }
        WalRecord::Update { id, row } => {
            set.update_point(*id, row).map_err(internal_apply)?;
            Ok(MutationAck::Updated)
        }
        WalRecord::Delete { id } => {
            set.delete_point(*id).map_err(internal_apply)?;
            Ok(MutationAck::Deleted)
        }
        _ => Err(PlanarError::Internal(
            "only point mutations are batch-applied".into(),
        )),
    }
}

fn internal_apply(e: PlanarError) -> PlanarError {
    PlanarError::Internal(format!(
        "pre-validated mutation failed to apply to the staged copy: {e}"
    ))
}

// ---------------------------------------------------------------------------
// Concurrent sharded set (in-memory)
// ---------------------------------------------------------------------------

/// A [`ShardedIndexSet`] behind an [`EpochCell`]: the sharded counterpart
/// of [`ConcurrentPlanarIndexSet`] (same epoch lifecycle, same publish
/// cadence; snapshots answer through the shard-aware
/// `query_batch`/`top_k_batch` fan-out).
#[derive(Debug)]
pub struct ConcurrentShardedIndexSet<S: KeyStore + Clone = VecStore> {
    cell: EpochCell<ShardedIndexSet<S>>,
    writer: Mutex<Staged<ShardedIndexSet<S>>>,
    publish_every: usize,
}

impl<S: KeyStore + Clone> ConcurrentShardedIndexSet<S> {
    /// Wrap `set` for concurrent serving.
    pub fn new(set: ShardedIndexSet<S>, cfg: ConcurrencyConfig) -> Self {
        let staged = set.clone();
        Self {
            cell: EpochCell::new(set),
            writer: Mutex::new(Staged {
                set: staged,
                dirty: 0,
            }),
            publish_every: cfg.publish_every.max(1),
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, Staged<ShardedIndexSet<S>>> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pin the current epoch for reading.
    pub fn snapshot(&self) -> Snapshot<ShardedIndexSet<S>> {
        self.cell.load()
    }

    fn maybe_publish(&self, staged: &mut Staged<ShardedIndexSet<S>>) {
        if staged.dirty >= self.publish_every {
            self.cell.publish(timed_clone(
                &self.cell,
                &staged.set,
                staged.set.memory_usage(),
            ));
            staged.dirty = 0;
        }
    }

    /// Serialized insert routed by the partitioner. See
    /// [`ShardedIndexSet::insert_point`].
    ///
    /// # Errors
    ///
    /// See [`ShardedIndexSet::insert_point`].
    pub fn insert_point(&self, row: &[f64]) -> Result<PointId> {
        let mut w = self.lock_writer();
        let id = w.set.insert_point(row)?;
        w.dirty += 1;
        self.maybe_publish(&mut w);
        Ok(id)
    }

    /// Serialized update. See [`ShardedIndexSet::update_point`].
    ///
    /// # Errors
    ///
    /// See [`ShardedIndexSet::update_point`].
    pub fn update_point(&self, id: PointId, row: &[f64]) -> Result<()> {
        let mut w = self.lock_writer();
        w.set.update_point(id, row)?;
        w.dirty += 1;
        self.maybe_publish(&mut w);
        Ok(())
    }

    /// Serialized delete. See [`ShardedIndexSet::delete_point`].
    ///
    /// # Errors
    ///
    /// See [`ShardedIndexSet::delete_point`].
    pub fn delete_point(&self, id: PointId) -> Result<()> {
        let mut w = self.lock_writer();
        w.set.delete_point(id)?;
        w.dirty += 1;
        self.maybe_publish(&mut w);
        Ok(())
    }

    /// Serialized threshold-gated compaction; always publishes. See
    /// [`ShardedIndexSet::compact`].
    pub fn compact(&self, threshold: f64) -> Vec<usize> {
        let mut w = self.lock_writer();
        // Fold reader observations in so each compacted shard's internal
        // retune sees the workload (see the planar wrapper's `compact`).
        let snap = self.snapshot();
        w.set.adopt_quant_window(&snap);
        drop(snap);
        let compacted = w.set.compact(threshold);
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        compacted
    }

    /// Per-shard quantization policies on the staged writer state.
    pub fn quant_policies(&self) -> Vec<crate::quant::QuantPolicy> {
        self.lock_writer().set.quant_policies()
    }

    /// Install one quantization policy on every shard; always publishes.
    pub fn set_quant_policy(&self, policy: crate::quant::QuantPolicy) {
        let mut w = self.lock_writer();
        w.set.set_quant_policy(policy);
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
    }

    /// Fold reader observations into each shard's tuner, retune every
    /// shard, and publish. Returns the policy now active per shard.
    pub fn retune_quantization(
        &self,
        cfg: &crate::quant::QuantAutotuneConfig,
    ) -> Vec<crate::quant::QuantPolicy> {
        let mut w = self.lock_writer();
        let snap = self.snapshot();
        w.set.adopt_quant_window(&snap);
        drop(snap);
        let policies = w.set.retune_quantization(cfg);
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        policies
    }

    /// Publish the staged state now. Returns the published epoch.
    pub fn publish(&self) -> u64 {
        let mut w = self.lock_writer();
        let epoch = self
            .cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        epoch
    }

    /// Sweep retired epochs whose grace period ended.
    pub fn reclaim(&self) -> usize {
        self.cell.reclaim()
    }

    /// Epoch bookkeeping.
    pub fn epoch_stats(&self) -> EpochStats {
        self.cell.stats()
    }

    /// Replication apply path: replay a contiguous batch of shipped WAL
    /// records into the staged set through the same `replay_record` logic
    /// recovery uses (divergence checks included), then publish **once**
    /// for the whole batch — per-record copy-on-publish would cap replica
    /// catch-up far below the cold-replay rate.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on replay divergence (e.g. an insert id
    /// already assigned): the staged copy may be mid-batch, so the caller
    /// must treat the replica as diverged and stop applying.
    pub(crate) fn replay_replicated(&self, frames: &[(usize, Lsn, WalRecord)]) -> Result<()> {
        if frames.is_empty() {
            return Ok(());
        }
        let mut w = self.lock_writer();
        for (shard, lsn, rec) in frames {
            w.set.replay_record(*shard, *lsn, rec)?;
        }
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        Ok(())
    }

    /// Consume the wrapper, returning the staged (most recent) set —
    /// the failover-promotion handoff.
    pub fn into_staged(self) -> ShardedIndexSet<S> {
        self.writer
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .set
    }
}

// ---------------------------------------------------------------------------
// Concurrent durable planar set: epochs + group commit
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct DurableStaged<S: KeyStore + Clone> {
    set: PlanarIndexSet<S>,
    next_lsn: Lsn,
    dirty: usize,
    generation: u64,
}

/// Epoch snapshot reads **plus** group-commit durability: the concurrent
/// counterpart of [`DurablePlanarIndexSet`]. Mutations may be issued from
/// any number of threads through `&self`; each one is write-ahead logged
/// into a commit queue, applied to the staged copy in LSN order, and —
/// under [`FsyncPolicy::Always`] — acknowledged only once a commit-group
/// leader's fsync covers its LSN. Concurrent mutators therefore share
/// fsyncs instead of paying one each, and concurrent readers never block:
/// they run against pinned epoch snapshots throughout.
#[derive(Debug)]
pub struct ConcurrentDurablePlanarIndexSet<S: KeyStore + Clone = VecStore> {
    cell: EpochCell<PlanarIndexSet<S>>,
    writer: Mutex<DurableStaged<S>>,
    queue: GroupCommitQueue,
    dir: PathBuf,
    fsync: FsyncPolicy,
    save_opts: SaveOptions,
    publish_every: usize,
}

/// `OnCheckpoint` group mode still writes (without fsync) once this many
/// records are queued, so the in-memory commit queue stays bounded.
const LAZY_FLUSH_RECORDS: u64 = 512;

impl<S: KeyStore + Clone> ConcurrentDurablePlanarIndexSet<S> {
    /// Initialize `dir` as a durable home for `set` and wrap it for
    /// concurrent serving. See [`DurablePlanarIndexSet::create`].
    ///
    /// # Errors
    ///
    /// See [`DurablePlanarIndexSet::create`].
    pub fn create(
        dir: impl AsRef<Path>,
        set: PlanarIndexSet<S>,
        opts: WalOptions,
        cfg: ConcurrencyConfig,
    ) -> Result<Self> {
        DurablePlanarIndexSet::create(dir, set, opts).map(|d| Self::from_durable(d, cfg))
    }

    /// Open a durable directory (recovering as
    /// [`PlanarIndexSet::open_durable`] does) and wrap it for concurrent
    /// serving.
    ///
    /// # Errors
    ///
    /// See [`PlanarIndexSet::open_durable`].
    pub fn open(
        dir: impl AsRef<Path>,
        opts: WalOptions,
        cfg: ConcurrencyConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let (durable, report) = PlanarIndexSet::<S>::open_durable(dir, opts)?;
        Ok((Self::from_durable(durable, cfg), report))
    }

    /// Re-wrap a single-writer durable set for concurrent serving: the
    /// WAL writer moves into a group-commit queue and the set into an
    /// epoch cell.
    pub fn from_durable(durable: DurablePlanarIndexSet<S>, cfg: ConcurrencyConfig) -> Self {
        let (set, wal, dir, generation, next_lsn, save_opts) = durable.into_parts();
        let fsync = wal.options().fsync;
        let staged = set.clone();
        Self {
            cell: EpochCell::new(set),
            writer: Mutex::new(DurableStaged {
                set: staged,
                next_lsn,
                dirty: 0,
                generation,
            }),
            queue: GroupCommitQueue::new(wal),
            dir,
            fsync,
            save_opts,
            publish_every: cfg.publish_every.max(1),
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, DurableStaged<S>> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pin the current epoch for reading.
    pub fn snapshot(&self) -> Snapshot<PlanarIndexSet<S>> {
        self.cell.load()
    }

    fn maybe_publish(&self, staged: &mut DurableStaged<S>) {
        if staged.dirty >= self.publish_every {
            self.cell.publish(timed_clone(
                &self.cell,
                &staged.set,
                staged.set.memory_usage(),
            ));
            staged.dirty = 0;
        }
    }

    /// Acknowledge `lsn` per the fsync policy: `Always` joins (or leads)
    /// a commit group and returns only once durable; the bounded-loss
    /// policies return immediately, flushing the queue when due.
    fn ack(&self, lsn: Lsn) -> Result<()> {
        match self.fsync {
            FsyncPolicy::Always => self.queue.wait_durable(lsn),
            FsyncPolicy::EveryN(n) => {
                if self.queue.ack_lag() >= u64::from(n.max(1)) {
                    self.queue.flush(false)?;
                }
                Ok(())
            }
            FsyncPolicy::OnCheckpoint => {
                if self.queue.ack_lag() >= LAZY_FLUSH_RECORDS {
                    self.queue.flush(false)?;
                }
                Ok(())
            }
        }
    }

    /// Group-committed insert. See [`PlanarIndexSet::insert_point`];
    /// under `Always` the returned id is durable.
    ///
    /// # Errors
    ///
    /// Validation errors before logging, [`PlanarError::Persist`] if the
    /// commit group's append/fsync failed (the mutation is *not*
    /// acknowledged).
    pub fn insert_point(&self, row: &[f64]) -> Result<PointId> {
        let (lsn, ack) = {
            let mut w = self.lock_writer();
            validate_row(w.set.dim(), row)?;
            let id = w.set.table().len() as PointId;
            let rec = WalRecord::Insert {
                id,
                row: row.to_vec(),
            };
            let lsn = w.next_lsn;
            self.queue.enqueue(lsn, rec.clone())?;
            w.next_lsn = lsn + 1;
            let ack = apply_planar_record(&mut w.set, &rec)?;
            w.dirty += 1;
            self.maybe_publish(&mut w);
            (lsn, ack)
        };
        self.ack(lsn)?;
        match ack {
            MutationAck::Inserted(id) => Ok(id),
            _ => unreachable!("insert acks as Inserted"),
        }
    }

    /// Group-committed update. See [`PlanarIndexSet::update_point`].
    ///
    /// # Errors
    ///
    /// As [`Self::insert_point`], plus [`PlanarError::PointNotFound`].
    pub fn update_point(&self, id: PointId, row: &[f64]) -> Result<()> {
        let lsn = {
            let mut w = self.lock_writer();
            validate_row(w.set.dim(), row)?;
            if !w.set.is_live(id) {
                return Err(PlanarError::PointNotFound(id));
            }
            let rec = WalRecord::Update {
                id,
                row: row.to_vec(),
            };
            let lsn = w.next_lsn;
            self.queue.enqueue(lsn, rec.clone())?;
            w.next_lsn = lsn + 1;
            apply_planar_record(&mut w.set, &rec)?;
            w.dirty += 1;
            self.maybe_publish(&mut w);
            lsn
        };
        self.ack(lsn)
    }

    /// Group-committed delete. See [`PlanarIndexSet::delete_point`].
    ///
    /// # Errors
    ///
    /// As [`Self::update_point`].
    pub fn delete_point(&self, id: PointId) -> Result<()> {
        let lsn = {
            let mut w = self.lock_writer();
            if !w.set.is_live(id) {
                return Err(PlanarError::PointNotFound(id));
            }
            let rec = WalRecord::Delete { id };
            let lsn = w.next_lsn;
            self.queue.enqueue(lsn, rec.clone())?;
            w.next_lsn = lsn + 1;
            apply_planar_record(&mut w.set, &rec)?;
            w.dirty += 1;
            self.maybe_publish(&mut w);
            lsn
        };
        self.ack(lsn)
    }

    /// Group-committed mutation batch: the whole batch is validated up
    /// front, logged contiguously, applied, published as **one** epoch,
    /// and acknowledged by a single fsync (under `Always`). This is the
    /// highest-throughput durable write path.
    ///
    /// # Errors
    ///
    /// As [`DurablePlanarIndexSet::apply_batch`].
    pub fn apply_batch(&self, muts: &[Mutation]) -> Result<Vec<MutationAck>> {
        if muts.is_empty() {
            return Ok(Vec::new());
        }
        let (last_lsn, acks) = {
            let mut w = self.lock_writer();
            let next_id = w.set.table().len() as PointId;
            let records = validate_batch(w.set.dim(), next_id, |id| w.set.is_live(id), muts)?;
            let first_lsn = w.next_lsn;
            for (i, rec) in records.iter().enumerate() {
                self.queue.enqueue(first_lsn + i as Lsn, rec.clone())?;
            }
            w.next_lsn = first_lsn + records.len() as Lsn;
            let mut acks = Vec::with_capacity(records.len());
            for rec in &records {
                acks.push(apply_planar_record(&mut w.set, rec)?);
            }
            w.dirty += records.len();
            self.cell
                .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
            w.dirty = 0;
            (w.next_lsn - 1, acks)
        };
        self.ack(last_lsn)?;
        Ok(acks)
    }

    /// Force everything queued to stable storage now, regardless of the
    /// fsync policy. Afterwards `wal_health()` shows
    /// `acked_lsn == appended_lsn`.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on append/fsync failure.
    pub fn sync(&self) -> Result<()> {
        self.queue.flush(true)
    }

    /// Checkpoint-then-truncate (see
    /// [`DurablePlanarIndexSet::checkpoint`]). Takes the writer lock, so
    /// mutations block for the duration; readers keep serving from their
    /// pinned epochs throughout.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O failure.
    pub fn checkpoint(&self) -> Result<Lsn> {
        let mut w = self.lock_writer();
        let watermark = w.next_lsn;
        self.queue
            .enqueue(watermark, WalRecord::Checkpoint { watermark })?;
        w.next_lsn = watermark + 1;
        self.queue.flush(true)?;
        // Checkpoint cadence doubles as the autotuner's retune point;
        // adopt reader observations from the published epoch first, and
        // the snapshot below then carries the freshly chosen tier. The
        // policy is derived state, so it needs no WAL record: replay
        // without it yields identical answers, just unfiltered.
        let snap = self.snapshot();
        w.set.adopt_quant_window(&snap);
        drop(snap);
        w.set
            .retune_quantization(&crate::quant::QuantAutotuneConfig::default());
        let generation = w.generation + 1;
        w.set.save_to_with(
            snapshot_path(&self.dir, generation),
            &mut crate::fault::StdIo,
            &self.save_opts,
        )?;
        write_manifest(
            &self.dir,
            Manifest {
                generation,
                watermark,
                term: self.queue.term(),
            },
        )?;
        w.generation = generation;
        self.queue
            .with_writer(|wal| wal.truncate_all(watermark + 1))?;
        sweep_snapshots(&self.dir, generation);
        Ok(watermark)
    }

    /// Install a quantization policy; always publishes. Derived state —
    /// not WAL-logged, so a crash before the next checkpoint recovers
    /// with the tier from the last snapshot (answers are identical under
    /// any tier by contract).
    pub fn set_quant_policy(&self, policy: crate::quant::QuantPolicy) {
        let mut w = self.lock_writer();
        w.set.set_quant_policy(policy);
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
    }

    /// The quantization policy active on the staged writer state.
    pub fn quant_policy(&self) -> crate::quant::QuantPolicy {
        self.lock_writer().set.quant_policy()
    }

    /// Publish the staged state now. Returns the published epoch.
    pub fn publish(&self) -> u64 {
        let mut w = self.lock_writer();
        let epoch = self
            .cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        epoch
    }

    /// Sweep retired epochs whose grace period ended.
    pub fn reclaim(&self) -> usize {
        self.cell.reclaim()
    }

    /// Epoch bookkeeping.
    pub fn epoch_stats(&self) -> EpochStats {
        self.cell.stats()
    }

    /// WAL health including the group-commit watermarks
    /// (`acked_lsn`/`appended_lsn`).
    pub fn wal_health(&self) -> WalHealth {
        self.queue.health()
    }

    /// Group-commit amortization counters (fsyncs, records per fsync).
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        self.queue.stats()
    }

    /// Data fsyncs issued by the underlying WAL writer since opening.
    pub fn fsync_count(&self) -> u64 {
        self.queue.fsync_count()
    }

    /// Recover the group-commit queue from a fail-stop append/fsync
    /// error: revalidate the log tail on disk, re-append any applied-but-
    /// undurable records the failed drain parked, and resume accepting
    /// mutations. Acks issued before the error still hold — they were
    /// covered by an fsync at ack time and reopen never truncates below
    /// the synced watermark. No-op on a healthy queue.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] if the tail repair itself fails (the
    /// queue stays fail-stopped and can be reopened again).
    pub fn reopen_wal(&self) -> Result<WalHealth> {
        self.queue.reopen()
    }
}

// ---------------------------------------------------------------------------
// Concurrent durable sharded set: epochs + per-shard group commit
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct DurableShardedStaged<S: KeyStore + Clone> {
    set: ShardedIndexSet<S>,
    next_lsn: Lsn,
    dirty: usize,
    generation: u64,
}

/// The sharded counterpart of [`ConcurrentDurablePlanarIndexSet`]: epoch
/// snapshot reads over a [`ShardedIndexSet`] with **one group-commit
/// queue per shard WAL**. Mutations routed to different shards commit
/// through independent queues (independent fsync leaders); mutations
/// hitting the same shard share commit groups. The global LSN order is
/// still assigned under one writer mutex, so recovery's cross-shard
/// replay order is exactly the acknowledged order.
#[derive(Debug)]
pub struct ConcurrentDurableShardedIndexSet<S: KeyStore + Clone = VecStore> {
    cell: EpochCell<ShardedIndexSet<S>>,
    writer: Mutex<DurableShardedStaged<S>>,
    queues: Vec<GroupCommitQueue>,
    dir: PathBuf,
    fsync: FsyncPolicy,
    save_opts: SaveOptions,
    publish_every: usize,
}

impl<S: KeyStore + Clone> ConcurrentDurableShardedIndexSet<S> {
    /// Initialize `dir` as a durable home for `set` and wrap it for
    /// concurrent serving. See [`DurableShardedIndexSet::create`].
    ///
    /// # Errors
    ///
    /// See [`DurableShardedIndexSet::create`].
    pub fn create(
        dir: impl AsRef<Path>,
        set: ShardedIndexSet<S>,
        opts: WalOptions,
        cfg: ConcurrencyConfig,
    ) -> Result<Self> {
        DurableShardedIndexSet::create(dir, set, opts).map(|d| Self::from_durable(d, cfg))
    }

    /// Open a durable sharded directory (recovering as
    /// [`ShardedIndexSet::open_durable`] does) and wrap it for concurrent
    /// serving.
    ///
    /// # Errors
    ///
    /// See [`ShardedIndexSet::open_durable`].
    pub fn open(
        dir: impl AsRef<Path>,
        opts: WalOptions,
        cfg: ConcurrencyConfig,
    ) -> Result<(Self, ShardedRecoveryReport)> {
        let (durable, report) = ShardedIndexSet::<S>::open_durable(dir, opts)?;
        Ok((Self::from_durable(durable, cfg), report))
    }

    /// Re-wrap a single-writer durable sharded set for concurrent
    /// serving: each shard's WAL writer moves into its own group-commit
    /// queue.
    pub fn from_durable(durable: DurableShardedIndexSet<S>, cfg: ConcurrencyConfig) -> Self {
        let (set, wals, dir, generation, next_lsn, save_opts) = durable.into_parts();
        let fsync = wals
            .first()
            .map(|w| w.options().fsync)
            .unwrap_or(FsyncPolicy::Always);
        let queues = wals.into_iter().map(GroupCommitQueue::new).collect();
        let staged = set.clone();
        Self {
            cell: EpochCell::new(set),
            writer: Mutex::new(DurableShardedStaged {
                set: staged,
                next_lsn,
                dirty: 0,
                generation,
            }),
            queues,
            dir,
            fsync,
            save_opts,
            publish_every: cfg.publish_every.max(1),
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, DurableShardedStaged<S>> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pin the current epoch for reading.
    pub fn snapshot(&self) -> Snapshot<ShardedIndexSet<S>> {
        self.cell.load()
    }

    fn maybe_publish(&self, staged: &mut DurableShardedStaged<S>) {
        if staged.dirty >= self.publish_every {
            self.cell.publish(timed_clone(
                &self.cell,
                &staged.set,
                staged.set.memory_usage(),
            ));
            staged.dirty = 0;
        }
    }

    /// Install a replication [`QuorumGate`] on every shard's commit
    /// queue: `FsyncPolicy::Always` acknowledgements are then released
    /// only once the gate confirms the covering LSN (or fail typed with
    /// [`crate::PlanarError::QuorumTimeout`]). Installed by
    /// [`crate::replicate::Primary::set_ack_policy`]; the same gate
    /// instance must be the one the primary publishes replica
    /// confirmations into.
    pub fn install_quorum_gate(&self, gate: QuorumGate) {
        for q in &self.queues {
            q.set_gate(Some(gate.clone()));
        }
    }

    /// Remove any installed quorum gate: acknowledgements revert to
    /// local-durability-only.
    pub fn clear_quorum_gate(&self) {
        for q in &self.queues {
            q.set_gate(None);
        }
    }

    /// Acknowledge `lsn` on shard `shard` per the fsync policy (see
    /// [`ConcurrentDurablePlanarIndexSet`]'s policy mapping).
    fn ack(&self, shard: usize, lsn: Lsn) -> Result<()> {
        let queue = &self.queues[shard];
        match self.fsync {
            FsyncPolicy::Always => queue.wait_durable(lsn),
            FsyncPolicy::EveryN(n) => {
                if queue.ack_lag() >= u64::from(n.max(1)) {
                    queue.flush(false)?;
                }
                Ok(())
            }
            FsyncPolicy::OnCheckpoint => {
                if queue.ack_lag() >= LAZY_FLUSH_RECORDS {
                    queue.flush(false)?;
                }
                Ok(())
            }
        }
    }

    /// Group-committed insert routed by the partitioner. See
    /// [`DurableShardedIndexSet::insert_point`].
    ///
    /// # Errors
    ///
    /// As [`DurableShardedIndexSet::insert_point`] (a commit-group
    /// append/fsync failure is *not* acknowledged).
    pub fn insert_point(&self, row: &[f64]) -> Result<PointId> {
        let (shard, lsn, id) = {
            let mut w = self.lock_writer();
            validate_row(w.set.dim(), row)?;
            let global = w.set.next_global();
            let shard = w.set.partitioner().route(global, row);
            let lsn = w.next_lsn;
            self.queues[shard].enqueue(
                lsn,
                WalRecord::Insert {
                    id: global,
                    row: row.to_vec(),
                },
            )?;
            w.next_lsn = lsn + 1;
            let got = w.set.insert_point(row).map_err(internal_apply)?;
            if got != global {
                return Err(PlanarError::Internal(format!(
                    "staged insert assigned global id {got}, routing predicted {global}"
                )));
            }
            w.dirty += 1;
            self.maybe_publish(&mut w);
            (shard, lsn, got)
        };
        self.ack(shard, lsn)?;
        Ok(id)
    }

    /// Group-committed update on the point's shard. See
    /// [`DurableShardedIndexSet::update_point`].
    ///
    /// # Errors
    ///
    /// As [`DurableShardedIndexSet::update_point`].
    pub fn update_point(&self, id: PointId, row: &[f64]) -> Result<()> {
        let (shard, lsn) = {
            let mut w = self.lock_writer();
            validate_row(w.set.dim(), row)?;
            let shard = w.set.shard_of(id).ok_or(PlanarError::PointNotFound(id))?;
            let lsn = w.next_lsn;
            self.queues[shard].enqueue(
                lsn,
                WalRecord::Update {
                    id,
                    row: row.to_vec(),
                },
            )?;
            w.next_lsn = lsn + 1;
            w.set.update_point(id, row).map_err(internal_apply)?;
            w.dirty += 1;
            self.maybe_publish(&mut w);
            (shard, lsn)
        };
        self.ack(shard, lsn)
    }

    /// Group-committed delete on the point's shard. See
    /// [`DurableShardedIndexSet::delete_point`].
    ///
    /// # Errors
    ///
    /// As [`DurableShardedIndexSet::delete_point`].
    pub fn delete_point(&self, id: PointId) -> Result<()> {
        let (shard, lsn) = {
            let mut w = self.lock_writer();
            let shard = w.set.shard_of(id).ok_or(PlanarError::PointNotFound(id))?;
            let lsn = w.next_lsn;
            self.queues[shard].enqueue(lsn, WalRecord::Delete { id })?;
            w.next_lsn = lsn + 1;
            w.set.delete_point(id).map_err(internal_apply)?;
            w.dirty += 1;
            self.maybe_publish(&mut w);
            (shard, lsn)
        };
        self.ack(shard, lsn)
    }

    /// Group-committed mutation batch routed across shards: validated up
    /// front, logged contiguously in global LSN order, applied, published
    /// as one epoch, then acknowledged with at most one fsync **per
    /// touched shard**.
    ///
    /// # Errors
    ///
    /// As [`DurableShardedIndexSet::apply_batch`].
    pub fn apply_batch(&self, muts: &[Mutation]) -> Result<Vec<MutationAck>> {
        if muts.is_empty() {
            return Ok(Vec::new());
        }
        let (acks, touched) = {
            let mut w = self.lock_writer();
            let dim = w.set.dim();
            let mut born: Vec<(PointId, usize)> = Vec::new();
            let mut killed: Vec<PointId> = Vec::new();
            let mut next = w.set.next_global();
            let mut routed: Vec<(usize, WalRecord)> = Vec::with_capacity(muts.len());
            for m in muts {
                match m {
                    Mutation::Insert { row } => {
                        validate_row(dim, row)?;
                        let shard = w.set.partitioner().route(next, row);
                        routed.push((
                            shard,
                            WalRecord::Insert {
                                id: next,
                                row: row.clone(),
                            },
                        ));
                        born.push((next, shard));
                        next += 1;
                    }
                    Mutation::Update { id, row } => {
                        validate_row(dim, row)?;
                        let shard = shard_in_batch(&w.set, *id, &born, &killed)?;
                        routed.push((
                            shard,
                            WalRecord::Update {
                                id: *id,
                                row: row.clone(),
                            },
                        ));
                    }
                    Mutation::Delete { id } => {
                        let shard = shard_in_batch(&w.set, *id, &born, &killed)?;
                        routed.push((shard, WalRecord::Delete { id: *id }));
                        killed.push(*id);
                    }
                }
            }
            let first_lsn = w.next_lsn;
            let mut touched: Vec<Option<Lsn>> = vec![None; self.queues.len()];
            for (i, (shard, rec)) in routed.iter().enumerate() {
                let lsn = first_lsn + i as Lsn;
                self.queues[*shard].enqueue(lsn, rec.clone())?;
                touched[*shard] = Some(lsn);
            }
            w.next_lsn = first_lsn + routed.len() as Lsn;
            let mut acks = Vec::with_capacity(routed.len());
            for (_, rec) in &routed {
                acks.push(apply_sharded_record(&mut w.set, rec)?);
            }
            w.dirty += routed.len();
            self.cell
                .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
            w.dirty = 0;
            (acks, touched)
        };
        for (shard, last) in touched.iter().enumerate() {
            if let Some(lsn) = last {
                self.ack(shard, *lsn)?;
            }
        }
        Ok(acks)
    }

    /// Log-then-compact under group commit: the marker is broadcast to
    /// **every** shard's queue at one shared LSN, then each shard
    /// compacts (see [`DurableShardedIndexSet::compact`]). Readers keep
    /// serving pinned epochs; the compacted state publishes immediately.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on append/fsync failure.
    pub fn compact(&self, threshold: f64) -> Result<Vec<usize>> {
        let (reclaimed, lsn) = {
            let mut w = self.lock_writer();
            let lsn = w.next_lsn;
            let rec = WalRecord::Compact {
                threshold: Some(threshold),
            };
            for queue in &self.queues {
                queue.enqueue(lsn, rec.clone())?;
            }
            w.next_lsn = lsn + 1;
            // Fold reader observations in so each compacted shard's
            // internal retune sees the workload.
            let snap = self.snapshot();
            w.set.adopt_quant_window(&snap);
            drop(snap);
            let reclaimed = w.set.compact(threshold);
            self.cell
                .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
            w.dirty = 0;
            (reclaimed, lsn)
        };
        for shard in 0..self.queues.len() {
            self.ack(shard, lsn)?;
        }
        Ok(reclaimed)
    }

    /// Force every shard's queue to stable storage now.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on append/fsync failure.
    pub fn sync(&self) -> Result<()> {
        for queue in &self.queues {
            queue.flush(true)?;
        }
        Ok(())
    }

    /// Checkpoint-then-truncate across every shard (see
    /// [`DurableShardedIndexSet::checkpoint`]). Mutations block for the
    /// duration; readers keep serving from pinned epochs.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O failure.
    pub fn checkpoint(&self) -> Result<Lsn> {
        let mut w = self.lock_writer();
        let watermark = w.next_lsn;
        for queue in &self.queues {
            queue.enqueue(watermark, WalRecord::Checkpoint { watermark })?;
            queue.flush(true)?;
        }
        w.next_lsn = watermark + 1;
        // Retune each shard's quantization tier at checkpoint cadence —
        // see the durable planar twin above for why no WAL record exists.
        let snap = self.snapshot();
        w.set.adopt_quant_window(&snap);
        drop(snap);
        w.set
            .retune_quantization(&crate::quant::QuantAutotuneConfig::default());
        let generation = w.generation + 1;
        w.set.save_to_with(
            snapshot_path(&self.dir, generation),
            &mut crate::fault::StdIo,
            &self.save_opts,
        )?;
        write_manifest(
            &self.dir,
            Manifest {
                generation,
                watermark,
                term: self
                    .queues
                    .iter()
                    .map(GroupCommitQueue::term)
                    .max()
                    .unwrap_or(0),
            },
        )?;
        w.generation = generation;
        for queue in &self.queues {
            queue.with_writer(|wal| wal.truncate_all(watermark + 1))?;
        }
        sweep_snapshots(&self.dir, generation);
        Ok(watermark)
    }

    /// Install one quantization policy on every shard; always publishes.
    /// Derived state — not WAL-logged (see the durable planar twin).
    pub fn set_quant_policy(&self, policy: crate::quant::QuantPolicy) {
        let mut w = self.lock_writer();
        w.set.set_quant_policy(policy);
        self.cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
    }

    /// Per-shard quantization policies on the staged writer state.
    pub fn quant_policies(&self) -> Vec<crate::quant::QuantPolicy> {
        self.lock_writer().set.quant_policies()
    }

    /// Publish the staged state now. Returns the published epoch.
    pub fn publish(&self) -> u64 {
        let mut w = self.lock_writer();
        let epoch = self
            .cell
            .publish(timed_clone(&self.cell, &w.set, w.set.memory_usage()));
        w.dirty = 0;
        epoch
    }

    /// Sweep retired epochs whose grace period ended.
    pub fn reclaim(&self) -> usize {
        self.cell.reclaim()
    }

    /// Epoch bookkeeping.
    pub fn epoch_stats(&self) -> EpochStats {
        self.cell.stats()
    }

    /// Aggregate WAL health across every shard's queue (the merge keeps
    /// the most conservative `acked_lsn`).
    pub fn wal_health(&self) -> WalHealth {
        let mut h = WalHealth::default();
        for queue in &self.queues {
            h.merge(&queue.health());
        }
        h
    }

    /// Group-commit counters summed across shards.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        let mut total = GroupCommitStats::default();
        for queue in &self.queues {
            let s = queue.stats();
            total.fsyncs += s.fsyncs;
            total.committed_records += s.committed_records;
            total.max_group = total.max_group.max(s.max_group);
        }
        total
    }

    /// Data fsyncs summed across every shard's WAL writer.
    pub fn fsync_count(&self) -> u64 {
        self.queues.iter().map(GroupCommitQueue::fsync_count).sum()
    }

    /// Recover every shard's group-commit queue from a fail-stop error
    /// (see [`ConcurrentDurablePlanarIndexSet::reopen_wal`]). Healthy
    /// queues are untouched; the merged health keeps the most
    /// conservative acked watermark.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] if any shard's tail repair fails.
    pub fn reopen_wal(&self) -> Result<WalHealth> {
        let mut h = WalHealth::default();
        for queue in &self.queues {
            h.merge(&queue.reopen()?);
        }
        Ok(h)
    }

    /// The durable directory this set checkpoints into.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shard WALs (= shard count).
    pub(crate) fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Highest replication term across the shard WAL writers.
    pub(crate) fn term(&self) -> u64 {
        self.queues
            .iter()
            .map(GroupCommitQueue::term)
            .max()
            .unwrap_or(0)
    }
}

/// Shard routing for updates/deletes inside a batch: points born earlier
/// in the batch route to their recorded shard, killed points are gone.
fn shard_in_batch<S: KeyStore + Clone>(
    set: &ShardedIndexSet<S>,
    id: PointId,
    born: &[(PointId, usize)],
    killed: &[PointId],
) -> Result<usize> {
    if killed.contains(&id) {
        return Err(PlanarError::PointNotFound(id));
    }
    if let Some(&(_, shard)) = born.iter().find(|&&(b, _)| b == id) {
        return Ok(shard);
    }
    set.shard_of(id).ok_or(PlanarError::PointNotFound(id))
}

fn apply_sharded_record<S: KeyStore + Clone>(
    set: &mut ShardedIndexSet<S>,
    rec: &WalRecord,
) -> Result<MutationAck> {
    match rec {
        WalRecord::Insert { id, row } => {
            let got = set.insert_point(row).map_err(internal_apply)?;
            if got != *id {
                return Err(PlanarError::Internal(format!(
                    "staged insert assigned global id {got}, batch routing predicted {id}"
                )));
            }
            Ok(MutationAck::Inserted(got))
        }
        WalRecord::Update { id, row } => {
            set.update_point(*id, row).map_err(internal_apply)?;
            Ok(MutationAck::Updated)
        }
        WalRecord::Delete { id } => {
            set.delete_point(*id).map_err(internal_apply)?;
            Ok(MutationAck::Deleted)
        }
        _ => Err(PlanarError::Internal(
            "only point mutations are batch-applied".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ParameterDomain;
    use crate::fault::TempDir;
    use crate::multi::IndexConfig;
    use crate::query::{Cmp, InequalityQuery};
    use crate::table::FeatureTable;
    use crate::VecStore;

    fn small_set(n: usize) -> PlanarIndexSet<VecStore> {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![1.0 + (i % 13) as f64, 1.0 + (i % 7) as f64])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(4)).unwrap()
    }

    fn probe(b: f64) -> InequalityQuery {
        InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, b).unwrap()
    }

    #[test]
    fn snapshots_pin_epochs_and_reclaim_after_grace() {
        let conc = ConcurrentPlanarIndexSet::new(small_set(40), ConcurrencyConfig::default());
        let pinned = conc.snapshot();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.len(), 40);

        conc.insert_point(&[3.0, 3.0]).unwrap();
        conc.insert_point(&[4.0, 4.0]).unwrap();
        // The pin still answers from epoch 1.
        assert_eq!(pinned.len(), 40);
        let now = conc.snapshot();
        assert_eq!(now.epoch(), 3);
        assert_eq!(now.len(), 42);

        // Epoch 2 had no pins → already reclaimed; epoch 1 waits for ours.
        let stats = conc.epoch_stats();
        assert_eq!(stats.published, 2);
        assert_eq!(stats.retired_live, 1);
        assert_eq!(stats.reclaimed, 1);

        drop(pinned);
        assert_eq!(conc.reclaim(), 1, "grace period ends with the last pin");
        assert_eq!(conc.epoch_stats().retired_live, 0);
    }

    #[test]
    fn batch_publishes_one_epoch_and_matches_serial() {
        let conc = ConcurrentPlanarIndexSet::new(small_set(30), ConcurrencyConfig::default());
        let mut twin = small_set(30);
        let muts = vec![
            Mutation::Insert {
                row: vec![2.0, 9.0],
            },
            Mutation::Insert {
                row: vec![7.0, 1.0],
            },
            Mutation::Update {
                id: 30,
                row: vec![6.0, 6.0],
            },
            Mutation::Delete { id: 3 },
        ];
        let acks = conc.apply_batch(&muts).unwrap();
        assert_eq!(acks[0], MutationAck::Inserted(30));
        assert_eq!(acks[1], MutationAck::Inserted(31));
        twin.insert_point(&[2.0, 9.0]).unwrap();
        twin.insert_point(&[7.0, 1.0]).unwrap();
        twin.update_point(30, &[6.0, 6.0]).unwrap();
        twin.delete_point(3).unwrap();

        let snap = conc.snapshot();
        assert_eq!(snap.epoch(), 2, "one epoch for the whole batch");
        for b in [8.0, 12.0, 20.0] {
            assert_eq!(
                snap.query(&probe(b)).unwrap().sorted_ids(),
                twin.query(&probe(b)).unwrap().sorted_ids()
            );
        }
    }

    #[test]
    fn batch_validation_is_all_or_nothing() {
        let conc = ConcurrentPlanarIndexSet::new(small_set(10), ConcurrencyConfig::default());
        let muts = vec![
            Mutation::Insert {
                row: vec![2.0, 2.0],
            },
            Mutation::Delete { id: 999 },
        ];
        assert!(matches!(
            conc.apply_batch(&muts),
            Err(PlanarError::PointNotFound(999))
        ));
        assert_eq!(conc.snapshot().len(), 10, "nothing applied");
        assert_eq!(conc.snapshot().epoch(), 1, "nothing published");
    }

    #[test]
    fn publish_cadence_batches_epochs() {
        let cfg = ConcurrencyConfig::default().publish_every(4);
        let conc = ConcurrentPlanarIndexSet::new(small_set(10), cfg);
        for i in 0..3 {
            conc.insert_point(&[2.0 + i as f64, 2.0]).unwrap();
        }
        assert_eq!(conc.snapshot().len(), 10, "below cadence: not yet visible");
        conc.insert_point(&[9.0, 9.0]).unwrap();
        assert_eq!(conc.snapshot().len(), 14, "4th mutation publishes");
        conc.insert_point(&[9.5, 9.5]).unwrap();
        assert_eq!(conc.snapshot().len(), 14);
        assert_eq!(conc.publish(), 3, "manual publish flushes the remainder");
        assert_eq!(conc.snapshot().len(), 15);
    }

    #[test]
    fn sharded_snapshots_match_twin() {
        use crate::shard::{ShardConfig, ShardedIndexSet};
        let build = || {
            let rows: Vec<Vec<f64>> = (0..60)
                .map(|i| vec![1.0 + (i % 11) as f64, 1.0 + (i % 6) as f64])
                .collect();
            let table = FeatureTable::from_rows(2, rows).unwrap();
            let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
            ShardedIndexSet::<VecStore>::build(
                table,
                domain,
                IndexConfig::with_budget(3),
                ShardConfig::round_robin(3),
            )
            .unwrap()
        };
        let conc = ConcurrentShardedIndexSet::new(build(), ConcurrencyConfig::default());
        let mut twin = build();
        let pinned = conc.snapshot();
        for i in 0..10 {
            let row = vec![2.0 + (i % 5) as f64, 3.0];
            assert_eq!(
                conc.insert_point(&row).unwrap(),
                twin.insert_point(&row).unwrap()
            );
        }
        conc.delete_point(2).unwrap();
        twin.delete_point(2).unwrap();
        assert_eq!(pinned.len(), 60, "pinned epoch is frozen");
        let now = conc.snapshot();
        for b in [8.0, 14.0] {
            assert_eq!(
                now.query(&probe(b)).unwrap().sorted_ids(),
                twin.query(&probe(b)).unwrap().sorted_ids()
            );
        }
    }

    /// Readers race a writer across epochs; every reader answer must be
    /// internally consistent with the epoch it pinned. This test is the
    /// ThreadSanitizer smoke target wired into CI (`tsan_smoke` in its
    /// name is load-bearing).
    #[test]
    fn tsan_smoke_readers_race_writer() {
        let conc = std::sync::Arc::new(ConcurrentPlanarIndexSet::new(
            small_set(50),
            ConcurrencyConfig::default(),
        ));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let conc = std::sync::Arc::clone(&conc);
                let stop = std::sync::Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = conc.snapshot();
                        let out = snap.query(&probe(12.0)).unwrap();
                        // Snapshot immutability: re-running on the same pin
                        // is bit-identical even mid-mutation-stream.
                        assert_eq!(
                            out.sorted_ids(),
                            snap.query(&probe(12.0)).unwrap().sorted_ids()
                        );
                    }
                });
            }
            for i in 0..64 {
                conc.insert_point(&[1.0 + (i % 9) as f64, 2.0]).unwrap();
                if i % 16 == 0 {
                    conc.reclaim();
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(conc.snapshot().len(), 114);
    }

    #[test]
    fn durable_concurrent_group_commit_roundtrip() {
        let tmp = TempDir::new("conc_durable").unwrap();
        let opts = WalOptions::default(); // Always: every ack durable
        let conc = std::sync::Arc::new(
            ConcurrentDurablePlanarIndexSet::create(
                tmp.path(),
                small_set(40),
                opts,
                ConcurrencyConfig::default(),
            )
            .unwrap(),
        );
        // 4 mutator threads share commit groups.
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let conc = std::sync::Arc::clone(&conc);
                s.spawn(move || {
                    for i in 0..8 {
                        conc.insert_point(&[1.0 + t as f64, 1.0 + i as f64])
                            .unwrap();
                    }
                });
            }
        });
        let health = conc.wal_health();
        assert_eq!(health.appended_lsn, 32);
        assert_eq!(health.acked_lsn, 32, "Always: every ack durable");
        assert_eq!(health.ack_lag(), 0);
        let gc = conc.group_commit_stats();
        assert_eq!(gc.committed_records, 32);
        assert!(gc.fsyncs <= 32);
        assert_eq!(conc.snapshot().len(), 72);

        // Kill without checkpoint; recovery must replay all 32.
        drop(conc);
        let (recovered, report) = ConcurrentDurablePlanarIndexSet::<VecStore>::open(
            tmp.path(),
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap();
        assert_eq!(report.wal_replayed, 32);
        assert_eq!(recovered.snapshot().len(), 72);
    }

    #[test]
    fn durable_concurrent_checkpoint_truncates_and_reopens() {
        let tmp = TempDir::new("conc_ckpt").unwrap();
        let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(8));
        let conc = ConcurrentDurablePlanarIndexSet::create(
            tmp.path(),
            small_set(20),
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap();
        for i in 0..10 {
            conc.insert_point(&[2.0 + i as f64, 4.0]).unwrap();
        }
        let lag_before = conc.wal_health().ack_lag();
        conc.sync().unwrap();
        let h = conc.wal_health();
        assert_eq!(
            h.acked_lsn, h.appended_lsn,
            "acked and appended converge after sync (lag was {lag_before})"
        );
        let watermark = conc.checkpoint().unwrap();
        assert_eq!(watermark, 11);
        conc.delete_point(5).unwrap();
        drop(conc);
        let (recovered, report) = ConcurrentDurablePlanarIndexSet::<VecStore>::open(
            tmp.path(),
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap();
        assert_eq!(report.wal_replayed, 1, "only the post-checkpoint delete");
        assert!(!recovered.snapshot().is_live(5));
    }

    #[test]
    fn sharded_durable_concurrent_routes_and_recovers() {
        use crate::shard::{ShardConfig, ShardedIndexSet};
        let tmp = TempDir::new("conc_shard_durable").unwrap();
        let opts = WalOptions::default(); // Always
        let build = || {
            let rows: Vec<Vec<f64>> = (0..30)
                .map(|i| vec![1.0 + (i % 9) as f64, 1.0 + (i % 5) as f64])
                .collect();
            let table = FeatureTable::from_rows(2, rows).unwrap();
            let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
            ShardedIndexSet::<VecStore>::build(
                table,
                domain,
                IndexConfig::with_budget(3),
                ShardConfig::round_robin(3),
            )
            .unwrap()
        };
        let conc = ConcurrentDurableShardedIndexSet::create(
            tmp.path(),
            build(),
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap();
        let mut twin = build();

        let pinned = conc.snapshot();
        let muts: Vec<Mutation> = (0..6)
            .map(|i| Mutation::Insert {
                row: vec![2.0 + i as f64, 4.0],
            })
            .collect();
        let acks = conc.apply_batch(&muts).unwrap();
        assert_eq!(acks.len(), 6);
        for m in &muts {
            if let Mutation::Insert { row } = m {
                twin.insert_point(row).unwrap();
            }
        }
        conc.delete_point(4).unwrap();
        twin.delete_point(4).unwrap();
        assert_eq!(pinned.len(), 30, "pinned epoch is frozen");
        let h = conc.wal_health();
        assert_eq!(h.appended_lsn, 7);
        assert_eq!(h.acked_lsn, 7, "Always: acked durable across shards");

        let watermark = conc.checkpoint().unwrap();
        assert_eq!(watermark, 8);
        conc.insert_point(&[8.0, 8.0]).unwrap();
        twin.insert_point(&[8.0, 8.0]).unwrap();
        drop(conc);

        let (recovered, report) = ConcurrentDurableShardedIndexSet::<VecStore>::open(
            tmp.path(),
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap();
        assert_eq!(report.wal_replayed, 1, "only the post-checkpoint insert");
        let snap = recovered.snapshot();
        for b in [8.0, 14.0] {
            assert_eq!(
                snap.query(&probe(b)).unwrap().sorted_ids(),
                twin.query(&probe(b)).unwrap().sorted_ids()
            );
        }
    }
}
