//! Axis reduction for queries with zero coefficients.
//!
//! The paper's §4.1 assumes `aᵢ ≠ 0` for every axis: "otherwise, one can
//! simply ignore the corresponding axis during index construction and query
//! processing". Ignoring an axis is *not* free with a full-dimensional
//! index — the key `⟨c, φ(x)⟩` of a point mixes in the ignored axis, so the
//! larger-interval rejection becomes unsound. The plain
//! [`PlanarIndexSet`] therefore answers such queries with an exact scan.
//!
//! [`AxisReductionRouter`] implements the paper's remark properly: it keeps
//! the base index set for full queries and lazily builds *reduced* index
//! sets over the non-zero axis subsets that actually occur, caching them by
//! axis mask. Point ids are shared across all sets, and mutations propagate
//! to every cached reduction, so answers remain exact everywhere.

use crate::domain::ParameterDomain;
use crate::multi::{IndexConfig, PlanarIndexSet, QueryOutcome};
use crate::query::InequalityQuery;
use crate::store::KeyStore;
use crate::table::{FeatureTable, PointId};
use crate::{PlanarError, Result, VecStore};
use std::collections::HashMap;

/// A [`PlanarIndexSet`] wrapper that routes zero-coefficient queries to
/// lazily-built reduced-axis index sets.
pub struct AxisReductionRouter<S: KeyStore = VecStore> {
    base: PlanarIndexSet<S>,
    config: IndexConfig,
    /// Cached reduced sets keyed by the bitmask of *kept* axes.
    reduced: HashMap<u64, PlanarIndexSet<S>>,
}

impl<S: KeyStore> AxisReductionRouter<S> {
    /// Wrap an existing index set. `config` governs reduced-set builds.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] for dimensionality above 64 (the
    /// axis-mask width; far beyond any workload in this domain).
    pub fn new(base: PlanarIndexSet<S>, config: IndexConfig) -> Result<Self> {
        if base.dim() > 64 {
            return Err(PlanarError::DimensionMismatch {
                expected: 64,
                found: base.dim(),
            });
        }
        Ok(Self {
            base,
            config,
            reduced: HashMap::new(),
        })
    }

    /// The base (full-dimensional) index set.
    pub fn base(&self) -> &PlanarIndexSet<S> {
        &self.base
    }

    /// Number of reduced index sets currently cached.
    pub fn cached_reductions(&self) -> usize {
        self.reduced.len()
    }

    /// Answer a query; zero-coefficient queries take (or build) the reduced
    /// index set over their non-zero axes.
    ///
    /// # Errors
    ///
    /// [`PlanarError::DimensionMismatch`] on dimensionality mismatch.
    pub fn query(&mut self, q: &InequalityQuery) -> Result<QueryOutcome> {
        let dim = self.base.dim();
        if q.dim() != dim {
            return Err(PlanarError::DimensionMismatch {
                expected: dim,
                found: q.dim(),
            });
        }
        let kept: Vec<usize> = (0..dim).filter(|&i| q.a()[i] != 0.0).collect();
        if kept.len() == dim {
            return self.base.query(q);
        }
        if kept.is_empty() {
            // ⟨0, φ(x)⟩ {≤,≥} b: all live points or none, by sign of b.
            return self.base.query_scan(q);
        }
        let mask = kept.iter().fold(0u64, |m, &i| m | 1 << i);
        if !self.reduced.contains_key(&mask) {
            let set = self.build_reduction(&kept)?;
            self.reduced.insert(mask, set);
        }
        let reduced_q =
            InequalityQuery::new(kept.iter().map(|&i| q.a()[i]).collect(), q.cmp(), q.b())?;
        self.reduced
            .get(&mask)
            .expect("inserted above")
            .query(&reduced_q)
    }

    fn build_reduction(&self, kept: &[usize]) -> Result<PlanarIndexSet<S>> {
        // Project every row (including tombstoned ones, to keep ids
        // aligned), then re-apply tombstones.
        let base_table = self.base.table();
        let mut table = FeatureTable::with_capacity(kept.len(), base_table.len())?;
        let mut row = vec![0.0; kept.len()];
        for (_, full_row) in base_table.iter() {
            for (slot, &axis) in row.iter_mut().zip(kept) {
                *slot = full_row[axis];
            }
            table.push_row(&row)?;
        }
        let domain = ParameterDomain::new(
            kept.iter()
                .map(|&i| self.base.domain().axes()[i].clone())
                .collect(),
        )?;
        let mut set = PlanarIndexSet::build(table, domain, self.config.clone())?;
        for id in 0..base_table.len() as PointId {
            if !self.base.is_live(id) {
                set.delete_point(id)?;
            }
        }
        Ok(set)
    }

    /// Insert a point everywhere (base + cached reductions).
    ///
    /// # Errors
    ///
    /// Table validation errors.
    pub fn insert_point(&mut self, row: &[f64]) -> Result<PointId> {
        let id = self.base.insert_point(row)?;
        for (mask, set) in &mut self.reduced {
            let projected = project(row, *mask);
            let rid = set.insert_point(&projected)?;
            debug_assert_eq!(rid, id, "id alignment across reductions");
        }
        Ok(id)
    }

    /// Update a point everywhere.
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`], table validation errors.
    pub fn update_point(&mut self, id: PointId, row: &[f64]) -> Result<()> {
        self.base.update_point(id, row)?;
        for (mask, set) in &mut self.reduced {
            set.update_point(id, &project(row, *mask))?;
        }
        Ok(())
    }

    /// Delete a point everywhere.
    ///
    /// # Errors
    ///
    /// [`PlanarError::PointNotFound`].
    pub fn delete_point(&mut self, id: PointId) -> Result<()> {
        self.base.delete_point(id)?;
        for set in self.reduced.values_mut() {
            set.delete_point(id)?;
        }
        Ok(())
    }
}

fn project(row: &[f64], mask: u64) -> Vec<f64> {
    row.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &v)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cmp;
    use crate::store::VecStore;

    fn router() -> AxisReductionRouter<VecStore> {
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    1.0 + (i % 13) as f64,
                    1.0 + (i % 17) as f64,
                    1.0 + (i % 23) as f64,
                ]
            })
            .collect();
        let table = FeatureTable::from_rows(3, rows).unwrap();
        let domain = ParameterDomain::uniform_continuous(3, 0.5, 3.0).unwrap();
        let base = PlanarIndexSet::build(table, domain, IndexConfig::with_budget(8)).unwrap();
        AxisReductionRouter::new(base, IndexConfig::with_budget(8)).unwrap()
    }

    #[test]
    fn full_queries_use_base() {
        let mut r = router();
        let q = InequalityQuery::leq(vec![1.0, 1.0, 1.0], 30.0).unwrap();
        let out = r.query(&q).unwrap();
        assert!(out.stats.used_index());
        assert_eq!(r.cached_reductions(), 0);
        assert_eq!(
            out.sorted_ids(),
            r.base().query_scan(&q).unwrap().sorted_ids()
        );
    }

    #[test]
    fn zero_coefficient_queries_take_indexed_reduction() {
        let mut r = router();
        let q = InequalityQuery::leq(vec![1.0, 0.0, 2.0], 25.0).unwrap();
        // The plain set would scan...
        let plain = r.base().query(&q).unwrap();
        assert!(!plain.stats.used_index());
        // ...the router builds a 2-axis reduction and indexes it.
        let out = r.query(&q).unwrap();
        assert!(out.stats.used_index(), "{:?}", out.stats.path);
        assert_eq!(r.cached_reductions(), 1);
        assert_eq!(out.sorted_ids(), plain.sorted_ids());
    }

    #[test]
    fn reductions_are_cached_per_mask() {
        let mut r = router();
        r.query(&InequalityQuery::leq(vec![1.0, 0.0, 2.0], 25.0).unwrap())
            .unwrap();
        r.query(&InequalityQuery::leq(vec![3.0, 0.0, 1.0], 40.0).unwrap())
            .unwrap();
        assert_eq!(r.cached_reductions(), 1, "same mask reused");
        r.query(&InequalityQuery::leq(vec![0.0, 1.0, 1.0], 25.0).unwrap())
            .unwrap();
        assert_eq!(r.cached_reductions(), 2, "new mask builds a new set");
    }

    #[test]
    fn all_zero_query_is_degenerate_but_exact() {
        let mut r = router();
        let all = InequalityQuery::new(vec![0.0; 3], Cmp::Leq, 1.0).unwrap();
        assert_eq!(r.query(&all).unwrap().matches.len(), 300);
        let none = InequalityQuery::new(vec![0.0; 3], Cmp::Leq, -1.0).unwrap();
        assert!(r.query(&none).unwrap().matches.is_empty());
    }

    #[test]
    fn mutations_propagate_to_cached_reductions() {
        let mut r = router();
        let q = InequalityQuery::leq(vec![1.0, 0.0, 1.0], 10.0).unwrap();
        r.query(&q).unwrap(); // builds the reduction
        let id = r.insert_point(&[2.0, 50.0, 2.0]).unwrap();
        assert!(r.query(&q).unwrap().sorted_ids().contains(&id));
        r.update_point(id, &[90.0, 50.0, 90.0]).unwrap();
        assert!(!r.query(&q).unwrap().sorted_ids().contains(&id));
        r.update_point(id, &[2.0, 50.0, 2.0]).unwrap();
        r.delete_point(id).unwrap();
        assert!(!r.query(&q).unwrap().sorted_ids().contains(&id));
        // Reduced answers still equal brute force over live points.
        let expect: Vec<PointId> = r
            .base()
            .table()
            .iter()
            .filter(|(pid, row)| r.base().is_live(*pid) && q.satisfies(row))
            .map(|(pid, _)| pid)
            .collect();
        assert_eq!(r.query(&q).unwrap().sorted_ids(), expect);
    }

    #[test]
    fn tombstones_respected_when_reduction_is_built_late() {
        let mut r = router();
        r.delete_point(5).unwrap();
        let q = InequalityQuery::leq(vec![0.0, 1.0, 1.0], 1000.0).unwrap();
        let ids = r.query(&q).unwrap().sorted_ids();
        assert!(!ids.contains(&5));
        assert_eq!(ids.len(), 299);
    }
}
