//! Best-index selection at query time (paper §5.1).
//!
//! With multiple Planar indices available, the one whose hyperplanes are
//! closest to parallel with the query hyperplane yields the smallest
//! intermediate interval — zero, when exactly parallel (paper Corollary 1).
//! Counting the intermediate interval for every index reintroduces the cost
//! we are trying to avoid ("chicken and egg", §5.1), so the paper proposes
//! two O(r·d') heuristics; we implement both, plus an exact counter that
//! our order-statistics stores make cheap (O(r·(d' + log n))) — useful as an
//! ablation upper bound.

use planar_geom::dot_slices;

/// Strategy for picking the best index for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Volume/stretch minimization (§5.1.1, Problem 3): minimize the
    /// maximum stretch of the intermediate interval along any axis. The
    /// paper found this usually wins; it is the default.
    #[default]
    MinStretch,
    /// Angle minimization (§5.1.2): minimize the angle between the query
    /// hyperplane and the index hyperplanes.
    MinAngle,
    /// Exact intermediate-interval cardinality via rank queries. The paper
    /// dismisses counting as requiring `O(|II|)` per index; with
    /// order-statistics stores it costs two rank queries per index, so we
    /// expose it as the oracle the heuristics are measured against.
    OracleCount,
}

/// The maximum stretch (paper Eq. 15–16) of the intermediate interval
/// induced by index normal `c` for the normalized query `(a, b)`:
///
/// `max_i (1/cᵢ)·(max_k cₖ·I(q,k) − min_k cₖ·I(q,k))`, with
/// `I(q,k) = b/aₖ`.
///
/// Lower is better; exactly parallel normals score 0 (Corollary 1).
pub fn stretch_score(c: &[f64], a: &[f64], b: f64) -> f64 {
    debug_assert_eq!(c.len(), a.len());
    let mut tmin = f64::INFINITY;
    let mut tmax = f64::NEG_INFINITY;
    let mut cmin = f64::INFINITY;
    for (&ci, &ai) in c.iter().zip(a) {
        let t = ci * b / ai;
        tmin = tmin.min(t);
        tmax = tmax.max(t);
        cmin = cmin.min(ci);
    }
    (tmax - tmin) / cmin
}

/// The angle-minimization score (§5.1.2): the negated cosine between the
/// query normal `a` and the index normal `c`. Lower is better (both vectors
/// are strictly positive in normalized space, so the cosine is in `(0, 1]`
/// and a parallel pair scores −1, the minimum).
pub fn angle_score(c: &[f64], a: &[f64]) -> f64 {
    debug_assert_eq!(c.len(), a.len());
    let denom = planar_geom::norm(c) * planar_geom::norm(a);
    if denom == 0.0 {
        return 0.0;
    }
    -(dot_slices(c, a) / denom)
}

/// Pick the index minimizing `score` among positions where `skip(i)` is
/// false — the planner uses `skip` to route around quarantined indices.
/// Ties broken by the lowest surviving position (deterministic), so on a
/// fully healthy set the filter has no effect on selection. Returns `None`
/// when no candidate survives.
pub(crate) fn argmin_by_score_filtered(
    count: usize,
    skip: impl Fn(usize) -> bool,
    mut score: impl FnMut(usize) -> f64,
) -> Option<usize> {
    (0..count)
        .filter(|&i| !skip(i))
        .map(|i| (i, score(i)))
        .min_by(|(_, x), (_, y)| x.total_cmp(y))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_geom::approx_eq;

    #[test]
    fn stretch_matches_paper_example4() {
        // Query Y1 + 2·Y2 + 5·Y3 = 10, index normal (1, 1, 2).
        // Paper Example 4: maximum stretch along any axis is 6.
        let score = stretch_score(&[1.0, 1.0, 2.0], &[1.0, 2.0, 5.0], 10.0);
        assert!(approx_eq(score, 6.0), "got {score}");
    }

    #[test]
    fn corollary1_parallel_index_scores_zero_stretch() {
        let a = [1.0, 2.0, 5.0];
        // c parallel to a (scaled by 3).
        let c = [3.0, 6.0, 15.0];
        assert!(approx_eq(stretch_score(&c, &a, 10.0), 0.0));
        // And minimal angle score (cos = 1 → score −1).
        assert!(approx_eq(angle_score(&c, &a), -1.0));
    }

    #[test]
    fn stretch_prefers_nearer_parallel() {
        let a = [1.0, 2.0];
        let near = [1.1, 2.0];
        let far = [2.0, 1.0];
        assert!(stretch_score(&near, &a, 5.0) < stretch_score(&far, &a, 5.0));
    }

    #[test]
    fn angle_prefers_nearer_parallel() {
        let a = [1.0, 2.0];
        let near = [1.1, 2.0];
        let far = [2.0, 1.0];
        assert!(angle_score(&near, &a) < angle_score(&far, &a));
    }

    #[test]
    fn zero_offset_makes_all_stretches_zero() {
        // b = 0: every threshold is 0, so every index is "perfect" — the
        // interval collapses to the key 0 boundary for all of them.
        assert!(approx_eq(stretch_score(&[1.0, 3.0], &[2.0, 1.0], 0.0), 0.0));
    }

    #[test]
    fn argmin_deterministic_tie_break() {
        let scores = [3.0, 1.0, 1.0, 2.0];
        let none = |_: usize| false;
        assert_eq!(argmin_by_score_filtered(4, none, |i| scores[i]), Some(1));
        assert_eq!(argmin_by_score_filtered(0, none, |_| 0.0), None);
    }

    #[test]
    fn argmin_skips_filtered_positions() {
        let scores = [3.0, 1.0, 1.0, 2.0];
        // Best position skipped → tie-break falls to the next survivor.
        assert_eq!(
            argmin_by_score_filtered(4, |i| i == 1, |i| scores[i]),
            Some(2)
        );
        // Everything skipped → no selection.
        assert_eq!(argmin_by_score_filtered(4, |_| true, |i| scores[i]), None);
    }

    #[test]
    fn default_strategy_is_min_stretch() {
        assert_eq!(SelectionStrategy::default(), SelectionStrategy::MinStretch);
    }
}
