//! Fault injection for the index lifecycle.
//!
//! Production indices meet three failure classes the algorithms themselves
//! never produce: **storage corruption** (flipped bits, truncated files),
//! **transient IO failures** (full disks, interrupted writes), and
//! **poisoned queries** (a panic inside a batch worker). This module makes
//! all three injectable deterministically so `crate::persist` and
//! `crate::parallel` can be tested against explicit fault schedules:
//!
//! * `Corruption` — pure byte-level mutations (truncate-at-byte-k,
//!   bit-flip-at-offset) applied to serialized snapshots;
//! * [`SnapshotIo`] — the IO seam behind [`save_to`] with a production
//!   implementation ([`StdIo`]) and a scripted one (`FaultyIo`) that can
//!   fail the n-th write, crash mid-save, or corrupt bytes silently;
//! * `arm_query_panic` — a trigger that panics inside query execution for
//!   a sentinel query, exercising the batch engine's panic isolation.
//!
//! [`save_to`]: crate::multi::PlanarIndexSet::save_to
//!
//! Every schedule is deterministic: the same faults in the same order
//! produce the same observable outcome, which is what the fault-injection
//! proptests rely on to shrink-by-reseed.
//!
//! Only the IO seam ([`SnapshotIo`], [`StdIo`]) is part of the production
//! build. The injection machinery — `Corruption`, `FaultyIo`, `TempDir`,
//! and the poisoned-query trigger — is compiled solely for this crate's own
//! tests or under the `fault-injection` cargo feature; in default builds
//! the query-path trigger is a no-op and nothing can arm it.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::Path;
#[cfg(any(test, feature = "fault-injection"))]
use std::path::PathBuf;
#[cfg(any(test, feature = "fault-injection"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Byte-granular chunk size for [`SnapshotIo::write_file`] implementations
/// that count writes: "fail the 3rd write" means the 3rd 4 KiB chunk.
#[cfg(any(test, feature = "fault-injection"))]
pub const WRITE_CHUNK: usize = 4096;

/// A deterministic byte-level corruption of a serialized snapshot.
///
/// These model what a crashed writer, a bad disk, or a truncating copy does
/// to bytes at rest; apply them with [`Corruption::apply`].
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Keep only the first `len` bytes (torn write / partial download).
    TruncateAt(usize),
    /// Flip bit `bit` (0–7) of the byte at `offset` (silent media error).
    BitFlip {
        /// Byte offset of the corrupted byte.
        offset: usize,
        /// Which bit of that byte flips.
        bit: u8,
    },
    /// Overwrite `len` bytes starting at `offset` with zeros (bad sector).
    ZeroRange {
        /// First byte of the zeroed range.
        offset: usize,
        /// Length of the zeroed range.
        len: usize,
    },
}

#[cfg(any(test, feature = "fault-injection"))]
impl Corruption {
    /// Apply this corruption to `bytes` in place. Out-of-range offsets
    /// saturate to the buffer (so schedules never panic on short inputs).
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        match *self {
            Corruption::TruncateAt(len) => bytes.truncate(len),
            Corruption::BitFlip { offset, bit } => {
                if let Some(byte) = bytes.get_mut(offset) {
                    *byte ^= 1u8 << (bit & 7);
                }
            }
            Corruption::ZeroRange { offset, len } => {
                let end = offset.saturating_add(len).min(bytes.len());
                if offset < end {
                    bytes[offset..end].fill(0);
                }
            }
        }
    }
}

/// The IO seam behind snapshot persistence.
///
/// [`crate::multi::PlanarIndexSet::save_to`] performs exactly three kinds of
/// operations — write a whole temp file durably, rename it over the target,
/// and remove stale temp files — so the seam is three methods. Production
/// code uses [`StdIo`]; fault-injection tests substitute `FaultyIo`.
pub trait SnapshotIo {
    /// Durably write `bytes` to `path`: create/truncate, write all bytes,
    /// fsync.
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` onto `to` (same directory).
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a (temp) file; missing files are not an error for callers,
    /// which ignore the result.
    fn remove_file(&mut self, path: &Path) -> io::Result<()>;

    /// Read a whole file.
    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

/// The production [`SnapshotIo`]: `std::fs` with fsync on file and (best
/// effort) parent directory, so a rename that returned `Ok` survives power
/// loss on journaling filesystems.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdIo;

impl SnapshotIo for StdIo {
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)?;
        // Durability of the rename itself: fsync the parent directory.
        // Best-effort — not all platforms/filesystems allow directory opens.
        if let Some(dir) = to.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// One entry of a [`FaultyIo`] schedule.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The `nth` (0-based) [`WRITE_CHUNK`] write across the IO's lifetime
    /// fails once with `ErrorKind::Interrupted` — a transient error that a
    /// bounded retry should absorb.
    FailNthWrite(u64),
    /// During the `nth` file write, persist only the first `keep` bytes,
    /// then fail — a torn write. All later operations keep working.
    TruncateWrite {
        /// Which file-level write (0-based) is torn.
        nth: u64,
        /// How many bytes of it reach the disk.
        keep: usize,
    },
    /// Flip one bit of the byte at `offset` in the `nth` file write, which
    /// otherwise reports success — silent corruption below fsync.
    CorruptWrite {
        /// Which file-level write (0-based) is corrupted.
        nth: u64,
        /// Byte offset within the written buffer.
        offset: usize,
        /// Which bit of that byte flips.
        bit: u8,
    },
    /// After `n` successful chunk writes the process "loses power": the
    /// in-flight write fails and **every** subsequent operation (writes,
    /// renames, removals) fails with `ErrorKind::Other`.
    CrashAfterWrites(u64),
    /// The `nth` (0-based) rename fails once with `ErrorKind::Interrupted`.
    FailNthRename(u64),
}

/// A scripted [`SnapshotIo`] that perturbs real filesystem operations
/// according to a deterministic fault schedule. Paths it touches are real
/// files (point it at a temp dir), so load paths can be exercised on the
/// exact bytes a faulty save left behind.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug)]
pub struct FaultyIo {
    faults: Vec<IoFault>,
    inner: StdIo,
    chunk_writes: u64,
    file_writes: u64,
    renames: u64,
    crashed: bool,
    fired: Vec<IoFault>,
}

#[cfg(any(test, feature = "fault-injection"))]
impl FaultyIo {
    /// An IO layer that will inject every fault in `faults` (each at the
    /// point its counters select) and behave like [`StdIo`] otherwise.
    pub fn new(faults: Vec<IoFault>) -> Self {
        Self {
            faults,
            inner: StdIo,
            chunk_writes: 0,
            file_writes: 0,
            renames: 0,
            crashed: false,
            fired: Vec::new(),
        }
    }

    /// The faults that actually fired, in firing order.
    pub fn fired(&self) -> &[IoFault] {
        &self.fired
    }

    /// True once a [`IoFault::CrashAfterWrites`] has triggered: the
    /// simulated machine is down and every operation fails.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    fn check_crashed(&self) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::other("injected: machine crashed"));
        }
        Ok(())
    }
}

#[cfg(any(test, feature = "fault-injection"))]
impl SnapshotIo for FaultyIo {
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check_crashed()?;
        let this_write = self.file_writes;
        self.file_writes += 1;

        // Silent corruption and torn writes rewrite the payload up front.
        let mut payload = bytes.to_vec();
        let mut torn = None;
        for f in &self.faults {
            match *f {
                IoFault::CorruptWrite { nth, offset, bit } if nth == this_write => {
                    Corruption::BitFlip { offset, bit }.apply(&mut payload);
                    self.fired.push(*f);
                }
                IoFault::TruncateWrite { nth, keep } if nth == this_write => {
                    torn = Some(keep);
                    self.fired.push(*f);
                }
                _ => {}
            }
        }
        if let Some(keep) = torn {
            payload.truncate(keep);
            self.inner.write_file(path, &payload)?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected: torn write",
            ));
        }

        // Chunked write so FailNthWrite / CrashAfterWrites have byte-level
        // granularity: bytes before the failing chunk really land on disk.
        let mut written = 0usize;
        while written < payload.len() || (payload.is_empty() && written == 0) {
            let fail_now = self.faults.iter().copied().find(|f| match *f {
                IoFault::FailNthWrite(n) => {
                    n == self.chunk_writes && !self.fired.contains(&IoFault::FailNthWrite(n))
                }
                IoFault::CrashAfterWrites(n) => n == self.chunk_writes,
                _ => false,
            });
            if let Some(fault) = fail_now {
                self.fired.push(fault);
                self.inner.write_file(path, &payload[..written])?;
                return match fault {
                    IoFault::CrashAfterWrites(_) => {
                        self.crashed = true;
                        Err(io::Error::other("injected: crash during write"))
                    }
                    _ => Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected: transient write failure",
                    )),
                };
            }
            let end = (written + WRITE_CHUNK).min(payload.len());
            self.chunk_writes += 1;
            written = end;
            if payload.is_empty() {
                break;
            }
        }
        self.inner.write_file(path, &payload)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_crashed()?;
        let this_rename = self.renames;
        self.renames += 1;
        if let Some(f) = self
            .faults
            .iter()
            .copied()
            .find(|f| matches!(*f, IoFault::FailNthRename(n) if n == this_rename))
        {
            if !self.fired.contains(&f) {
                self.fired.push(f);
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected: transient rename failure",
                ));
            }
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        self.check_crashed()?;
        self.inner.remove_file(path)
    }
}

/// A scratch directory for fault-injection tests that cleans up after
/// itself, keeping schedules hermetic.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

#[cfg(any(test, feature = "fault-injection"))]
impl TempDir {
    /// Create a fresh directory under the system temp dir, uniquified by
    /// pid and a process-wide counter.
    pub fn new(label: &str) -> io::Result<Self> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "planar_fault_{label}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

#[cfg(any(test, feature = "fault-injection"))]
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Poisoned-query trigger.
// ---------------------------------------------------------------------------

/// Disarmed sentinel: no finite query offset has NaN's bit pattern, and
/// `InequalityQuery` rejects non-finite offsets, so the trigger can never
/// fire while disarmed.
#[cfg(any(test, feature = "fault-injection"))]
const DISARMED: u64 = f64::NAN.to_bits();

#[cfg(any(test, feature = "fault-injection"))]
static PANIC_B_BITS: AtomicU64 = AtomicU64::new(DISARMED);

/// Arm the poisoned-query trigger: any query whose offset `b` is
/// bit-identical to `armed_b` panics inside execution. Used to test the
/// batch engine's panic isolation (`catch_unwind` per query); pick a
/// sentinel offset no legitimate query in the test uses.
///
/// The trigger is process-global — disarm it (see [`disarm_query_panic`])
/// before running unrelated queries. It only exists under the
/// `fault-injection` feature; default builds compile the query-path probe
/// to a no-op.
#[cfg(any(test, feature = "fault-injection"))]
pub fn arm_query_panic(armed_b: f64) {
    PANIC_B_BITS.store(armed_b.to_bits(), Ordering::SeqCst);
}

/// Disarm the poisoned-query trigger.
#[cfg(any(test, feature = "fault-injection"))]
pub fn disarm_query_panic() {
    PANIC_B_BITS.store(DISARMED, Ordering::SeqCst);
}

/// Called on the query execution path; panics iff the trigger is armed for
/// exactly this offset.
#[cfg(any(test, feature = "fault-injection"))]
#[inline]
pub(crate) fn maybe_inject_query_panic(b: f64) {
    if PANIC_B_BITS.load(Ordering::Relaxed) == b.to_bits() {
        panic!("injected fault: poisoned query (b = {b})");
    }
}

/// Default-build stand-in for the poisoned-query trigger: nothing can arm
/// it, so the query path pays nothing (not even an atomic load).
#[cfg(not(any(test, feature = "fault-injection")))]
#[inline(always)]
pub(crate) fn maybe_inject_query_panic(_b: f64) {}

// ---------------------------------------------------------------------------
// WAL append fault trigger.
// ---------------------------------------------------------------------------

/// How an armed WAL fault fires on its scheduled append (see
/// [`arm_wal_fault`]).
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFaultKind {
    /// The append fails transiently: nothing is written, the writer stays
    /// usable, the mutation is rejected before being applied.
    FailAppend,
    /// Crash mid-frame: only the first `keep` bytes of the frame reach the
    /// file, then the writer dies — every later append fails. Models a
    /// power cut halfway through a `write`.
    TornAppend {
        /// Bytes of the frame that make it to disk.
        keep: usize,
    },
    /// The append itself succeeds, then the writer dies silently — the
    /// frame is complete on disk but nothing after it ever lands. Models a
    /// crash between two mutations.
    CrashAfterAppend,
}

/// The armed fault: `(nth append, kind)`, taken under a lock so arming
/// from a test thread is race-free. `None` = disarmed.
#[cfg(any(test, feature = "fault-injection"))]
static WAL_FAULT: std::sync::Mutex<Option<(u64, WalFaultKind)>> = std::sync::Mutex::new(None);

/// Arm the WAL append fault: the `nth` append (0-based, counted per
/// writer) of any WAL writer opened afterwards fires `kind` once, then the
/// trigger disarms itself. Process-global, like [`arm_query_panic`] —
/// disarm before unrelated WAL activity.
#[cfg(any(test, feature = "fault-injection"))]
pub fn arm_wal_fault(nth: u64, kind: WalFaultKind) {
    *WAL_FAULT.lock().expect("wal fault lock") = Some((nth, kind));
}

/// Disarm the WAL append fault.
#[cfg(any(test, feature = "fault-injection"))]
pub fn disarm_wal_fault() {
    *WAL_FAULT.lock().expect("wal fault lock") = None;
}

/// Consulted by the WAL writer on each append: returns the fault to fire
/// for append number `this_append`, consuming the armed trigger.
#[cfg(any(test, feature = "fault-injection"))]
pub(crate) fn wal_fault_action(this_append: u64) -> Option<WalFaultKind> {
    let mut slot = WAL_FAULT.lock().expect("wal fault lock");
    match *slot {
        Some((nth, kind)) if nth == this_append => {
            *slot = None;
            Some(kind)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Replication transport fault trigger.
// ---------------------------------------------------------------------------

/// How an armed transport fault perturbs its scheduled send (see
/// [`arm_transport_fault`]). These model the wire, not the disk: a shipped
/// segment batch can be lost, duplicated, delivered out of order, cut
/// short, or bit-flipped in flight — and the replica must detect every one
/// of them from the message/frame CRCs alone.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFaultKind {
    /// The message vanishes: `send` reports success but nothing is
    /// delivered (lossy link — retry/backoff territory).
    DropSend,
    /// The message is delivered twice back to back (at-least-once
    /// transport; the replica must dedupe by LSN).
    DuplicateSend,
    /// This message is held back and delivered *after* the next one —
    /// a reordered pair. If no later send arrives it is delivered alone.
    ReorderPair,
    /// Only the first `keep` bytes are delivered (connection cut
    /// mid-ship — a torn segment batch).
    Torn {
        /// Bytes of the message that arrive.
        keep: usize,
    },
    /// One bit of the delivered copy flips (silent wire corruption).
    BitFlip {
        /// Byte offset within the message.
        offset: usize,
        /// Which bit of that byte flips.
        bit: u8,
    },
}

/// The armed transport fault: `(nth send, kind)`. `None` = disarmed.
#[cfg(any(test, feature = "fault-injection"))]
static TRANSPORT_FAULT: std::sync::Mutex<Option<(u64, TransportFaultKind)>> =
    std::sync::Mutex::new(None);

/// Arm the transport fault: the `nth` send (0-based, counted per faulty
/// transport wrapper) fires `kind` once, then the trigger disarms itself.
/// Process-global, like [`arm_wal_fault`] — serialize tests that use it
/// and disarm before unrelated replication activity.
#[cfg(any(test, feature = "fault-injection"))]
pub fn arm_transport_fault(nth: u64, kind: TransportFaultKind) {
    *TRANSPORT_FAULT.lock().expect("transport fault lock") = Some((nth, kind));
}

/// Disarm the transport fault.
#[cfg(any(test, feature = "fault-injection"))]
pub fn disarm_transport_fault() {
    *TRANSPORT_FAULT.lock().expect("transport fault lock") = None;
}

/// Consulted by `FaultyTransport` on each send: returns the fault to fire
/// for send number `this_send`, consuming the armed trigger.
#[cfg(any(test, feature = "fault-injection"))]
pub(crate) fn transport_fault_action(this_send: u64) -> Option<TransportFaultKind> {
    let mut slot = TRANSPORT_FAULT.lock().expect("transport fault lock");
    match *slot {
        Some((nth, kind)) if nth == this_send => {
            *slot = None;
            Some(kind)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Socket-level chaos proxy.
// ---------------------------------------------------------------------------

/// A one-shot byte-stream fault a [`ChaosProxy`] injects into the
/// primary→replica direction (see [`ChaosCtl::arm`]). Truncation,
/// duplication, and silent byte loss all desynchronize the TCP framing
/// downstream — the transport must detect it, reset, reconnect, and let
/// retransmission heal the gap; none of them may corrupt applied state.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Deliver only the first `keep` bytes of the chunk, then kill both
    /// sides of the connection (a peer dying mid-frame).
    Truncate {
        /// Bytes of the chunk that arrive before the cut.
        keep: usize,
    },
    /// Kill both sides of the connection without delivering the chunk
    /// (connection reset).
    Reset,
    /// Deliver the chunk twice back to back (duplicate delivery at the
    /// byte layer — desyncs the length-prefixed framing).
    Duplicate,
    /// Silently drop the chunk but keep the connection open (a hole in
    /// the byte stream — the hardest desync to notice).
    Drop,
}

#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug)]
struct ChaosState {
    partitioned: bool,
    delay_ms: u64,
    armed: Option<(u64, ChaosFault)>,
}

/// Shared control handle for a running [`ChaosProxy`]: flip partitions,
/// add latency, arm one-shot faults, and kill live connections, all
/// while traffic flows.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone)]
pub struct ChaosCtl {
    state: std::sync::Arc<std::sync::Mutex<ChaosState>>,
    /// Downstream (target→client) chunks relayed — the fault schedule's
    /// clock.
    chunks: std::sync::Arc<AtomicU64>,
    /// Bumped by [`ChaosCtl::reset_all`]; relay threads die on mismatch.
    generation: std::sync::Arc<AtomicU64>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

#[cfg(any(test, feature = "fault-injection"))]
impl ChaosCtl {
    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stall delivery in both directions while `on` (TCP backpressure —
    /// connections survive and traffic resumes on heal).
    pub fn set_partitioned(&self, on: bool) {
        self.lock().partitioned = on;
    }

    /// Delay every relayed chunk by `ms` milliseconds.
    pub fn set_delay_ms(&self, ms: u64) {
        self.lock().delay_ms = ms;
    }

    /// Arm `fault` to fire on downstream chunk number `at_chunk`
    /// (0-based, see [`ChaosCtl::chunks`]); one-shot, like
    /// [`arm_transport_fault`].
    pub fn arm(&self, at_chunk: u64, fault: ChaosFault) {
        self.lock().armed = Some((at_chunk, fault));
    }

    /// Downstream chunks relayed so far.
    pub fn chunks(&self) -> u64 {
        self.chunks.load(Ordering::Relaxed)
    }

    /// Kill every live proxied connection (both sides). New connections
    /// keep being accepted — this is the reconnect-storm lever.
    pub fn reset_all(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Consume the armed fault if `chunk` is its trigger.
    fn take_fault(&self, chunk: u64) -> Option<ChaosFault> {
        let mut st = self.lock();
        match st.armed {
            Some((at, fault)) if chunk >= at => {
                st.armed = None;
                Some(fault)
            }
            _ => None,
        }
    }
}

/// A TCP relay standing between a replica and its primary's serve
/// listener, injecting socket-level chaos on command: partitions,
/// latency, mid-frame truncation, connection resets, duplicated bytes,
/// and silent byte loss (see [`ChaosFault`], [`ChaosCtl`]). Faults are
/// injected on the primary→replica (downstream) direction, where the
/// replication payload flows.
///
/// Point a `TcpTransport` at [`ChaosProxy::addr`] instead of the real
/// listener; the proxy dials `target` once per inbound connection and
/// relays both directions until told otherwise. Dropping the proxy stops
/// the listener and kills live connections.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug)]
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    ctl: ChaosCtl,
    accept: Option<std::thread::JoinHandle<()>>,
}

#[cfg(any(test, feature = "fault-injection"))]
impl ChaosProxy {
    /// Start a proxy on an ephemeral localhost port relaying to
    /// `target`.
    ///
    /// # Errors
    ///
    /// `PlanarError::Persist` when the listener cannot bind.
    pub fn start(target: std::net::SocketAddr) -> crate::Result<Self> {
        use std::sync::atomic::AtomicBool;
        use std::sync::{Arc, Mutex};
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| crate::PlanarError::Persist(format!("chaos proxy bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| crate::PlanarError::Persist(format!("chaos proxy addr: {e}")))?;
        let ctl = ChaosCtl {
            state: Arc::new(Mutex::new(ChaosState {
                partitioned: false,
                delay_ms: 0,
                armed: None,
            })),
            chunks: Arc::new(AtomicU64::new(0)),
            generation: Arc::new(AtomicU64::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
        };
        let accept_ctl = ctl.clone();
        let accept = std::thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || accept_loop(&listener, target, &accept_ctl))
            .map_err(|e| crate::PlanarError::Persist(format!("chaos proxy spawn: {e}")))?;
        Ok(Self {
            addr,
            ctl,
            accept: Some(accept),
        })
    }

    /// The address replicas should dial.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared chaos control handle.
    pub fn ctl(&self) -> ChaosCtl {
        self.ctl.clone()
    }
}

#[cfg(any(test, feature = "fault-injection"))]
impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.ctl.stop.store(true, Ordering::Release);
        self.ctl.reset_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = std::net::TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(any(test, feature = "fault-injection"))]
fn accept_loop(listener: &std::net::TcpListener, target: std::net::SocketAddr, ctl: &ChaosCtl) {
    while !ctl.stopped() {
        let Ok((client, _)) = listener.accept() else {
            continue;
        };
        if ctl.stopped() {
            break;
        }
        let Ok(upstream) =
            std::net::TcpStream::connect_timeout(&target, std::time::Duration::from_secs(1))
        else {
            continue;
        };
        let gen = ctl.generation.load(Ordering::SeqCst);
        // client→target carries replica hellos/acks; target→client
        // carries the replicated payload and takes the injected faults.
        spawn_relay(&client, &upstream, ctl, gen, false);
        spawn_relay(&upstream, &client, ctl, gen, true);
    }
}

#[cfg(any(test, feature = "fault-injection"))]
fn spawn_relay(
    from: &std::net::TcpStream,
    to: &std::net::TcpStream,
    ctl: &ChaosCtl,
    gen: u64,
    downstream: bool,
) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        let _ = from.shutdown(std::net::Shutdown::Both);
        let _ = to.shutdown(std::net::Shutdown::Both);
        return;
    };
    let ctl = ctl.clone();
    let name = if downstream { "chaos-down" } else { "chaos-up" };
    let _ = std::thread::Builder::new()
        .name(name.into())
        .spawn(move || relay_pump(from, to, &ctl, gen, downstream));
}

/// Relay one direction chunk by chunk, applying the chaos schedule.
/// Exits (shutting both sockets down so the sibling relay exits too) on
/// EOF, socket error, injected kill, [`ChaosCtl::reset_all`], or proxy
/// stop.
#[cfg(any(test, feature = "fault-injection"))]
fn relay_pump(
    mut from: std::net::TcpStream,
    mut to: std::net::TcpStream,
    ctl: &ChaosCtl,
    gen: u64,
    downstream: bool,
) {
    use std::time::Duration;
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    let kill = |from: &std::net::TcpStream, to: &std::net::TcpStream| {
        let _ = from.shutdown(std::net::Shutdown::Both);
        let _ = to.shutdown(std::net::Shutdown::Both);
    };
    let mut buf = [0u8; 16 * 1024];
    loop {
        if ctl.stopped() || ctl.generation.load(Ordering::SeqCst) != gen {
            kill(&from, &to);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                kill(&from, &to);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                kill(&from, &to);
                return;
            }
        };
        // A partition stalls delivery without closing anything: we stop
        // relaying (and soon stop reading), and TCP backpressure does
        // the rest. Healing resumes mid-stream with nothing lost.
        while ctl.lock().partitioned {
            if ctl.stopped() || ctl.generation.load(Ordering::SeqCst) != gen {
                kill(&from, &to);
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let delay = ctl.lock().delay_ms;
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        let fault = if downstream {
            let chunk = ctl.chunks.fetch_add(1, Ordering::Relaxed);
            ctl.take_fault(chunk)
        } else {
            None
        };
        let chunk = &buf[..n];
        match fault {
            None => {
                if to.write_all(chunk).is_err() {
                    kill(&from, &to);
                    return;
                }
            }
            Some(ChaosFault::Truncate { keep }) => {
                let _ = to.write_all(&chunk[..keep.min(n)]);
                kill(&from, &to);
                return;
            }
            Some(ChaosFault::Reset) => {
                kill(&from, &to);
                return;
            }
            Some(ChaosFault::Duplicate) => {
                if to.write_all(chunk).is_err() || to.write_all(chunk).is_err() {
                    kill(&from, &to);
                    return;
                }
            }
            Some(ChaosFault::Drop) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_deterministic_and_saturating() {
        let mut a = vec![0xFFu8; 8];
        Corruption::BitFlip { offset: 3, bit: 0 }.apply(&mut a);
        assert_eq!(a[3], 0xFE);
        Corruption::BitFlip {
            offset: 100,
            bit: 0,
        }
        .apply(&mut a); // out of range: no-op
        Corruption::TruncateAt(4).apply(&mut a);
        assert_eq!(a.len(), 4);
        Corruption::ZeroRange { offset: 2, len: 99 }.apply(&mut a);
        assert_eq!(a, vec![0xFF, 0xFF, 0, 0]);
    }

    #[test]
    fn faulty_io_transient_write_fails_once_then_succeeds() {
        let dir = TempDir::new("transient").unwrap();
        let path = dir.file("x.bin");
        let mut io = FaultyIo::new(vec![IoFault::FailNthWrite(0)]);
        assert_eq!(
            io.write_file(&path, &[1, 2, 3]).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        io.write_file(&path, &[1, 2, 3]).unwrap();
        assert_eq!(io.read_file(&path).unwrap(), vec![1, 2, 3]);
        assert_eq!(io.fired(), &[IoFault::FailNthWrite(0)]);
    }

    #[test]
    fn faulty_io_crash_stops_everything() {
        let dir = TempDir::new("crash").unwrap();
        let path = dir.file("x.bin");
        let mut io = FaultyIo::new(vec![IoFault::CrashAfterWrites(0)]);
        assert!(io.write_file(&path, &[9; 10]).is_err());
        assert!(io.is_crashed());
        assert!(io.write_file(&path, &[9; 10]).is_err());
        assert!(io.rename(&path, &dir.file("y.bin")).is_err());
        assert!(io.remove_file(&path).is_err());
    }

    #[test]
    fn faulty_io_torn_write_persists_prefix() {
        let dir = TempDir::new("torn").unwrap();
        let path = dir.file("x.bin");
        let mut io = FaultyIo::new(vec![IoFault::TruncateWrite { nth: 0, keep: 2 }]);
        assert!(io.write_file(&path, &[7, 8, 9, 10]).is_err());
        assert_eq!(io.read_file(&path).unwrap(), vec![7, 8]);
        // Next write is clean.
        io.write_file(&path, &[1]).unwrap();
        assert_eq!(io.read_file(&path).unwrap(), vec![1]);
    }

    #[test]
    fn faulty_io_silent_corruption_reports_success() {
        let dir = TempDir::new("silent").unwrap();
        let path = dir.file("x.bin");
        let mut io = FaultyIo::new(vec![IoFault::CorruptWrite {
            nth: 0,
            offset: 1,
            bit: 7,
        }]);
        io.write_file(&path, &[0, 0, 0]).unwrap();
        assert_eq!(io.read_file(&path).unwrap(), vec![0, 0x80, 0]);
    }

    #[test]
    fn faulty_io_transient_rename_fails_once() {
        let dir = TempDir::new("rename").unwrap();
        let a = dir.file("a.bin");
        let b = dir.file("b.bin");
        let mut io = FaultyIo::new(vec![IoFault::FailNthRename(0)]);
        io.write_file(&a, &[5]).unwrap();
        assert!(io.rename(&a, &b).is_err());
        io.rename(&a, &b).unwrap();
        assert_eq!(io.read_file(&b).unwrap(), vec![5]);
    }
}
