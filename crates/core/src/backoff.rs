//! Capped exponential backoff with deterministic jitter.
//!
//! One retry policy shared by every layer that heals by waiting:
//! replication links ([`crate::replicate::Primary`]), the TCP transport's
//! reconnect loop, and the serving layer's per-tenant `retry_after_us`
//! hints. The jitter source is a per-instance LCG seeded by the caller,
//! so many backing-off peers decorrelate their retry storms without any
//! global randomness — and the same seed replays the same schedule,
//! which the deterministic fault sweeps rely on.

/// Capped exponential backoff with deterministic jitter.
///
/// `failure(now_ms)` schedules the next attempt at
/// `now + base·2^failures + jitter` (capped at `cap_ms` before jitter,
/// jitter uniform in `[0, delay/2]`); `ready(now_ms)` gates the attempt;
/// `success()` resets the schedule. All times are caller-supplied
/// milliseconds on any monotonic clock.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    failures: u32,
    next_at_ms: u64,
    rng: u64,
}

impl Backoff {
    /// A fresh schedule: first retry after ~`base_ms`, ceiling `cap_ms`,
    /// jitter stream seeded by `seed` (any value; 0 is fine).
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Self {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(base_ms.max(1)),
            failures: 0,
            next_at_ms: 0,
            rng: seed | 1,
        }
    }

    /// True when the next attempt is due.
    pub fn ready(&self, now_ms: u64) -> bool {
        now_ms >= self.next_at_ms
    }

    /// Record a successful attempt: the schedule resets to "retry
    /// immediately".
    pub fn success(&mut self) {
        self.failures = 0;
        self.next_at_ms = 0;
    }

    /// Record a failed attempt at `now_ms` and schedule the next one.
    pub fn failure(&mut self, now_ms: u64) {
        let exp = self.failures.min(16);
        let delay = self.base_ms.saturating_mul(1u64 << exp).min(self.cap_ms);
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter = self.rng % (delay / 2 + 1);
        self.next_at_ms = now_ms + delay + jitter;
        self.failures = self.failures.saturating_add(1);
    }

    /// Consecutive failures since the last success.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// The clock value at which the next attempt becomes ready.
    pub fn next_at_ms(&self) -> u64 {
        self.next_at_ms
    }

    /// Milliseconds left until the next attempt is ready (0 when ready
    /// now) — the wait a rejected caller should be told to observe.
    pub fn retry_after_ms(&self, now_ms: u64) -> u64 {
        self.next_at_ms.saturating_sub(now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_and_resets() {
        let mut b = Backoff::new(10, 100, 42);
        assert!(b.ready(0));
        let mut last = 0;
        for i in 0..10 {
            b.failure(1000 * i);
            let delay = b.next_at_ms() - 1000 * i;
            assert!(delay >= 10, "delay {delay} below base");
            assert!(delay <= 150, "delay {delay} above cap + jitter");
            last = delay;
        }
        assert!(last >= 100, "exponential growth should reach the cap");
        assert_eq!(b.failures(), 10);
        b.success();
        assert!(b.ready(0));
        assert_eq!(b.retry_after_ms(0), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(5, 200, 7);
        let mut b = Backoff::new(5, 200, 7);
        for i in 0..8 {
            a.failure(i * 50);
            b.failure(i * 50);
            assert_eq!(a.next_at_ms(), b.next_at_ms());
        }
        let mut c = Backoff::new(5, 200, 8);
        let mut diverged = false;
        for i in 0..8 {
            c.failure(i * 50);
            a.failure(i * 50);
            diverged |= c.next_at_ms() != a.next_at_ms();
        }
        assert!(diverged, "different seeds should jitter differently");
    }

    #[test]
    fn retry_after_counts_down() {
        let mut b = Backoff::new(100, 100, 1);
        b.failure(1_000);
        let wait = b.retry_after_ms(1_000);
        assert!(wait >= 100);
        assert!(b.retry_after_ms(1_000 + wait) == 0);
        assert!(b.ready(1_000 + wait));
    }
}
