//! Self-tuning index maintenance from observed queries.
//!
//! The paper argues (§4.1, §7.2.2, §8) that rather than holding many
//! indices for a huge parameter space, it is "more beneficial to
//! dynamically update our indices based on the recent queries" — and lists
//! learning-driven index updates as future work. This module implements
//! that loop:
//!
//! 1. every query's coefficients feed a sliding-window
//!    [`crate::DomainTracker`];
//! 2. every query's *pruning fraction* feeds a rolling quality window;
//! 3. when quality degrades below a threshold (and a cooldown has passed),
//!    the index set is rebuilt with normals sampled from the *learned*
//!    domain — so the budget concentrates where the workload actually is.
//!
//! Rebuilds are loglinear (paper §4.2 measures ~2.5–3 s for 1M points), so
//! an occasional rebuild is far cheaper than permanently degraded queries.

use crate::domain::{DomainTracker, ParameterDomain};
use crate::multi::{IndexConfig, PlanarIndexSet, QueryOutcome};
use crate::query::InequalityQuery;
use crate::store::KeyStore;
use crate::table::FeatureTable;
use crate::{Result, VecStore};
use std::collections::VecDeque;

/// Tuning knobs for [`AdaptivePlanarIndexSet`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Sliding window of observed queries used to learn the domain.
    pub window: usize,
    /// Minimum observed queries before a rebuild is considered.
    pub min_queries: usize,
    /// Rebuild when the rolling mean pruning fraction drops below this
    /// (0.7 = rebuild once fewer than 70 % of points are pruned).
    pub pruning_threshold: f64,
    /// Envelope widening fraction for the learned domain.
    pub widen: f64,
    /// Queries that must pass between rebuilds.
    pub cooldown: usize,
    /// Index construction parameters for rebuilds.
    pub index: IndexConfig,
}

impl AdaptiveConfig {
    /// Reasonable defaults around a given index budget.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            window: 64,
            min_queries: 16,
            pruning_threshold: 0.7,
            widen: 0.1,
            cooldown: 32,
            index: IndexConfig::with_budget(budget),
        }
    }
}

/// A [`PlanarIndexSet`] that retunes itself to the observed workload.
pub struct AdaptivePlanarIndexSet<S: KeyStore = VecStore> {
    set: PlanarIndexSet<S>,
    tracker: DomainTracker,
    config: AdaptiveConfig,
    pruning_window: VecDeque<f64>,
    since_rebuild: usize,
    rebuilds: usize,
}

impl<S: KeyStore> AdaptivePlanarIndexSet<S> {
    /// Build with an initial (possibly rough) parameter domain.
    ///
    /// # Errors
    ///
    /// Same as [`PlanarIndexSet::build`].
    pub fn build(
        table: FeatureTable,
        initial_domain: ParameterDomain,
        config: AdaptiveConfig,
    ) -> Result<Self> {
        let set = PlanarIndexSet::build(table, initial_domain, config.index.clone())?;
        Ok(Self {
            set,
            tracker: DomainTracker::new(config.window, config.widen),
            config,
            pruning_window: VecDeque::new(),
            since_rebuild: 0,
            rebuilds: 0,
        })
    }

    /// Answer a query, record its coefficients and pruning quality, and
    /// retune the index set if the workload has drifted.
    ///
    /// # Errors
    ///
    /// Same as [`PlanarIndexSet::query`]; a failed *rebuild* (e.g. the
    /// window contains two octants) is not an error — the current indices
    /// stay in place.
    pub fn query(&mut self, q: &InequalityQuery) -> Result<QueryOutcome> {
        let out = self.set.query(q)?;
        self.observe(q, out.stats.pruned_fraction());
        Ok(out)
    }

    /// Record an externally-executed query (when the caller drives the
    /// inner set directly).
    pub fn observe(&mut self, q: &InequalityQuery, pruned_fraction: f64) {
        self.tracker.observe(q);
        if self.pruning_window.len() == self.config.window {
            self.pruning_window.pop_front();
        }
        self.pruning_window.push_back(pruned_fraction);
        self.since_rebuild += 1;
        if self.should_rebuild() {
            self.try_rebuild();
        }
    }

    /// Rolling mean pruning fraction over the window.
    pub fn rolling_pruning(&self) -> f64 {
        if self.pruning_window.is_empty() {
            return 1.0;
        }
        self.pruning_window.iter().sum::<f64>() / self.pruning_window.len() as f64
    }

    fn should_rebuild(&self) -> bool {
        self.since_rebuild >= self.config.cooldown
            && self.tracker.len() >= self.config.min_queries
            && self.rolling_pruning() < self.config.pruning_threshold
    }

    /// Force a retune from the learned domain now. Returns whether a
    /// rebuild happened (it is skipped when no consistent domain can be
    /// learned — e.g. the window straddles octants).
    pub fn try_rebuild(&mut self) -> bool {
        let Ok(domain) = self.tracker.learned_domain() else {
            return false;
        };
        if self
            .set
            .rebuild_for_domain(domain, self.config.index.clone())
            .is_err()
        {
            return false;
        }
        self.rebuilds += 1;
        self.since_rebuild = 0;
        self.pruning_window.clear();
        // The workload shifted enough to justify new index geometry — let
        // the quantization autotuner re-evaluate over the same evidence.
        self.set
            .retune_quantization(&crate::quant::QuantAutotuneConfig::default());
        true
    }

    /// Number of retunes performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// The inner index set (read-only).
    pub fn inner(&self) -> &PlanarIndexSet<S> {
        &self.set
    }

    /// The inner index set, mutable (for point updates; mutations do not
    /// disturb the learned-domain state).
    pub fn inner_mut(&mut self) -> &mut PlanarIndexSet<S> {
        &mut self.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cmp;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, dim: usize) -> FeatureTable {
        let mut rng = StdRng::seed_from_u64(21);
        FeatureTable::from_rows(
            dim,
            (0..n)
                .map(|_| (0..dim).map(|_| rng.random_range(1.0..100.0)).collect())
                .collect::<Vec<Vec<f64>>>(),
        )
        .unwrap()
    }

    /// A drifted workload: a strongly *skewed* coefficient direction
    /// (≈100 on even axes, ≈1 on odd axes) that random normals from the
    /// broad initial domain are unlikely to be parallel to.
    fn drifted_query(rng: &mut StdRng, dim: usize) -> InequalityQuery {
        let a: Vec<f64> = (0..dim)
            .map(|i| {
                if i % 2 == 0 {
                    rng.random_range(95.0..100.0)
                } else {
                    rng.random_range(1.0..1.05)
                }
            })
            .collect();
        let b = 0.25 * a.iter().sum::<f64>() * 100.0;
        InequalityQuery::new(a, Cmp::Leq, b).unwrap()
    }

    #[test]
    fn adapts_to_drifted_workload_and_improves_pruning() {
        let dim = 6;
        let initial = ParameterDomain::uniform_continuous(dim, 1.0, 100.0).unwrap();
        let mut adaptive: AdaptivePlanarIndexSet = AdaptivePlanarIndexSet::build(
            table(20_000, dim),
            initial,
            AdaptiveConfig {
                pruning_threshold: 0.97,
                cooldown: 24,
                min_queries: 12,
                ..AdaptiveConfig::with_budget(12)
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);

        // Phase 1: measure pruning before any retune is possible.
        let mut before = 0.0;
        for _ in 0..16 {
            let q = drifted_query(&mut rng, dim);
            before += adaptive.query(&q).unwrap().stats.pruned_fraction();
        }
        before /= 16.0;

        // Phase 2: keep querying until the adaptive set retunes.
        for _ in 0..64 {
            let q = drifted_query(&mut rng, dim);
            adaptive.query(&q).unwrap();
        }
        assert!(
            adaptive.rebuilds() >= 1,
            "drifted workload should trigger a retune (rolling pruning {:.2})",
            adaptive.rolling_pruning()
        );

        // Phase 3: pruning after retuning must be better.
        let mut after = 0.0;
        for _ in 0..16 {
            let q = drifted_query(&mut rng, dim);
            after += adaptive.query(&q).unwrap().stats.pruned_fraction();
        }
        after /= 16.0;
        assert!(
            after > before + 0.05,
            "expected pruning improvement: before {before:.3}, after {after:.3}"
        );
        // And exactness is untouched.
        let q = drifted_query(&mut rng, dim);
        assert_eq!(
            adaptive.query(&q).unwrap().sorted_ids(),
            adaptive.inner().query_scan(&q).unwrap().sorted_ids()
        );
    }

    #[test]
    fn no_rebuild_while_quality_is_good() {
        let dim = 3;
        // Initial domain matches the workload exactly.
        let initial = ParameterDomain::uniform_randomness(dim, 2).unwrap();
        let mut adaptive: AdaptivePlanarIndexSet = AdaptivePlanarIndexSet::build(
            table(5_000, dim),
            initial,
            AdaptiveConfig::with_budget(16),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let a: Vec<f64> = (0..dim).map(|_| rng.random_range(1..=2) as f64).collect();
            let b = 0.25 * a.iter().sum::<f64>() * 100.0;
            let q = InequalityQuery::leq(a, b).unwrap();
            adaptive.query(&q).unwrap();
        }
        assert_eq!(
            adaptive.rebuilds(),
            0,
            "well-matched domain must not retune"
        );
    }

    #[test]
    fn mixed_octant_window_skips_rebuild_gracefully() {
        let dim = 2;
        let initial = ParameterDomain::uniform_continuous(dim, 0.5, 2.0).unwrap();
        let mut adaptive: AdaptivePlanarIndexSet = AdaptivePlanarIndexSet::build(
            table(500, dim),
            initial,
            AdaptiveConfig {
                cooldown: 1,
                min_queries: 2,
                pruning_threshold: 1.1, // always "bad" → always tries
                ..AdaptiveConfig::with_budget(4)
            },
        )
        .unwrap();
        // Alternate octants: learned_domain() fails, queries still work.
        for i in 0..20 {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let q = InequalityQuery::leq(vec![sign, sign], 100.0).unwrap();
            let out = adaptive.query(&q).unwrap();
            assert_eq!(
                out.sorted_ids(),
                adaptive.inner().query_scan(&q).unwrap().sorted_ids()
            );
        }
        assert_eq!(adaptive.rebuilds(), 0);
    }

    #[test]
    fn forced_rebuild_reports_outcome() {
        let dim = 2;
        let initial = ParameterDomain::uniform_continuous(dim, 0.5, 2.0).unwrap();
        let mut adaptive: AdaptivePlanarIndexSet =
            AdaptivePlanarIndexSet::build(table(200, dim), initial, AdaptiveConfig::with_budget(4))
                .unwrap();
        // Nothing observed yet → nothing to learn from.
        assert!(!adaptive.try_rebuild());
        let q = InequalityQuery::leq(vec![1.0, 2.0], 100.0).unwrap();
        adaptive.query(&q).unwrap();
        assert!(adaptive.try_rebuild());
        assert_eq!(adaptive.rebuilds(), 1);
    }
}
