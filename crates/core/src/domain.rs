//! Query-parameter domains (paper §4.1).
//!
//! The exact query parameters `a` are unknown until query time, but their
//! *domains* `Δaᵢ` are either application-specific (the power-factor
//! threshold lies in (0, 1); intersection times of interest lie in the next
//! few minutes) or learned from past queries. Index normals `c` are sampled
//! from these same domains (§5.2), which is what makes it likely that some
//! index is nearly parallel to an incoming query.
//!
//! The paper's synthetic experiments use *discrete* domains: each `aᵢ` is
//! drawn from a set of `RQ` values ("randomness of the query"), giving
//! `RQ^d` possible query normals — [`Domain::Discrete`] models this, and
//! [`Domain::Continuous`] models interval domains like the SQL-function
//! threshold.
//!
//! Every domain must exclude zero and have a fixed sign: the sign of each
//! coefficient determines the hyper-octant in which queries intersect the
//! axes (§4.5), and an index can only be prepared for a known octant.

use crate::query::InequalityQuery;
use crate::{PlanarError, Result};
use planar_geom::{Octant, Sign, SignVector};
use rand::Rng;
use std::collections::VecDeque;

/// The domain `Δaᵢ` of one query parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// A finite set of possible values (the paper's `RQ`-valued domains).
    Discrete(Vec<f64>),
    /// A closed interval `[lo, hi]`.
    Continuous {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
}

impl Domain {
    /// The discrete domain `{1, 2, …, rq}` used by the paper's synthetic
    /// query workloads.
    pub fn randomness(rq: usize) -> Domain {
        Domain::Discrete((1..=rq).map(|v| v as f64).collect())
    }

    fn validate(&self, axis: usize) -> Result<()> {
        match self {
            Domain::Discrete(vals) => {
                if vals.is_empty() {
                    return Err(PlanarError::EmptyDomain { axis });
                }
                if vals.iter().any(|v| !v.is_finite()) {
                    return Err(PlanarError::NotFinite);
                }
                if vals.contains(&0.0) {
                    return Err(PlanarError::DomainContainsZero { axis });
                }
                let first_pos = vals[0] > 0.0;
                if vals.iter().any(|&v| (v > 0.0) != first_pos) {
                    return Err(PlanarError::DomainContainsZero { axis });
                }
                Ok(())
            }
            Domain::Continuous { lo, hi } => {
                if !lo.is_finite() || !hi.is_finite() {
                    return Err(PlanarError::NotFinite);
                }
                if lo > hi {
                    return Err(PlanarError::EmptyDomain { axis });
                }
                if *lo <= 0.0 && *hi >= 0.0 {
                    return Err(PlanarError::DomainContainsZero { axis });
                }
                Ok(())
            }
        }
    }

    /// The common sign of every value in the domain.
    pub fn sign(&self) -> Sign {
        match self {
            Domain::Discrete(vals) => Sign::of_lenient(vals[0]),
            Domain::Continuous { lo, .. } => Sign::of_lenient(*lo),
        }
    }

    /// Sample one value uniformly from the domain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Domain::Discrete(vals) => vals[rng.random_range(0..vals.len())],
            Domain::Continuous { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.random_range(*lo..=*hi)
                }
            }
        }
    }

    /// Does the domain contain `v` (up to a small relative tolerance for
    /// discrete values)?
    pub fn contains(&self, v: f64) -> bool {
        match self {
            Domain::Discrete(vals) => vals.iter().any(|&d| planar_geom::approx_eq(d, v)),
            Domain::Continuous { lo, hi } => (*lo..=*hi).contains(&v),
        }
    }

    /// Number of distinct values for discrete domains (`RQ` in the paper),
    /// `None` for continuous ones.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Discrete(vals) => Some(vals.len()),
            Domain::Continuous { .. } => None,
        }
    }
}

/// The joint domain of all `d'` query coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterDomain {
    axes: Vec<Domain>,
}

impl ParameterDomain {
    /// Build from per-axis domains.
    ///
    /// # Errors
    ///
    /// [`PlanarError::EmptyDataset`] for zero axes, plus per-axis
    /// validation: domains must be non-empty, finite, zero-free and
    /// sign-fixed.
    pub fn new(axes: Vec<Domain>) -> Result<Self> {
        if axes.is_empty() {
            return Err(PlanarError::EmptyDataset);
        }
        for (i, d) in axes.iter().enumerate() {
            d.validate(i)?;
        }
        Ok(Self { axes })
    }

    /// The same continuous interval `[lo, hi]` on every axis.
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn uniform_continuous(dim: usize, lo: f64, hi: f64) -> Result<Self> {
        Self::new(vec![Domain::Continuous { lo, hi }; dim])
    }

    /// The paper's synthetic-workload domain: every axis draws from
    /// `{1, …, rq}`.
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn uniform_randomness(dim: usize, rq: usize) -> Result<Self> {
        Self::new(vec![Domain::randomness(rq); dim])
    }

    /// Dimensionality `d'`.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// The per-axis domains.
    pub fn axes(&self) -> &[Domain] {
        &self.axes
    }

    /// The per-axis coefficient signs.
    pub fn signs(&self) -> SignVector {
        self.axes.iter().map(Domain::sign).collect()
    }

    /// The hyper-octant in which every query from this domain intersects
    /// the coordinate axes (§4.5).
    pub fn octant(&self) -> Octant {
        Octant::from_signs(self.signs())
    }

    /// Sample a query coefficient vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.axes.iter().map(|d| d.sample(rng)).collect()
    }

    /// Sample an index normal in *normalized* space: component-wise absolute
    /// values, so the normal is strictly positive regardless of the domain's
    /// octant. This is how [`crate::PlanarIndexSet`] draws its budget of
    /// normals (§5.2).
    pub fn sample_normal_abs<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.axes.iter().map(|d| d.sample(rng).abs()).collect()
    }

    /// Does a coefficient vector lie inside the domain?
    pub fn contains(&self, a: &[f64]) -> bool {
        a.len() == self.dim() && a.iter().zip(&self.axes).all(|(&v, d)| d.contains(v))
    }

    /// Do the signs of `a` match the domain's octant? (Cheaper than
    /// [`Self::contains`]; this is the requirement for the indexed path.)
    pub fn signs_match(&self, a: &[f64]) -> bool {
        a.len() == self.dim()
            && a.iter()
                .zip(&self.axes)
                .all(|(&v, d)| v != 0.0 && Sign::of_lenient(v) == d.sign())
    }

    /// The number of possible query normals, `Πᵢ RQᵢ`, when all axes are
    /// discrete (the paper's `|Δᵢ|^d`); `None` if any axis is continuous.
    pub fn possible_normals(&self) -> Option<u128> {
        self.axes
            .iter()
            .map(|d| d.cardinality().map(|c| c as u128))
            .try_fold(1u128, |acc, c| c.map(|c| acc.saturating_mul(c)))
    }
}

/// Online tracker that *learns* parameter domains from past queries
/// (§4.1(1): "one may learn the domain Δaᵢ … based on the past queries, and
/// dynamically update their domains with time").
///
/// Keeps a sliding window of the last `capacity` observed coefficient
/// vectors and exposes their per-axis envelope, slightly widened, as a
/// [`ParameterDomain`]. When the workload drifts, old queries fall out of
/// the window and the domain follows — the index set can then be rebuilt
/// cheaply (index construction is loglinear, §4.2).
#[derive(Debug, Clone)]
pub struct DomainTracker {
    window: VecDeque<Vec<f64>>,
    capacity: usize,
    widen: f64,
}

impl DomainTracker {
    /// Track the last `capacity` queries, widening the learned envelope by
    /// the fraction `widen` (e.g. `0.1` = 10 % slack on each side).
    pub fn new(capacity: usize, widen: f64) -> Self {
        Self {
            window: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            widen: widen.max(0.0),
        }
    }

    /// Record a query's coefficients.
    pub fn observe(&mut self, query: &InequalityQuery) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(query.a().to_vec());
    }

    /// Number of queries currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no queries have been observed.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The learned domain: the per-axis envelope of the windowed queries,
    /// widened by the configured fraction (never across zero).
    ///
    /// # Errors
    ///
    /// [`PlanarError::EmptyDataset`] when no queries were observed,
    /// [`PlanarError::DimensionMismatch`] when observed queries disagree on
    /// dimensionality, and [`PlanarError::DomainContainsZero`] when the
    /// window contains both signs on some axis (two octants — the caller
    /// should split the workload into one tracker per octant).
    pub fn learned_domain(&self) -> Result<ParameterDomain> {
        let first = self.window.front().ok_or(PlanarError::EmptyDataset)?;
        let dim = first.len();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for q in &self.window {
            if q.len() != dim {
                return Err(PlanarError::DimensionMismatch {
                    expected: dim,
                    found: q.len(),
                });
            }
            for i in 0..dim {
                lo[i] = lo[i].min(q[i]);
                hi[i] = hi[i].max(q[i]);
            }
        }
        let axes = (0..dim)
            .map(|i| {
                let span = (hi[i] - lo[i]).max(hi[i].abs() * 1e-6);
                let mut l = lo[i] - self.widen * span;
                let mut h = hi[i] + self.widen * span;
                // Never widen across zero: that would lose the octant. (A
                // window that already straddles zero is reported as such by
                // the Domain validation below.)
                if lo[i] > 0.0 {
                    l = l.max(lo[i] * 1e-3);
                } else if hi[i] < 0.0 {
                    h = h.min(hi[i] * 1e-3);
                }
                Domain::Continuous { lo: l, hi: h }
            })
            .collect();
        ParameterDomain::new(axes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Cmp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn domain_validation() {
        assert!(ParameterDomain::new(vec![]).is_err());
        assert!(ParameterDomain::new(vec![Domain::Discrete(vec![])]).is_err());
        assert_eq!(
            ParameterDomain::new(vec![Domain::Discrete(vec![1.0, 0.0])]).unwrap_err(),
            PlanarError::DomainContainsZero { axis: 0 }
        );
        assert_eq!(
            ParameterDomain::new(vec![
                Domain::Continuous { lo: 1.0, hi: 2.0 },
                Domain::Continuous { lo: -1.0, hi: 1.0 }
            ])
            .unwrap_err(),
            PlanarError::DomainContainsZero { axis: 1 }
        );
        assert!(
            ParameterDomain::new(vec![Domain::Continuous { lo: 2.0, hi: 1.0 }]).is_err(),
            "inverted interval"
        );
        assert!(ParameterDomain::new(vec![Domain::Discrete(vec![1.0, -2.0])]).is_err());
        assert!(ParameterDomain::uniform_continuous(3, 0.5, 2.0).is_ok());
    }

    #[test]
    fn randomness_domain_matches_paper() {
        let d = Domain::randomness(4);
        assert_eq!(d, Domain::Discrete(vec![1.0, 2.0, 3.0, 4.0]));
        let pd = ParameterDomain::uniform_randomness(6, 2).unwrap();
        // RQ=2, d=6 → 2^6 = 64 possible query normals.
        assert_eq!(pd.possible_normals(), Some(64));
        assert_eq!(
            ParameterDomain::uniform_continuous(2, 1.0, 2.0)
                .unwrap()
                .possible_normals(),
            None
        );
    }

    #[test]
    fn sampling_stays_in_domain() {
        let mut rng = StdRng::seed_from_u64(7);
        let pd = ParameterDomain::new(vec![
            Domain::randomness(3),
            Domain::Continuous { lo: -2.0, hi: -0.5 },
        ])
        .unwrap();
        for _ in 0..200 {
            let a = pd.sample(&mut rng);
            assert!(pd.contains(&a), "{a:?}");
            assert!(pd.signs_match(&a));
            let c = pd.sample_normal_abs(&mut rng);
            assert!(c.iter().all(|&v| v > 0.0), "{c:?}");
        }
    }

    #[test]
    fn octant_follows_signs() {
        let pd = ParameterDomain::new(vec![
            Domain::Continuous { lo: 1.0, hi: 2.0 },
            Domain::Continuous { lo: -3.0, hi: -1.0 },
        ])
        .unwrap();
        let o = pd.octant();
        assert_eq!(o.signs(), &[Sign::Pos, Sign::Neg]);
        assert!(pd.signs_match(&[1.5, -2.0]));
        assert!(!pd.signs_match(&[1.5, 2.0]));
        assert!(!pd.signs_match(&[0.0, -2.0]));
    }

    #[test]
    fn tracker_learns_envelope() {
        let mut t = DomainTracker::new(10, 0.0);
        assert!(t.learned_domain().is_err());
        for b in [2.0_f64, 5.0, 3.0] {
            let q = InequalityQuery::new(vec![b, -2.0 * b], Cmp::Leq, 1.0).unwrap();
            t.observe(&q);
        }
        let d = t.learned_domain().unwrap();
        assert!(d.contains(&[2.0, -4.0]));
        assert!(d.contains(&[5.0, -10.0]));
        assert!(!d.contains(&[6.0, -4.0]));
        assert_eq!(d.octant().signs(), &[Sign::Pos, Sign::Neg]);
    }

    #[test]
    fn tracker_window_slides() {
        let mut t = DomainTracker::new(2, 0.0);
        for v in [1.0_f64, 10.0, 2.0] {
            t.observe(&InequalityQuery::leq(vec![v], 0.0).unwrap());
        }
        assert_eq!(t.len(), 2);
        // The envelope now only covers {10, 2}; 1.0 slid out.
        let d = t.learned_domain().unwrap();
        assert!(!d.contains(&[1.0]));
        assert!(d.contains(&[2.0]));
        assert!(d.contains(&[10.0]));
    }

    #[test]
    fn tracker_rejects_mixed_signs() {
        let mut t = DomainTracker::new(4, 0.1);
        t.observe(&InequalityQuery::leq(vec![1.0], 0.0).unwrap());
        t.observe(&InequalityQuery::leq(vec![-1.0], 0.0).unwrap());
        assert!(matches!(
            t.learned_domain(),
            Err(PlanarError::DomainContainsZero { axis: 0 })
        ));
    }

    #[test]
    fn tracker_widening_never_crosses_zero() {
        let mut t = DomainTracker::new(4, 0.5);
        t.observe(&InequalityQuery::leq(vec![0.1, -0.1], 0.0).unwrap());
        t.observe(&InequalityQuery::leq(vec![0.2, -0.3], 0.0).unwrap());
        let d = t.learned_domain().unwrap();
        assert!(d.signs_match(&[0.15, -0.2]));
    }
}
